//! A compact version of the paper's §6.3 case study: build the three
//! persistent Redis variants and race them on one YCSB workload.
//!
//! Run with: `cargo run -p system-tests --release --example redis_ycsb`

use bench::redisx::{build_redis_variants, measure_workload, to_redis_ops};
use bench::throughput;
use ycsb::{Generator, Workload};

fn main() {
    println!("building Redis-pm, RedisH-full, RedisH-intra…");
    let mut v = build_redis_variants();
    println!(
        "RedisH-full: {} fixes ({} interprocedural, hoist levels {:?})",
        v.hfull_outcome.fixes.len(),
        v.hfull_outcome.interprocedural_count(),
        v.hfull_outcome.hoist_level_histogram()
    );
    println!(
        "RedisH-intra: {} fixes (all intraprocedural)\n",
        v.hintra_outcome.fixes.len()
    );

    let g = Generator::new(500, 500, 1024, 7);
    let load = to_redis_ops(&g.load_ops(), 1024);
    let run = to_redis_ops(&g.run_ops(Workload::A), 1024);

    println!("YCSB workload A (50/50 read/update, zipfian), 500 records / 500 ops:");
    for (name, module) in [
        ("Redis-pm    ", &mut v.pm),
        ("RedisH-full ", &mut v.hfull),
        ("RedisH-intra", &mut v.hintra),
    ] {
        let r = measure_workload(module, "ex", &load, &run);
        println!(
            "  {name}  load {:>9.0} ops/s   run {:>9.0} ops/s   (checksum {})",
            throughput(500, r.load_cycles),
            throughput(500, r.run_cycles),
            r.output
        );
    }
    println!("\nRedisH-full should match/beat Redis-pm; RedisH-intra trails far behind.");
}
