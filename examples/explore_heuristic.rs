//! Peeking inside the hoisting heuristic (§4.3): reproduce the paper's
//! Listing 6 score calculation and print every candidate fix location with
//! its alias-count score.
//!
//! Run with: `cargo run -p system-tests --example explore_heuristic`

use hippocrates::heuristic::{choose_fix_site, func_chain};
use hippocrates::locate::locate;
use pmalias::{AliasAnalysis, PmMarking};
use pmcheck::run_and_check;
use pmvm::VmOptions;

fn main() {
    // The paper's Listing 5/6 program, verbatim shape.
    let src = r#"
        fn update(addr: ptr, idx: int, val: int) {
            store1(addr, idx, val);
        }
        fn modify(addr: ptr) {
            update(addr, 0, 1);
        }
        fn main() {
            var vol_addr: ptr = alloc(4096);
            var pm_addr: ptr = pmem_map(0, 4096);
            var i: int = 0;
            while (i < 100) {
                modify(vol_addr);
                i = i + 1;
            }
            modify(pm_addr);
        }
    "#;
    let m = pmlang::compile_one("listing6.pmc", src).expect("compiles");

    let checked = run_and_check(&m, "main", VmOptions::default()).expect("runs");
    let bug = checked.report.deduped_bugs()[0].clone();
    println!("bug: {bug}\n");

    let mut site = locate(&m, &bug).expect("locates");
    site.i_func = m.function_by_name("main");

    let aa = AliasAnalysis::analyze(&m);
    println!(
        "alias analysis: {} abstract objects, {} alias classes",
        aa.object_count(),
        aa.signatures().len()
    );
    let marking = PmMarking::full(&aa);
    let decision = choose_fix_site(&m, &aa, &marking, &site);

    let chain = func_chain(&site);
    println!("\ncandidate fix locations (paper Listing 6):");
    for &(depth, score) in &decision.scores {
        let what = if depth == 0 {
            format!("the store inside `{}`", m.function(chain[0]).name())
        } else {
            format!(
                "call site of `{}` inside `{}`",
                m.function(chain[depth - 1]).name(),
                m.function(chain[depth]).name()
            )
        };
        let marker = if depth == decision.depth {
            "  <- chosen"
        } else {
            ""
        };
        println!("  depth {depth}: score {score:>2}  ({what}){marker}");
    }
    assert_eq!(
        decision.scores.iter().map(|&(_, s)| s).collect::<Vec<_>>(),
        vec![0, 0, 1],
        "Listing 6's scores are 0, 0, +1"
    );
    println!("\nthe heuristic hoists to `modify(pm_addr)` — exactly the paper's answer");
}
