//! Quickstart: write a buggy PM program, find the durability bug with the
//! pmemcheck-style checker, heal it with Hippocrates, and verify the fix.
//!
//! Run with: `cargo run -p system-tests --example quickstart`

use hippocrates::{Hippocrates, RepairOptions};
use pmcheck::run_and_check;
use pmvm::{Vm, VmOptions};

fn main() {
    // A PM program with a classic missing-flush&fence bug: the store to the
    // persistent pool never becomes durable.
    let src = r#"
        fn main() {
            var pool: ptr = pmem_map(0, 4096);
            store8(pool, 0, 42);   // <- never flushed, never fenced
            print(load8(pool, 0));
        }
    "#;
    let mut module = pmlang::compile_one("quickstart.pmc", src).expect("compiles");

    // 1. Run it under the durability checker (the pmemcheck analog).
    let checked = run_and_check(&module, "main", VmOptions::default()).expect("runs");
    println!("--- bug finder report ---");
    print!("{}", checked.report.render());

    // The store reads back fine in-process, but the *crash image* — what an
    // observer finds after a power failure — still holds zero:
    let img = checked.run.machine.crash_image();
    let base = img.pool_base(0).unwrap();
    println!(
        "value after crash, before repair: {:?}\n",
        img.read_int(base, 8)
    );

    // 2. Heal it.
    let outcome = Hippocrates::new(RepairOptions::default())
        .repair_until_clean(&mut module, "main")
        .expect("repair succeeds");
    println!("--- hippocrates ---");
    for fix in &outcome.fixes {
        println!("applied: {fix}");
    }

    // 3. Re-verify: the checker is clean and the update is now durable.
    let checked = run_and_check(&module, "main", VmOptions::default()).expect("runs");
    println!("\n--- after repair ---");
    print!("{}", checked.report.render());
    let img = checked.run.machine.crash_image();
    println!(
        "value after crash, after repair: {:?}",
        img.read_int(base, 8)
    );

    // Do no harm: the program's observable output never changed.
    let out = Vm::new(VmOptions::default())
        .run(&module, "main")
        .unwrap()
        .output;
    assert_eq!(out, vec![42]);
    println!("observable output unchanged: {out:?}");
}
