//! Healing a research prototype: seed the two P-CLHT bugs the paper found
//! in RECIPE's persistent index (§6.1), then detect, repair, and
//! crash-test the healed index.
//!
//! Run with: `cargo run -p system-tests --example heal_pclht`

use hippocrates::{Hippocrates, RepairOptions};
use pmcheck::run_and_check;
use pmvm::{Vm, VmOptions};

fn main() {
    for id in pmapps::pclht::BUG_IDS {
        println!("=== {id} ===");
        let mut m = pmapps::pclht::build_buggy(id).expect("builds");
        let entry = pmapps::pclht::ENTRY;

        let checked = run_and_check(&m, entry, VmOptions::default()).expect("runs");
        println!(
            "detected {} durability report(s); first: {}",
            checked.report.bugs.len(),
            checked.report.deduped_bugs()[0]
        );

        let outcome = Hippocrates::new(RepairOptions::default())
            .repair_until_clean(&mut m, entry)
            .expect("repair succeeds");
        for fix in &outcome.fixes {
            println!("applied: {fix}");
        }

        // Crash-test the healed index: run it, power off without any
        // further flushing, re-attach the medium, and check the table's
        // contents are intact via a fresh lookup pass.
        let run = Vm::new(VmOptions::default()).run(&m, entry).expect("runs");
        let expected = run.output.clone();
        let media = run.machine.into_media();
        let recheck = Vm::new(VmOptions::default().with_media(media))
            .run(&m, entry)
            .expect("recovery run");
        // The second run re-inserts over the recovered table; its checksum
        // must match the first (idempotent workload over durable state).
        assert_eq!(recheck.output, expected, "recovered index diverged");
        println!("recovered index checksum matches: {:?}\n", recheck.output);
    }
    println!("both P-CLHT bugs healed and crash-tested");
}
