//! `minipmdk` — a miniature PMDK analog written in `pmlang`, plus the
//! reproduced 11-issue bug corpus from the paper's study (§3, §6.1, §6.2).
//!
//! The crate ships three `pmlang` sources:
//!
//! * `libpmem.pmc` — `pmem_flush` / `pmem_drain` / `pmem_persist` /
//!   `pmem_memcpy_persist`;
//! * `pobj.pmc` — a persistent object pool (magic, bump allocator, root);
//! * `unit_tests.pmc` — one unit test per reproduced PMDK issue, with the
//!   correct persistence statement tagged `#[tag("pmdk-NNN")]` so a buggy
//!   build can elide it, and the recorded developer fix gated behind
//!   `#[when("dev-NNN")]`.
//!
//! # Example
//!
//! ```
//! // Build the issue-452 bug, confirm pmemcheck-style detection.
//! let m = minipmdk::build_buggy("pmdk-452").unwrap();
//! let checked = pmcheck::run_and_check(
//!     &m, &minipmdk::entry_for("pmdk-452"), pmvm::VmOptions::default()).unwrap();
//! assert!(!checked.report.is_clean());
//! ```

use pmir::Module;
use pmlang::{Compiler, LangError};

/// The libpmem analog source.
pub const LIBPMEM_SRC: &str = include_str!("../pmc/libpmem.pmc");
/// The libpmemobj analog source.
pub const POBJ_SRC: &str = include_str!("../pmc/pobj.pmc");
/// The unit tests with seeded issues.
pub const UNIT_TESTS_SRC: &str = include_str!("../pmc/unit_tests.pmc");

/// The 11 reproduced PMDK issues, in the paper's Fig. 3 order.
pub const PMDK_BUG_IDS: [&str; 11] = [
    "pmdk-447", "pmdk-458", "pmdk-459", "pmdk-460", "pmdk-461", "pmdk-585", "pmdk-942", "pmdk-945",
    "pmdk-452", "pmdk-940", "pmdk-943",
];

/// The unit-test entry point for an issue id (`"pmdk-452"` →
/// `"test_pmdk_452"`).
pub fn entry_for(id: &str) -> String {
    format!("test_{}", id.replace('-', "_"))
}

/// A compiler pre-loaded with the library sources (used by dependent
/// applications to link against minipmdk).
pub fn library_compiler() -> Compiler {
    Compiler::new()
        .source("libpmem.pmc", LIBPMEM_SRC)
        .source("pobj.pmc", POBJ_SRC)
}

fn unit_test_compiler() -> Compiler {
    library_compiler().source("unit_tests.pmc", UNIT_TESTS_SRC)
}

/// Builds the correct (bug-free) library + unit tests.
///
/// # Errors
///
/// Propagates compiler diagnostics (which would indicate a corrupted
/// source).
pub fn build_correct() -> Result<Module, LangError> {
    unit_test_compiler().compile()
}

/// Builds the corpus variant with `id`'s persistence statement removed —
/// the reproduced bug.
///
/// # Errors
///
/// Propagates compiler diagnostics.
pub fn build_buggy(id: &str) -> Result<Module, LangError> {
    unit_test_compiler().elide_tag(id).compile()
}

/// Builds the buggy variant plus the recorded developer fix — the baseline
/// for the Fig. 3 accuracy comparison.
///
/// # Errors
///
/// Propagates compiler diagnostics.
pub fn build_developer_fixed(id: &str) -> Result<Module, LangError> {
    unit_test_compiler()
        .elide_tag(id)
        .feature(format!("dev-{}", id.trim_start_matches("pmdk-")))
        .compile()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcheck::run_and_check;
    use pmvm::VmOptions;

    #[test]
    fn correct_build_is_clean_everywhere() {
        let m = build_correct().unwrap();
        for id in PMDK_BUG_IDS {
            let c = run_and_check(&m, &entry_for(id), VmOptions::default()).unwrap();
            assert!(c.report.is_clean(), "{id}: {}", c.report.render());
        }
        // And the run-everything entry.
        let c = run_and_check(&m, "pmdk_check_all", VmOptions::default()).unwrap();
        assert!(c.report.is_clean());
    }

    #[test]
    fn every_buggy_build_is_detected() {
        for id in PMDK_BUG_IDS {
            let m = build_buggy(id).unwrap();
            let c = run_and_check(&m, &entry_for(id), VmOptions::default()).unwrap();
            assert!(
                !c.report.is_clean(),
                "{id}: bug not detected by the checker"
            );
        }
    }

    #[test]
    fn buggy_builds_only_affect_their_own_test() {
        // Eliding issue 452's statement must not break issue 458's test.
        let m = build_buggy("pmdk-452").unwrap();
        let c = run_and_check(&m, &entry_for("pmdk-458"), VmOptions::default()).unwrap();
        assert!(c.report.is_clean(), "{}", c.report.render());
    }

    #[test]
    fn developer_fixes_are_clean() {
        for id in PMDK_BUG_IDS {
            let m = build_developer_fixed(id).unwrap();
            let c = run_and_check(&m, &entry_for(id), VmOptions::default()).unwrap();
            assert!(c.report.is_clean(), "{id}: developer fix not clean");
        }
    }

    #[test]
    fn outputs_match_across_variants() {
        // Do-no-harm ground truth: correct, buggy, and developer-fixed
        // builds all print the same values (the bug only affects crash
        // durability, not in-run behavior).
        for id in PMDK_BUG_IDS {
            let entry = entry_for(id);
            let run = |m: &Module| {
                pmvm::Vm::new(VmOptions::default())
                    .run(m, &entry)
                    .unwrap()
                    .output
            };
            let correct = run(&build_correct().unwrap());
            let buggy = run(&build_buggy(id).unwrap());
            let devfix = run(&build_developer_fixed(id).unwrap());
            assert_eq!(correct, buggy, "{id}");
            assert_eq!(correct, devfix, "{id}");
        }
    }

    #[test]
    fn pool_reuse_is_crash_consistent() {
        // Run the correct 452 test, detach the medium, re-run against it:
        // pobj_init must see the magic and keep contents.
        let m = build_correct().unwrap();
        let r1 = pmvm::Vm::new(VmOptions::default())
            .run(&m, "test_pmdk_452")
            .unwrap();
        let media = r1.machine.into_media();
        let opts = VmOptions::default().with_media(media);
        let r2 = pmvm::Vm::new(opts).run(&m, "test_pmdk_452").unwrap();
        assert_eq!(r2.output, vec![452]);
    }
}
