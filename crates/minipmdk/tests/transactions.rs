//! Crash-consistency tests of the libpmemobj-style undo-log transactions:
//! a crash mid-transaction rolls back cleanly on recovery, and the tx code
//! itself is durability-clean under the checker.

use pmcheck::run_and_check;
use pmvm::{Ended, Vm, VmOptions};

fn tx_program() -> &'static str {
    r#"
        // Writes 111/222 transactionally over initial 1/2, crashing
        // mid-update when `crash` is armed via the log cursor trick: the
        // crashpoint sits between the two protected stores.
        fn tx_update(pool: ptr) {
            pobj_tx_begin(pool);
            pobj_tx_add(pool, 4096, 8);
            pobj_tx_add(pool, 4160, 8);
            store8(pool, 4096, 111);
            pmem_persist(pool + 4096, 8);
            crashpoint();
            store8(pool, 4160, 222);
            pmem_persist(pool + 4160, 8);
            pobj_tx_commit(pool);
        }
        fn main() {
            var pool: ptr = pmem_map(77, 65536);
            pobj_init_at(pool, 8192);
            if (pobj_tx_recover(pool) == 0) {
                if (load8(pool, 4096) == 0) {
                    // First boot: install initial values.
                    store8(pool, 4096, 1);
                    store8(pool, 4160, 2);
                    pmem_persist(pool + 4096, 8);
                    pmem_persist(pool + 4160, 8);
                }
            }
            print(load8(pool, 4096));
            print(load8(pool, 4160));
            tx_update(pool);
            print(load8(pool, 4096));
            print(load8(pool, 4160));
        }
    "#
}

fn build() -> pmir::Module {
    minipmdk::library_compiler()
        .source("tx.pmc", tx_program())
        .compile()
        .unwrap()
}

#[test]
fn committed_transaction_is_clean_and_durable() {
    let m = build();
    let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
    assert!(checked.report.is_clean(), "{}", checked.report.render());
    assert_eq!(checked.run.output, vec![1, 2, 111, 222]);
    // Restart: committed values visible, no rollback.
    let media = checked.run.machine.into_media();
    let r2 = Vm::new(VmOptions::default().with_media(media))
        .run(&m, "main")
        .unwrap();
    assert_eq!(&r2.output[..2], &[111, 222]);
}

#[test]
fn crash_mid_transaction_rolls_back() {
    let m = build();
    // Crash at the checkpoint between the two protected stores.
    let run = Vm::new(VmOptions::default().stop_at(1))
        .run(&m, "main")
        .unwrap();
    assert_eq!(run.ended, Ended::CrashPoint(1));
    // The first store may or may not be durable at the crash — that is the
    // whole point of the undo log. Reboot and let recovery run.
    let media = run.machine.into_media();
    let r2 = Vm::new(VmOptions::default().with_media(media))
        .run(&m, "main")
        .unwrap();
    // Recovery rolled the first field back to 1; the pair is consistent.
    assert_eq!(
        &r2.output[..2],
        &[1, 2],
        "rollback must restore the snapshot"
    );
}

#[test]
fn tx_misuse_aborts() {
    let src = r#"
        fn main() {
            var pool: ptr = pmem_map(78, 65536);
            pobj_init_at(pool, 8192);
            pobj_tx_begin(pool);
            pobj_tx_add(pool, 4096, 49); // > 48 bytes: API misuse
        }
    "#;
    let m = minipmdk::library_compiler()
        .source("bad.pmc", src)
        .compile()
        .unwrap();
    let run = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
    assert_eq!(run.ended, Ended::Aborted(120));
}

#[test]
fn tx_log_capacity_enforced() {
    let src = r#"
        fn main() {
            var pool: ptr = pmem_map(79, 65536);
            pobj_init_at(pool, 8192);
            pobj_tx_begin(pool);
            var i: int = 0;
            while (i < 9) {
                pobj_tx_add(pool, 4096 + i * 64, 8);
                i = i + 1;
            }
        }
    "#;
    let m = minipmdk::library_compiler()
        .source("cap.pmc", src)
        .compile()
        .unwrap();
    let run = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
    assert_eq!(run.ended, Ended::Aborted(121));
}
