//! The daemon: accept loop, worker pool, job registry, and graceful
//! shutdown.
//!
//! # Operational posture
//!
//! - **A failed job never takes down the daemon or its siblings.** The
//!   worker body runs under `catch_unwind`; a panic (including one injected
//!   at the [`pmfault::FaultSite::DaemonWorker`] boundary) marks *that* job
//!   `Failed` with a structured error and the worker moves on.
//! - **Acknowledged means durable.** `Submitted` is journaled and synced
//!   before the client sees `Accepted`; terminal states are journaled with
//!   their full result. `kill -9` at any point loses at most unacknowledged
//!   work; a restart re-queues every in-flight job and serves every
//!   finished one from the journal.
//! - **Backpressure is explicit.** A full queue answers `Busy` with a
//!   retry-after hint; nothing blocks.
//! - **Graceful shutdown drains.** `Shutdown` stops new submissions,
//!   queued and running jobs run to their journaled conclusion, then the
//!   daemon removes its socket and exits.

use crate::jobs::{execute, job_digest, JobResult, JobSpec, JobState, JobView};
use crate::journal::{JobEvent, JobJournal};
use crate::proto::{
    read_frame, write_frame, Health, Request, RequestFrame, Response, ResponseFrame, JOBS_SCHEMA,
};
use crate::queue::JobQueue;
use hippocrates::WarmCache;
use pmfault::{FaultKind, FaultSite, Injector};
use std::collections::{BTreeMap, HashMap};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Daemon configuration.
pub struct ServerConfig {
    /// The Unix domain socket to listen on.
    pub socket: PathBuf,
    /// Write-ahead job journal; `None` runs without crash resumability.
    pub journal: Option<PathBuf>,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Fault plan armed at the queue/worker boundary
    /// ([`FaultSite::DaemonWorker`], keyed by submission index).
    pub fault: Option<pmfault::FaultPlan>,
    /// Observability; `serve.*` counters and per-job spans record here.
    pub obs: pmobs::Obs,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            socket: PathBuf::from("hippod.sock"),
            journal: None,
            workers: 4,
            queue_capacity: 64,
            fault: None,
            obs: pmobs::Obs::default(),
        }
    }
}

/// What `serve` reports once the daemon exits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Jobs re-queued from the journal at startup.
    pub resumed: u64,
    /// Terminal jobs at exit, by state.
    pub done: u64,
    pub failed: u64,
    pub canceled: u64,
}

struct State {
    jobs: Mutex<BTreeMap<String, JobView>>,
    specs: Mutex<HashMap<String, JobSpec>>,
    queue: JobQueue,
    journal: Option<Mutex<JobJournal>>,
    cache: WarmCache,
    results: Mutex<HashMap<u64, JobResult>>,
    /// Serializes the check-capacity → journal → enqueue sequence so the
    /// bounded queue can never overfill between check and push.
    submit_gate: Mutex<()>,
    next_id: AtomicU64,
    submit_index: AtomicU64,
    draining: AtomicBool,
    resumed: u64,
    workers: usize,
    queue_capacity: usize,
    fault: Option<Injector>,
    obs: pmobs::Obs,
}

impl State {
    fn journal_event(&self, ev: &JobEvent) -> Result<(), String> {
        match &self.journal {
            None => Ok(()),
            Some(j) => j.lock().unwrap_or_else(|e| e.into_inner()).append(ev),
        }
    }

    fn view(&self, id: &str) -> Option<JobView> {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(id)
            .cloned()
    }

    fn set_state(
        &self,
        id: &str,
        state: JobState,
        error: Option<String>,
        result: Option<JobResult>,
    ) {
        let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = jobs.get_mut(id) {
            v.state = state;
            v.error = error;
            v.result = result;
        }
    }

    /// Journals a terminal transition with its full view.
    fn finish(&self, id: &str, state: JobState, error: Option<String>, result: Option<JobResult>) {
        self.set_state(id, state, error.clone(), result.clone());
        if let Some(view) = self.view(id) {
            if let Err(e) = self.journal_event(&JobEvent::Finished { view }) {
                eprintln!("hippod: journal append failed for {id}: {e}");
            }
        }
        self.obs.add(&format!("serve.jobs.{state}"), 1);
    }

    fn counts(&self) -> (u64, u64, u64, u64, u64) {
        let jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let mut c = (0, 0, 0, 0, 0);
        for v in jobs.values() {
            match v.state {
                JobState::Queued => c.0 += 1,
                JobState::Running => c.1 += 1,
                JobState::Done => c.2 += 1,
                JobState::Failed => c.3 += 1,
                JobState::Canceled => c.4 += 1,
            }
        }
        c
    }

    fn health(&self) -> Health {
        let (queued, running, done, failed, canceled) = self.counts();
        let (cache_hits, cache_misses) = self.cache.stats();
        let result_hits = self
            .obs
            .snapshot()
            .counters
            .get("serve.results.hit")
            .copied()
            .unwrap_or(0);
        Health {
            ok: true,
            draining: self.draining.load(Ordering::SeqCst),
            queued,
            running,
            done,
            failed,
            canceled,
            queue_capacity: self.queue_capacity as u64,
            workers: self.workers as u64,
            cache_hits: cache_hits + result_hits,
            cache_misses,
            resumed: self.resumed,
        }
    }
}

/// Runs the daemon until a graceful `Shutdown` request completes its
/// drain. Binding replaces a *stale* socket file (left by a killed
/// daemon) but refuses a *live* one.
///
/// # Errors
///
/// Fails on a held journal lock (naming the holder's pid), a live socket,
/// and bind errors.
pub fn serve(config: ServerConfig) -> Result<ServeReport, String> {
    let obs = config.obs.clone();
    let _span = obs.span("serve.lifetime");

    // Open + replay the journal first: a held lock must refuse the daemon
    // before it touches the socket.
    let mut jobs: BTreeMap<String, JobView> = BTreeMap::new();
    let mut specs: HashMap<String, JobSpec> = HashMap::new();
    let mut pending: Vec<String> = vec![];
    let mut max_id = 0u64;
    let journal = match &config.journal {
        None => None,
        Some(path) => {
            let (journal, events) = JobJournal::open(path)?;
            for ev in events {
                match ev {
                    JobEvent::Submitted { id, spec } => {
                        if let Some(n) = id.strip_prefix("job-").and_then(|n| n.parse().ok()) {
                            max_id = max_id.max(n);
                        }
                        jobs.insert(
                            id.clone(),
                            JobView {
                                id: id.clone(),
                                kind: spec.kind,
                                state: JobState::Queued,
                                error: None,
                                result: None,
                            },
                        );
                        specs.insert(id.clone(), spec);
                        pending.push(id);
                    }
                    JobEvent::Finished { view } => {
                        pending.retain(|p| p != &view.id);
                        jobs.insert(view.id.clone(), view);
                    }
                }
            }
            Some(Mutex::new(journal))
        }
    };
    let resumed = pending.len() as u64;
    obs.add("serve.jobs.resumed", resumed);

    // Journaled results re-seed the whole-result cache: a finished
    // campaign stays warm across daemon restarts.
    let mut results: HashMap<u64, JobResult> = HashMap::new();
    for view in jobs.values() {
        if let (JobState::Done, Some(result), Some(spec)) =
            (view.state, view.result.as_ref(), specs.get(&view.id))
        {
            results.insert(job_digest(spec), result.clone());
        }
    }

    let listener = bind(&config.socket)?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("socket: {e}"))?;

    let state = Arc::new(State {
        jobs: Mutex::new(jobs),
        specs: Mutex::new(specs),
        queue: JobQueue::new(config.queue_capacity),
        journal,
        cache: WarmCache::enabled(),
        results: Mutex::new(results),
        submit_gate: Mutex::new(()),
        next_id: AtomicU64::new(max_id + 1),
        submit_index: AtomicU64::new(0),
        draining: AtomicBool::new(false),
        resumed,
        workers: config.workers.max(1),
        queue_capacity: config.queue_capacity,
        fault: config.fault.map(|p| Injector::with_obs(p, obs.clone())),
        obs: obs.clone(),
    });

    // In-flight jobs resume before any new submission: re-queue them in
    // submission order. The queue is empty, so pushes cannot fail.
    for id in pending {
        state
            .queue
            .push(id)
            .map_err(|_| "resume overflowed the job queue; raise --queue".to_string())?;
    }

    let workers: Vec<_> = (0..state.workers)
        .map(|_| {
            let state = state.clone();
            std::thread::spawn(move || worker_loop(&state))
        })
        .collect();

    // Accept loop. Nonblocking + sleep keeps it responsive to the drain
    // flag without platform-specific polling.
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let state = state.clone();
                std::thread::spawn(move || handle_connection(stream, &state));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if state.draining.load(Ordering::SeqCst) {
                    let (queued, running, ..) = state.counts();
                    if queued == 0 && running == 0 && state.queue.is_empty() {
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                // A transient accept failure must not kill the daemon.
                state.obs.add("serve.accept.errors", 1);
                let _ = e;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }

    state.queue.close();
    for w in workers {
        let _ = w.join();
    }
    let _ = std::fs::remove_file(&config.socket);
    let (_, _, done, failed, canceled) = state.counts();
    Ok(ServeReport {
        resumed,
        done,
        failed,
        canceled,
    })
}

/// Binds the socket, replacing a stale file but refusing a live daemon.
fn bind(path: &std::path::Path) -> Result<UnixListener, String> {
    if path.exists() {
        if UnixStream::connect(path).is_ok() {
            return Err(format!(
                "{}: a daemon is already serving on this socket",
                path.display()
            ));
        }
        std::fs::remove_file(path).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    UnixListener::bind(path).map_err(|e| format!("{}: bind: {e}", path.display()))
}

fn worker_loop(state: &State) {
    while let Some(id) = state.queue.pop() {
        // A canceled job was already journaled terminal; skip it.
        match state.view(&id).map(|v| v.state) {
            Some(JobState::Queued) => {}
            _ => continue,
        }
        state.set_state(&id, JobState::Running, None, None);
        let spec = state
            .specs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned();
        let Some(spec) = spec else {
            state.finish(&id, JobState::Failed, Some("spec lost".to_string()), None);
            continue;
        };

        // The queue/worker boundary is an injection site: occurrence index
        // is the stable submission counter, so firing is deterministic
        // regardless of worker scheduling.
        let index = state.submit_index.fetch_add(1, Ordering::SeqCst);
        if let Some(inj) = &state.fault {
            if let Some(kind) = inj.fires_at(FaultSite::DaemonWorker, index) {
                let injected = matches!(kind, FaultKind::WorkerPanic)
                    .then(|| "injected worker panic".to_string())
                    .unwrap_or_else(|| format!("injected fault: {}", kind.slug()));
                state.finish(&id, JobState::Failed, Some(injected), None);
                continue;
            }
        }

        let digest = job_digest(&spec);
        let hit = state
            .results
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&digest)
            .cloned();
        let outcome = match hit {
            Some(mut r) => {
                state.obs.add("serve.results.hit", 1);
                r.cached = true;
                Ok(r)
            }
            None => {
                state.obs.add("serve.results.miss", 1);
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    execute(&spec, &state.cache, &state.obs)
                }));
                match run {
                    Ok(Ok(r)) => {
                        state
                            .results
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .insert(digest, r.clone());
                        Ok(r)
                    }
                    Ok(Err(e)) => Err(e),
                    Err(_) => Err("job panicked; the daemon and its siblings carry on".to_string()),
                }
            }
        };
        match outcome {
            Ok(r) => state.finish(&id, JobState::Done, None, Some(r)),
            Err(e) => state.finish(&id, JobState::Failed, Some(e), None),
        }
    }
}

fn handle_connection(stream: UnixStream, state: &State) {
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let frame: Option<RequestFrame> = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(e) => {
                let _ = write_frame(
                    &mut writer,
                    &ResponseFrame::new(Response::Error { message: e }),
                );
                return;
            }
        };
        let Some(frame) = frame else {
            return; // clean EOF
        };
        let response = if frame.schema == JOBS_SCHEMA {
            respond(frame.request, state)
        } else {
            Response::Error {
                message: format!(
                    "unsupported schema `{}`; this daemon speaks `{JOBS_SCHEMA}`",
                    frame.schema
                ),
            }
        };
        if write_frame(&mut writer, &ResponseFrame::new(response)).is_err() {
            return;
        }
    }
}

fn respond(request: Request, state: &State) -> Response {
    match request {
        Request::Submit { spec } => submit(spec, state),
        Request::Status { id } => match state.view(&id) {
            Some(view) => Response::Job { view },
            None => Response::Error {
                message: format!("unknown job `{id}`"),
            },
        },
        Request::Cancel { id } => cancel(&id, state),
        Request::Health => Response::Health {
            health: state.health(),
        },
        Request::Metrics => Response::Metrics {
            json: state
                .obs
                .registry()
                .map(pmobs::Registry::snapshot_json)
                .unwrap_or_else(|| state.obs.snapshot().to_json()),
        },
        Request::Shutdown => {
            state.draining.store(true, Ordering::SeqCst);
            state.queue.close();
            state.obs.add("serve.shutdowns", 1);
            Response::ShuttingDown
        }
    }
}

fn submit(spec: JobSpec, state: &State) -> Response {
    if state.draining.load(Ordering::SeqCst) {
        return Response::Error {
            message: "daemon is draining (shutdown in progress); submission refused".to_string(),
        };
    }
    if let Err(e) = spec.validate() {
        return Response::Error { message: e };
    }
    let _gate = state.submit_gate.lock().unwrap_or_else(|e| e.into_inner());
    if state.queue.len() >= state.queue_capacity {
        state.obs.add("serve.jobs.rejected", 1);
        return Response::Busy {
            retry_after_ms: 25 * (state.queue.len().max(1) as u64),
        };
    }
    let id = format!("job-{}", state.next_id.fetch_add(1, Ordering::SeqCst));
    // Write-ahead: the journal entry lands (synced) before the client ever
    // sees the id. A crash after this point re-runs the job on resume; a
    // crash before it means the client was never told `Accepted`.
    if let Err(e) = state.journal_event(&JobEvent::Submitted {
        id: id.clone(),
        spec: spec.clone(),
    }) {
        return Response::Error {
            message: format!("journal append failed: {e}"),
        };
    }
    state.jobs.lock().unwrap_or_else(|e| e.into_inner()).insert(
        id.clone(),
        JobView {
            id: id.clone(),
            kind: spec.kind,
            state: JobState::Queued,
            error: None,
            result: None,
        },
    );
    state
        .specs
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(id.clone(), spec);
    match state.queue.push(id.clone()) {
        Ok(()) => {
            state.obs.add("serve.jobs.submitted", 1);
            Response::Accepted { id }
        }
        Err(retry_after_ms) => {
            // The gate makes this unreachable, but degrade structurally
            // (the journaled entry becomes a canceled job) if it ever
            // happens.
            state.finish(
                &id,
                JobState::Canceled,
                Some("queue full".to_string()),
                None,
            );
            Response::Busy { retry_after_ms }
        }
    }
}

fn cancel(id: &str, state: &State) -> Response {
    let Some(view) = state.view(id) else {
        return Response::Error {
            message: format!("unknown job `{id}`"),
        };
    };
    match view.state {
        JobState::Queued => {
            state.finish(id, JobState::Canceled, None, None);
            state.obs.add("serve.jobs.cancel_requests", 1);
            Response::Job {
                view: state.view(id).unwrap_or(view),
            }
        }
        JobState::Running => Response::Error {
            message: format!("job `{id}` is already running; running jobs are not interrupted"),
        },
        _ => Response::Job { view },
    }
}
