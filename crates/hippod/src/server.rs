//! The daemon: accept loop, worker pool, job registry, hostile-network
//! posture, and graceful shutdown.
//!
//! # Operational posture
//!
//! - **A failed job never takes down the daemon or its siblings.** The
//!   worker body runs under `catch_unwind`; a panic (including one injected
//!   at the [`pmfault::FaultSite::DaemonWorker`] boundary) marks *that* job
//!   `Failed` with a structured error and the worker moves on.
//! - **A broken connection never takes down the daemon either.** Torn,
//!   oversized, or garbage frames get a structured error and a close; a
//!   peer idle past the idle timeout is closed quietly; a peer stalling
//!   mid-frame trips the read deadline; a stalled *reader* trips the write
//!   deadline. Each connection owns one handler thread, so none of this
//!   blocks anyone else. Past `max_conns`, new connections are shed with
//!   `Busy` instead of accepted.
//! - **Acknowledged means durable.** `Submitted` is journaled and synced
//!   before the client sees `Accepted`; terminal states are journaled with
//!   their full result. `kill -9` at any point loses at most unacknowledged
//!   work; a restart — or a hot standby that wins the journal flock — re-
//!   queues every in-flight job and serves every finished one from the
//!   journal, byte-identically.
//! - **Backpressure is explicit.** A full queue answers `Busy` with a
//!   retry-after hint; nothing blocks.
//! - **Memory is bounded.** Chunked uploads are capped by `upload_budget`;
//!   warm caches evict LRU under `cache_budget`.
//! - **Graceful shutdown drains.** `Shutdown` stops new submissions,
//!   queued and running jobs run to their journaled conclusion, then the
//!   daemon removes its socket and exits.

use crate::jobs::{execute, job_digest, JobResult, JobSpec, JobState, JobView};
use crate::journal::{JobEvent, JobJournal};
use crate::proto::{
    read_frame_idle, write_frame, FrameIn, Health, Request, RequestFrame, Response, ResponseFrame,
    JOBS_SCHEMA, JOBS_SCHEMA_V1,
};
use crate::queue::JobQueue;
use crate::transport::{Conn, Endpoint, Listener};
use hippocrates::WarmCache;
use pmfault::{FaultKind, FaultSite, Injector};
use std::collections::{BTreeMap, HashMap};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Daemon configuration.
pub struct ServerConfig {
    /// The Unix domain socket to listen on (when `listen` is unset).
    pub socket: PathBuf,
    /// A TCP address (`host:port`) to listen on instead of the Unix
    /// socket. `host:0` picks an ephemeral port, reported via `ready`.
    pub listen: Option<String>,
    /// Write-ahead job journal; `None` runs without crash resumability.
    pub journal: Option<PathBuf>,
    /// Start as a hot standby: bind the endpoint, answer health/ping, and
    /// poll for the journal flock; take over (replay + re-queue) the
    /// moment the primary dies. Requires `journal`.
    pub standby: bool,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Live-connection cap; connections past it are shed with `Busy`.
    pub max_conns: usize,
    /// Warm-cache byte budget; `None` is unbounded.
    pub cache_budget: Option<u64>,
    /// Ceiling on bytes staged by chunked uploads, per connection.
    pub upload_budget: u64,
    /// Per-read/per-write socket deadline: a peer stalling mid-frame (or
    /// never draining its responses) errors out instead of wedging a
    /// handler.
    pub io_timeout: Duration,
    /// A connection quiet for this long between frames is closed.
    pub idle_timeout: Duration,
    /// Fault plan armed at the queue/worker boundary
    /// ([`FaultSite::DaemonWorker`], keyed by submission index) and at the
    /// connection boundary (the `net.*` sites, keyed by accept index).
    pub fault: Option<pmfault::FaultPlan>,
    /// Observability; `serve.*` counters and per-job spans record here.
    pub obs: pmobs::Obs,
    /// Reports the bound address once listening — how callers learn the
    /// real port behind `--listen host:0`.
    pub ready: Option<std::sync::mpsc::Sender<String>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            socket: PathBuf::from("hippod.sock"),
            listen: None,
            journal: None,
            standby: false,
            workers: 4,
            queue_capacity: 64,
            max_conns: 64,
            cache_budget: None,
            upload_budget: 256 * 1024 * 1024,
            io_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
            fault: None,
            obs: pmobs::Obs::default(),
            ready: None,
        }
    }
}

/// What `serve` reports once the daemon exits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Jobs re-queued from the journal at startup (or standby takeover).
    pub resumed: u64,
    /// Terminal jobs at exit, by state.
    pub done: u64,
    pub failed: u64,
    pub canceled: u64,
}

struct State {
    jobs: Mutex<BTreeMap<String, JobView>>,
    specs: Mutex<HashMap<String, JobSpec>>,
    queue: JobQueue,
    journal: Mutex<Option<JobJournal>>,
    cache: WarmCache,
    /// Serializes the check-capacity → journal → enqueue sequence so the
    /// bounded queue can never overfill between check and push.
    submit_gate: Mutex<()>,
    next_id: AtomicU64,
    submit_index: AtomicU64,
    draining: AtomicBool,
    standby: AtomicBool,
    resumed: AtomicU64,
    connections: AtomicU64,
    workers: usize,
    queue_capacity: usize,
    max_conns: usize,
    upload_budget: u64,
    io_timeout: Duration,
    idle_timeout: Duration,
    fault: Option<Injector>,
    obs: pmobs::Obs,
}

impl State {
    fn journal_event(&self, ev: &JobEvent) -> Result<(), String> {
        match &mut *self.journal.lock().unwrap_or_else(|e| e.into_inner()) {
            None => Ok(()),
            Some(j) => j.append(ev),
        }
    }

    fn view(&self, id: &str) -> Option<JobView> {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(id)
            .cloned()
    }

    fn set_state(
        &self,
        id: &str,
        state: JobState,
        error: Option<String>,
        result: Option<JobResult>,
    ) {
        let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = jobs.get_mut(id) {
            v.state = state;
            v.error = error;
            v.result = result;
        }
    }

    /// Journals a terminal transition with its full view.
    fn finish(&self, id: &str, state: JobState, error: Option<String>, result: Option<JobResult>) {
        self.set_state(id, state, error.clone(), result.clone());
        if let Some(view) = self.view(id) {
            if let Err(e) = self.journal_event(&JobEvent::Finished { view }) {
                eprintln!("hippod: journal append failed for {id}: {e}");
            }
        }
        self.obs.add(&format!("serve.jobs.{state}"), 1);
    }

    fn counts(&self) -> (u64, u64, u64, u64, u64) {
        let jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let mut c = (0, 0, 0, 0, 0);
        for v in jobs.values() {
            match v.state {
                JobState::Queued => c.0 += 1,
                JobState::Running => c.1 += 1,
                JobState::Done => c.2 += 1,
                JobState::Failed => c.3 += 1,
                JobState::Canceled => c.4 += 1,
            }
        }
        c
    }

    fn health(&self) -> Health {
        let (queued, running, done, failed, canceled) = self.counts();
        let (cache_hits, cache_misses) = self.cache.stats();
        let result_hits = self
            .obs
            .snapshot()
            .counters
            .get("serve.results.hit")
            .copied()
            .unwrap_or(0);
        Health {
            ok: true,
            draining: self.draining.load(Ordering::SeqCst),
            queued,
            running,
            done,
            failed,
            canceled,
            queue_capacity: self.queue_capacity as u64,
            workers: self.workers as u64,
            cache_hits: cache_hits + result_hits,
            cache_misses,
            resumed: self.resumed.load(Ordering::SeqCst),
            connections: self.connections.load(Ordering::SeqCst),
            cache_bytes: self.cache.bytes(),
            cache_evictions: self.cache.evictions(),
            standby: self.standby.load(Ordering::SeqCst),
        }
    }

    /// Looks up a finished result in the bounded blob cache.
    fn cached_result(&self, digest: u64) -> Option<JobResult> {
        self.cache
            .blob(digest)
            .and_then(|s| serde_json::from_str(&s).ok())
    }

    fn store_result(&self, digest: u64, result: &JobResult) {
        if let Ok(s) = serde_json::to_string(result) {
            self.cache.store_blob(digest, s, &self.obs);
        }
    }
}

/// What a journal replay reconstructs.
#[derive(Default)]
struct Replayed {
    jobs: BTreeMap<String, JobView>,
    specs: HashMap<String, JobSpec>,
    pending: Vec<String>,
    max_id: u64,
}

fn replay(events: Vec<JobEvent>) -> Replayed {
    let mut r = Replayed::default();
    for ev in events {
        match ev {
            JobEvent::Submitted { id, spec } => {
                if let Some(n) = id.strip_prefix("job-").and_then(|n| n.parse().ok()) {
                    r.max_id = r.max_id.max(n);
                }
                r.jobs.insert(
                    id.clone(),
                    JobView {
                        id: id.clone(),
                        kind: spec.kind,
                        state: JobState::Queued,
                        error: None,
                        result: None,
                    },
                );
                r.specs.insert(id.clone(), spec);
                r.pending.push(id);
            }
            JobEvent::Finished { view } => {
                r.pending.retain(|p| p != &view.id);
                r.jobs.insert(view.id.clone(), view);
            }
        }
    }
    r
}

/// Seeds the whole-result blob cache from replayed terminal jobs: a
/// finished campaign stays warm across daemon restarts and failovers.
fn seed_results(state: &State, jobs: &BTreeMap<String, JobView>, specs: &HashMap<String, JobSpec>) {
    for view in jobs.values() {
        if let (JobState::Done, Some(result), Some(spec)) =
            (view.state, view.result.as_ref(), specs.get(&view.id))
        {
            state.store_result(job_digest(spec), result);
        }
    }
}

/// Runs the daemon until a graceful `Shutdown` request completes its
/// drain.
///
/// # Errors
///
/// Fails on a held journal lock (naming the holder's pid) unless
/// `standby`, a live Unix socket, bind errors, and a standby without a
/// journal.
pub fn serve(config: ServerConfig) -> Result<ServeReport, String> {
    let obs = config.obs.clone();
    let _span = obs.span("serve.lifetime");

    let endpoint = match &config.listen {
        Some(addr) => Endpoint::Tcp(addr.clone()),
        None => Endpoint::Unix(config.socket.clone()),
    };

    // Open + replay the journal first: a held lock must refuse a primary
    // before it touches the socket. A standby *expects* the lock to be
    // held — it binds immediately and polls for the lock instead.
    let mut replayed = Replayed::default();
    let journal = if config.standby {
        if config.journal.is_none() {
            return Err("--standby requires a journal to watch".to_string());
        }
        None
    } else {
        match &config.journal {
            None => None,
            Some(path) => {
                let (journal, events) = JobJournal::open(path)?;
                replayed = replay(events);
                Some(journal)
            }
        }
    };
    let resumed = replayed.pending.len() as u64;
    obs.add("serve.jobs.resumed", resumed);

    let listener = Listener::bind(&endpoint)?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("socket: {e}"))?;
    if let Some(ready) = &config.ready {
        let _ = ready.send(listener.local_addr());
    }

    let cache = match config.cache_budget {
        Some(budget) => WarmCache::with_budget(budget),
        None => WarmCache::enabled(),
    };
    let pending = std::mem::take(&mut replayed.pending);
    let state = Arc::new(State {
        jobs: Mutex::new(std::mem::take(&mut replayed.jobs)),
        specs: Mutex::new(std::mem::take(&mut replayed.specs)),
        queue: JobQueue::new(config.queue_capacity),
        journal: Mutex::new(journal),
        cache,
        submit_gate: Mutex::new(()),
        next_id: AtomicU64::new(replayed.max_id + 1),
        submit_index: AtomicU64::new(0),
        draining: AtomicBool::new(false),
        standby: AtomicBool::new(config.standby),
        resumed: AtomicU64::new(resumed),
        connections: AtomicU64::new(0),
        workers: config.workers.max(1),
        queue_capacity: config.queue_capacity,
        max_conns: config.max_conns.max(1),
        upload_budget: config.upload_budget,
        io_timeout: config.io_timeout,
        idle_timeout: config.idle_timeout,
        fault: config.fault.map(|p| Injector::with_obs(p, obs.clone())),
        obs: obs.clone(),
    });
    {
        let jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let specs = state.specs.lock().unwrap_or_else(|e| e.into_inner());
        seed_results(&state, &jobs, &specs);
    }

    // In-flight jobs resume before any new submission: re-queue them in
    // submission order. The queue is empty, so pushes cannot fail.
    for id in pending {
        state
            .queue
            .push(id)
            .map_err(|_| "resume overflowed the job queue; raise --queue".to_string())?;
    }

    let workers: Vec<_> = (0..state.workers)
        .map(|_| {
            let state = state.clone();
            std::thread::spawn(move || worker_loop(&state))
        })
        .collect();

    let takeover = config.standby.then(|| {
        let state = state.clone();
        let path = config.journal.clone().expect("checked above");
        std::thread::spawn(move || takeover_loop(&state, &path))
    });

    // Accept loop. Nonblocking + sleep keeps it responsive to the drain
    // flag without platform-specific polling.
    let mut conn_index = 0u64;
    loop {
        match listener.accept() {
            Ok(conn) => {
                let index = conn_index;
                conn_index += 1;
                let live = state.connections.fetch_add(1, Ordering::SeqCst) + 1;
                state.obs.add("serve.conns.accepted", 1);
                let state = state.clone();
                std::thread::spawn(move || {
                    let _guard = ConnGuard(state.clone());
                    let _ = conn.set_read_timeout(Some(state.io_timeout));
                    let _ = conn.set_write_timeout(Some(state.io_timeout));
                    if live > state.max_conns as u64 {
                        // Shed: the daemon is at its connection cap.
                        state.obs.add("serve.conns.shed", 1);
                        let mut conn = conn;
                        let _ = write_frame(
                            &mut conn,
                            &ResponseFrame::new(Response::Busy {
                                retry_after_ms: 100,
                            }),
                        );
                        conn.shutdown();
                        return;
                    }
                    handle_connection(conn, &state, index);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if state.draining.load(Ordering::SeqCst) {
                    let (queued, running, ..) = state.counts();
                    if queued == 0 && running == 0 && state.queue.is_empty() {
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                // A transient accept failure must not kill the daemon.
                state.obs.add("serve.accept.errors", 1);
                let _ = e;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }

    state.queue.close();
    for w in workers {
        let _ = w.join();
    }
    if let Some(t) = takeover {
        let _ = t.join();
    }
    if let Endpoint::Unix(path) = &endpoint {
        let _ = std::fs::remove_file(path);
    }
    let (_, _, done, failed, canceled) = state.counts();
    Ok(ServeReport {
        resumed: state.resumed.load(Ordering::SeqCst),
        done,
        failed,
        canceled,
    })
}

/// Decrements the live-connection gauge when a handler exits, however it
/// exits.
struct ConnGuard(Arc<State>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The standby's watch: poll for the journal flock; the moment the
/// primary dies (releasing it), replay, re-queue unfinished jobs, and
/// start serving.
fn takeover_loop(state: &State, path: &std::path::Path) {
    loop {
        if state.draining.load(Ordering::SeqCst) {
            return;
        }
        match JobJournal::open(path) {
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
            Ok((journal, events)) => {
                let replayed = replay(events);
                {
                    let mut jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
                    for (id, view) in &replayed.jobs {
                        jobs.insert(id.clone(), view.clone());
                    }
                }
                {
                    let mut specs = state.specs.lock().unwrap_or_else(|e| e.into_inner());
                    for (id, spec) in &replayed.specs {
                        specs.insert(id.clone(), spec.clone());
                    }
                }
                seed_results(state, &replayed.jobs, &replayed.specs);
                state.next_id.store(replayed.max_id + 1, Ordering::SeqCst);
                state
                    .resumed
                    .store(replayed.pending.len() as u64, Ordering::SeqCst);
                *state.journal.lock().unwrap_or_else(|e| e.into_inner()) = Some(journal);
                // Re-queue unfinished jobs, then open for business. The
                // queue is empty (submissions were refused during
                // standby), but retry anyway if the backlog exceeds its
                // capacity.
                for id in replayed.pending {
                    loop {
                        match state.queue.push(id.clone()) {
                            Ok(()) => break,
                            Err(_) if state.draining.load(Ordering::SeqCst) => return,
                            Err(_) => std::thread::sleep(Duration::from_millis(10)),
                        }
                    }
                }
                state.standby.store(false, Ordering::SeqCst);
                state.obs.add("serve.standby.takeovers", 1);
                state
                    .obs
                    .add("serve.jobs.resumed", state.resumed.load(Ordering::SeqCst));
                return;
            }
        }
    }
}

fn worker_loop(state: &State) {
    while let Some(id) = state.queue.pop() {
        // A canceled job was already journaled terminal; skip it.
        match state.view(&id).map(|v| v.state) {
            Some(JobState::Queued) => {}
            _ => continue,
        }
        state.set_state(&id, JobState::Running, None, None);
        let spec = state
            .specs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned();
        let Some(spec) = spec else {
            state.finish(&id, JobState::Failed, Some("spec lost".to_string()), None);
            continue;
        };

        // The queue/worker boundary is an injection site: occurrence index
        // is the stable submission counter, so firing is deterministic
        // regardless of worker scheduling.
        let index = state.submit_index.fetch_add(1, Ordering::SeqCst);
        if let Some(inj) = &state.fault {
            if let Some(kind) = inj.fires_at(FaultSite::DaemonWorker, index) {
                let injected = matches!(kind, FaultKind::WorkerPanic)
                    .then(|| "injected worker panic".to_string())
                    .unwrap_or_else(|| format!("injected fault: {}", kind.slug()));
                state.finish(&id, JobState::Failed, Some(injected), None);
                continue;
            }
        }

        let digest = job_digest(&spec);
        let outcome = match state.cached_result(digest) {
            Some(mut r) => {
                state.obs.add("serve.results.hit", 1);
                r.cached = true;
                Ok(r)
            }
            None => {
                state.obs.add("serve.results.miss", 1);
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    execute(&spec, &state.cache, &state.obs)
                }));
                match run {
                    Ok(Ok(r)) => {
                        state.store_result(digest, &r);
                        Ok(r)
                    }
                    Ok(Err(e)) => Err(e),
                    Err(_) => Err("job panicked; the daemon and its siblings carry on".to_string()),
                }
            }
        };
        match outcome {
            Ok(r) => state.finish(&id, JobState::Done, None, Some(r)),
            Err(e) => state.finish(&id, JobState::Failed, Some(e), None),
        }
    }
}

/// Per-connection fault shaping, decided once from the armed plan and the
/// stable accept index.
#[derive(Default, Clone, Copy)]
struct Shaping {
    /// Write half a response frame, then close: the peer sees a torn frame.
    torn: bool,
    /// Dribble responses `chunk` bytes at a time, `delay_ms` apart — the
    /// slow-client archetype, exercised from the daemon side.
    slow: Option<(u64, u64)>,
    /// Close the connection instead of responding at all.
    drop: bool,
}

impl Shaping {
    fn at(inj: Option<&Injector>, index: u64) -> Shaping {
        let Some(inj) = inj else {
            return Shaping::default();
        };
        Shaping {
            torn: inj.fires_at(FaultSite::NetTornFrame, index).is_some(),
            slow: match inj.fires_at(FaultSite::NetSlowClient, index) {
                Some(FaultKind::SlowWrites { chunk, delay_ms }) => Some((chunk, delay_ms)),
                _ => None,
            },
            drop: inj.fires_at(FaultSite::NetConnDrop, index).is_some(),
        }
    }
}

/// Writes one response under the connection's shaping. An `Err` means the
/// connection is done (injected teardown or a real write failure).
fn send(conn: &mut Conn, frame: &ResponseFrame, shaping: Shaping) -> Result<(), String> {
    if shaping.drop {
        conn.shutdown();
        return Err("injected connection drop".to_string());
    }
    let mut buf: Vec<u8> = vec![];
    write_frame(&mut buf, frame)?;
    if shaping.torn {
        // Half a frame, then gone: the peer must surface a torn-frame
        // error, never hang.
        let half = (buf.len() / 2).max(1);
        let _ = conn.write_all(&buf[..half]);
        let _ = conn.flush();
        conn.shutdown();
        return Err("injected torn response frame".to_string());
    }
    if let Some((chunk, delay_ms)) = shaping.slow {
        for piece in buf.chunks(chunk.max(1) as usize) {
            conn.write_all(piece)
                .map_err(|e| format!("write frame: {e}"))?;
            conn.flush().map_err(|e| format!("write frame: {e}"))?;
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
        return Ok(());
    }
    conn.write_all(&buf)
        .map_err(|e| format!("write frame: {e}"))?;
    conn.flush().map_err(|e| format!("write frame: {e}"))
}

/// Chunked-upload staging, per connection: one file reassembles at a
/// time; completed files wait in arrival order for the adopting `Submit`.
#[derive(Default)]
struct Staging {
    files: Vec<(String, String)>,
    current: Option<(String, u64, String)>,
    total: u64,
}

impl Staging {
    /// Verifies and stages one chunk; answers `ChunkAccepted` or a fatal
    /// `Error` (the caller closes the connection on `Err`).
    fn chunk(
        &mut self,
        name: String,
        seq: u64,
        data: String,
        checksum: u64,
        last: bool,
        budget: u64,
    ) -> Result<Response, String> {
        if pmir::snapshot::fnv1a(data.as_bytes()) != checksum {
            return Err(format!("chunk {seq} of `{name}`: checksum mismatch"));
        }
        self.total = self.total.saturating_add(data.len() as u64);
        if self.total > budget {
            return Err(format!(
                "upload exceeds the {budget}-byte budget; split the campaign or raise --upload-budget-mb"
            ));
        }
        let (cur_name, expected, mut buf) = match self.current.take() {
            None => {
                if seq != 0 {
                    return Err(format!("chunk {seq} of `{name}` arrived before chunk 0"));
                }
                (name.clone(), 0, String::new())
            }
            Some(cur) => cur,
        };
        if cur_name != name {
            return Err(format!(
                "chunk of `{name}` interleaved with unfinished `{cur_name}`"
            ));
        }
        if seq != expected {
            return Err(format!(
                "chunk {seq} of `{name}` out of order (expected {expected})"
            ));
        }
        buf.push_str(&data);
        if last {
            let digest = pmir::snapshot::fnv1a(buf.as_bytes());
            self.files.push((name.clone(), buf));
            Ok(Response::ChunkAccepted {
                name,
                seq,
                digest: Some(digest),
            })
        } else {
            self.current = Some((cur_name, seq + 1, buf));
            Ok(Response::ChunkAccepted {
                name,
                seq,
                digest: None,
            })
        }
    }
}

fn handle_connection(conn: Conn, state: &State, index: u64) {
    let mut reader = match conn.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = conn;
    let shaping = Shaping::at(state.fault.as_ref(), index);
    let mut staging = Staging::default();
    let mut idle = Duration::ZERO;
    loop {
        let frame: RequestFrame = match read_frame_idle(&mut reader) {
            Ok(FrameIn::Frame(f)) => {
                idle = Duration::ZERO;
                f
            }
            Ok(FrameIn::Eof) => return, // clean EOF
            Ok(FrameIn::Idle) => {
                idle += state.io_timeout;
                if idle >= state.idle_timeout {
                    state.obs.add("serve.conns.idle_closed", 1);
                    writer.shutdown();
                    return;
                }
                continue;
            }
            Err(e) => {
                // Torn, oversized, or garbage frame: answer a structured
                // error and close — never panic, never hang a worker.
                state.obs.add("serve.conns.bad_frames", 1);
                let _ = send(
                    &mut writer,
                    &ResponseFrame::new(Response::Error { message: e }),
                    shaping,
                );
                writer.shutdown();
                return;
            }
        };
        let schema = frame.schema;
        let response = if schema == JOBS_SCHEMA || schema == JOBS_SCHEMA_V1 {
            match frame.request {
                Request::SourceChunk {
                    name,
                    seq,
                    data,
                    checksum,
                    last,
                } => {
                    if state.standby.load(Ordering::SeqCst) {
                        Response::Error {
                            message: "standby daemon: waiting for the journal lock; not accepting uploads".to_string(),
                        }
                    } else {
                        match staging.chunk(name, seq, data, checksum, last, state.upload_budget) {
                            Ok(r) => r,
                            Err(message) => {
                                // A bad chunk poisons the whole staged
                                // upload: error and close.
                                state.obs.add("serve.chunks.rejected", 1);
                                let _ = send(
                                    &mut writer,
                                    &ResponseFrame {
                                        schema,
                                        response: Response::Error { message },
                                    },
                                    shaping,
                                );
                                writer.shutdown();
                                return;
                            }
                        }
                    }
                }
                Request::Submit { mut spec } => {
                    if staging.files.is_empty() {
                        respond(Request::Submit { spec }, state)
                    } else {
                        // The staged files come first, in arrival order,
                        // exactly as an inline submission would carry
                        // them — digests (and artifacts) match.
                        let mut sources = staging.files.clone();
                        sources.append(&mut spec.sources);
                        spec.sources = sources;
                        let response = respond(Request::Submit { spec }, state);
                        if !matches!(response, Response::Busy { .. }) {
                            // Adopted (or refused outright); a Busy keeps
                            // the staged upload for the cheap retry.
                            staging = Staging::default();
                        }
                        response
                    }
                }
                other => respond(other, state),
            }
        } else {
            Response::Error {
                message: format!(
                    "unsupported schema `{schema}`; this daemon speaks `{JOBS_SCHEMA}` (and `{JOBS_SCHEMA_V1}`)"
                ),
            }
        };
        let frame = ResponseFrame {
            schema: if schema == JOBS_SCHEMA_V1 {
                JOBS_SCHEMA_V1.to_string()
            } else {
                JOBS_SCHEMA.to_string()
            },
            response,
        };
        if send(&mut writer, &frame, shaping).is_err() {
            return;
        }
    }
}

fn respond(request: Request, state: &State) -> Response {
    if state.standby.load(Ordering::SeqCst) {
        match &request {
            Request::Health => {
                return Response::Health {
                    health: state.health(),
                }
            }
            Request::Ping => return Response::Pong,
            Request::Metrics => {}
            Request::Shutdown => {}
            _ => {
                return Response::Error {
                    message: "standby daemon: waiting for the journal lock; not serving jobs yet"
                        .to_string(),
                }
            }
        }
    }
    match request {
        Request::Submit { spec } => submit(spec, state),
        Request::Status { id } => match state.view(&id) {
            Some(view) => Response::Job { view },
            None => Response::Error {
                message: format!("unknown job `{id}`"),
            },
        },
        Request::Cancel { id } => cancel(&id, state),
        Request::Health => Response::Health {
            health: state.health(),
        },
        Request::Ping => Response::Pong,
        Request::Metrics => Response::Metrics {
            json: state
                .obs
                .registry()
                .map(pmobs::Registry::snapshot_json)
                .unwrap_or_else(|| state.obs.snapshot().to_json()),
        },
        Request::SourceChunk { .. } => Response::Error {
            message: "SourceChunk is handled per-connection".to_string(),
        },
        Request::Shutdown => {
            state.draining.store(true, Ordering::SeqCst);
            state.queue.close();
            state.obs.add("serve.shutdowns", 1);
            Response::ShuttingDown
        }
    }
}

fn submit(spec: JobSpec, state: &State) -> Response {
    if state.draining.load(Ordering::SeqCst) {
        return Response::Error {
            message: "daemon is draining (shutdown in progress); submission refused".to_string(),
        };
    }
    if let Err(e) = spec.validate() {
        return Response::Error { message: e };
    }
    let _gate = state.submit_gate.lock().unwrap_or_else(|e| e.into_inner());
    if state.queue.len() >= state.queue_capacity {
        state.obs.add("serve.jobs.rejected", 1);
        return Response::Busy {
            retry_after_ms: 25 * (state.queue.len().max(1) as u64),
        };
    }
    let id = format!("job-{}", state.next_id.fetch_add(1, Ordering::SeqCst));
    // Write-ahead: the journal entry lands (synced) before the client ever
    // sees the id. A crash after this point re-runs the job on resume; a
    // crash before it means the client was never told `Accepted`.
    if let Err(e) = state.journal_event(&JobEvent::Submitted {
        id: id.clone(),
        spec: spec.clone(),
    }) {
        return Response::Error {
            message: format!("journal append failed: {e}"),
        };
    }
    state.jobs.lock().unwrap_or_else(|e| e.into_inner()).insert(
        id.clone(),
        JobView {
            id: id.clone(),
            kind: spec.kind,
            state: JobState::Queued,
            error: None,
            result: None,
        },
    );
    state
        .specs
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(id.clone(), spec);
    match state.queue.push(id.clone()) {
        Ok(()) => {
            state.obs.add("serve.jobs.submitted", 1);
            Response::Accepted { id }
        }
        Err(retry_after_ms) => {
            // The gate makes this unreachable, but degrade structurally
            // (the journaled entry becomes a canceled job) if it ever
            // happens.
            state.finish(
                &id,
                JobState::Canceled,
                Some("queue full".to_string()),
                None,
            );
            Response::Busy { retry_after_ms }
        }
    }
}

fn cancel(id: &str, state: &State) -> Response {
    let Some(view) = state.view(id) else {
        return Response::Error {
            message: format!("unknown job `{id}`"),
        };
    };
    match view.state {
        JobState::Queued => {
            state.finish(id, JobState::Canceled, None, None);
            state.obs.add("serve.jobs.cancel_requests", 1);
            Response::Job {
                view: state.view(id).unwrap_or(view),
            }
        }
        JobState::Running => Response::Error {
            message: format!("job `{id}` is already running; running jobs are not interrupted"),
        },
        _ => Response::Job { view },
    }
}
