//! The daemon: accept loop, worker pool, job registry, hostile-network
//! posture, and graceful shutdown.
//!
//! # Operational posture
//!
//! - **A failed job never takes down the daemon or its siblings.** The
//!   worker body runs under `catch_unwind`; a panic (including one injected
//!   at the [`pmfault::FaultSite::DaemonWorker`] boundary) marks *that* job
//!   `Failed` with a structured error and the worker moves on.
//! - **A broken connection never takes down the daemon either.** Torn,
//!   oversized, or garbage frames get a structured error and a close; a
//!   peer idle past the idle timeout is closed quietly; a peer stalling
//!   mid-frame trips the read deadline; a stalled *reader* trips the write
//!   deadline. Each connection owns one handler thread, so none of this
//!   blocks anyone else. Past `max_conns`, new connections are shed with
//!   `Busy` instead of accepted.
//! - **Acknowledged means durable.** `Submitted` is journaled and synced
//!   before the client sees `Accepted`; terminal states are journaled with
//!   their full result. `kill -9` at any point loses at most unacknowledged
//!   work; a restart — or a hot standby that wins the journal flock — re-
//!   queues every in-flight job and serves every finished one from the
//!   journal, byte-identically.
//! - **Backpressure is explicit.** A full queue answers `Busy` with a
//!   retry-after hint; nothing blocks.
//! - **Memory is bounded.** Chunked uploads are capped by `upload_budget`;
//!   warm caches evict LRU under `cache_budget`.
//! - **Graceful shutdown drains.** `Shutdown` stops new submissions,
//!   queued and running jobs run to their journaled conclusion, then the
//!   daemon removes its socket and exits.

use crate::jobs::{
    execute, execute_shard, job_digest, JobResult, JobSpec, JobState, JobView, ShardDone,
};
use crate::journal::{is_fenced, JobEvent, JobJournal};
use crate::proto::{
    read_frame_idle, write_frame, FrameIn, Health, Request, RequestFrame, Response, ResponseFrame,
    JOBS_SCHEMA, JOBS_SCHEMA_V1,
};
use crate::queue::JobQueue;
use crate::shard::{self, Campaign, Degradation};
use crate::transport::{Conn, Endpoint, Listener};
use hippocrates::WarmCache;
use pmfault::{FaultKind, FaultSite, Injector};
use std::collections::{BTreeMap, HashMap};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Daemon configuration.
pub struct ServerConfig {
    /// The Unix domain socket to listen on (when `listen` is unset).
    pub socket: PathBuf,
    /// A TCP address (`host:port`) to listen on instead of the Unix
    /// socket. `host:0` picks an ephemeral port, reported via `ready`.
    pub listen: Option<String>,
    /// Write-ahead job journal; `None` runs without crash resumability.
    pub journal: Option<PathBuf>,
    /// Start as a hot standby: bind the endpoint, answer health/ping, and
    /// poll for the journal flock; take over (replay + re-queue) the
    /// moment the primary dies. Requires `journal`.
    pub standby: bool,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Live-connection cap; connections past it are shed with `Busy`.
    pub max_conns: usize,
    /// Warm-cache byte budget; `None` is unbounded.
    pub cache_budget: Option<u64>,
    /// Ceiling on bytes staged by chunked uploads, per connection.
    pub upload_budget: u64,
    /// Per-read/per-write socket deadline: a peer stalling mid-frame (or
    /// never draining its responses) errors out instead of wedging a
    /// handler.
    pub io_timeout: Duration,
    /// A connection quiet for this long between frames is closed.
    pub idle_timeout: Duration,
    /// Fault plan armed at the queue/worker boundary
    /// ([`FaultSite::DaemonWorker`], keyed by submission index) and at the
    /// connection boundary (the `net.*` sites, keyed by accept index).
    pub fault: Option<pmfault::FaultPlan>,
    /// Observability; `serve.*` counters and per-job spans record here.
    pub obs: pmobs::Obs,
    /// Reports the bound address once listening — how callers learn the
    /// real port behind `--listen host:0`.
    pub ready: Option<std::sync::mpsc::Sender<String>>,
    /// Campaign shard lease TTL: a worker that stops heartbeating for this
    /// long loses its shard to the reaper.
    pub lease_ttl_ms: u64,
    /// Per-shard wall-clock watchdog: a shard still executing past this is
    /// abandoned (its lease expires; the reaper reassigns it).
    pub shard_watchdog_ms: u64,
    /// Reassignments per shard after the first attempt; past the budget
    /// the shard is quarantined (poison-shard detection).
    pub lease_retries: u32,
    /// Journal event count above which startup (and takeover) compacts the
    /// journal before replaying onward.
    pub compact_threshold: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            socket: PathBuf::from("hippod.sock"),
            listen: None,
            journal: None,
            standby: false,
            workers: 4,
            queue_capacity: 64,
            max_conns: 64,
            cache_budget: None,
            upload_budget: 256 * 1024 * 1024,
            io_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
            fault: None,
            obs: pmobs::Obs::default(),
            ready: None,
            lease_ttl_ms: 2_000,
            shard_watchdog_ms: 30_000,
            lease_retries: 3,
            compact_threshold: 4_096,
        }
    }
}

/// What `serve` reports once the daemon exits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Jobs re-queued from the journal at startup (or standby takeover).
    pub resumed: u64,
    /// Terminal jobs at exit, by state.
    pub done: u64,
    pub failed: u64,
    pub canceled: u64,
}

struct State {
    jobs: Mutex<BTreeMap<String, JobView>>,
    specs: Mutex<HashMap<String, JobSpec>>,
    /// In-flight sharded campaigns, keyed by job id. Lock order: campaigns
    /// before journal, never the reverse.
    campaigns: Mutex<HashMap<String, Campaign>>,
    queue: JobQueue,
    journal: Mutex<Option<JobJournal>>,
    cache: WarmCache,
    /// Serializes the check-capacity → journal → enqueue sequence so the
    /// bounded queue can never overfill between check and push.
    submit_gate: Mutex<()>,
    next_id: AtomicU64,
    submit_index: AtomicU64,
    draining: AtomicBool,
    standby: AtomicBool,
    /// Set once the accept loop exits: background threads (reaper,
    /// election) wind down.
    stopping: AtomicBool,
    /// The election epoch this daemon serves at (0 journal-less).
    epoch: AtomicU64,
    resumed: AtomicU64,
    connections: AtomicU64,
    /// One-shot latch for the injected rival-primary fault
    /// ([`FaultSite::ShardElection`]): `fires_at` is stateless, and a
    /// deposed primary that later re-wins the election would otherwise
    /// re-inject the same rival forever.
    election_fault_fired: AtomicBool,
    /// The scheduler's monotonic clock origin; `now_ms` is elapsed since.
    started: std::time::Instant,
    workers: usize,
    queue_capacity: usize,
    max_conns: usize,
    upload_budget: u64,
    io_timeout: Duration,
    idle_timeout: Duration,
    lease_ttl_ms: u64,
    shard_watchdog_ms: u64,
    lease_retries: u32,
    fault: Option<Injector>,
    obs: pmobs::Obs,
}

impl State {
    /// Milliseconds on the scheduler's monotonic clock — the `now_ms` every
    /// lease-table call uses.
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn journal_event(&self, ev: &JobEvent) -> Result<(), String> {
        let result = match &mut *self.journal.lock().unwrap_or_else(|e| e.into_inner()) {
            None => Ok(()),
            Some(j) => j.append(ev),
        };
        if let Err(e) = &result {
            if is_fenced(e) {
                self.demote(e);
            }
        }
        result
    }

    /// A fenced append means a rival primary holds the journal: stop
    /// serving, release the flock, drop in-flight campaign state (the
    /// successor re-runs it from the journal), and go contend in the
    /// election loop like any other standby.
    fn demote(&self, why: &str) {
        if self.standby.swap(true, Ordering::SeqCst) {
            return; // already demoted
        }
        *self.journal.lock().unwrap_or_else(|e| e.into_inner()) = None;
        self.campaigns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.obs.add("serve.demotions", 1);
        eprintln!("hippod: deposed primary demoting to standby: {why}");
    }

    fn view(&self, id: &str) -> Option<JobView> {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(id)
            .cloned()
    }

    fn set_state(
        &self,
        id: &str,
        state: JobState,
        error: Option<String>,
        result: Option<JobResult>,
    ) {
        let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = jobs.get_mut(id) {
            v.state = state;
            v.error = error;
            v.result = result;
        }
    }

    /// Journals a terminal transition with its full view.
    fn finish(&self, id: &str, state: JobState, error: Option<String>, result: Option<JobResult>) {
        self.set_state(id, state, error.clone(), result.clone());
        if let Some(view) = self.view(id) {
            if let Err(e) = self.journal_event(&JobEvent::Finished { view }) {
                eprintln!("hippod: journal append failed for {id}: {e}");
            }
        }
        self.obs.add(&format!("serve.jobs.{state}"), 1);
    }

    fn counts(&self) -> (u64, u64, u64, u64, u64) {
        let jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let mut c = (0, 0, 0, 0, 0);
        for v in jobs.values() {
            match v.state {
                JobState::Queued => c.0 += 1,
                JobState::Running => c.1 += 1,
                JobState::Done => c.2 += 1,
                JobState::Failed => c.3 += 1,
                JobState::Canceled => c.4 += 1,
            }
        }
        c
    }

    fn health(&self) -> Health {
        let (queued, running, done, failed, canceled) = self.counts();
        let (cache_hits, cache_misses) = self.cache.stats();
        let result_hits = self
            .obs
            .snapshot()
            .counters
            .get("serve.results.hit")
            .copied()
            .unwrap_or(0);
        Health {
            ok: true,
            draining: self.draining.load(Ordering::SeqCst),
            queued,
            running,
            done,
            failed,
            canceled,
            queue_capacity: self.queue_capacity as u64,
            workers: self.workers as u64,
            cache_hits: cache_hits + result_hits,
            cache_misses,
            resumed: self.resumed.load(Ordering::SeqCst),
            connections: self.connections.load(Ordering::SeqCst),
            cache_bytes: self.cache.bytes(),
            cache_evictions: self.cache.evictions(),
            standby: self.standby.load(Ordering::SeqCst),
            epoch: self.epoch.load(Ordering::SeqCst),
        }
    }

    /// Looks up a finished result in the bounded blob cache.
    fn cached_result(&self, digest: u64) -> Option<JobResult> {
        self.cache
            .blob(digest)
            .and_then(|s| serde_json::from_str(&s).ok())
    }

    fn store_result(&self, digest: u64, result: &JobResult) {
        if let Ok(s) = serde_json::to_string(result) {
            self.cache.store_blob(digest, s, &self.obs);
        }
    }
}

/// What a journal replay reconstructs.
#[derive(Default)]
struct Replayed {
    jobs: BTreeMap<String, JobView>,
    specs: HashMap<String, JobSpec>,
    pending: Vec<String>,
    max_id: u64,
    /// Committed shard results of still-pending campaigns (first commit
    /// per shard wins), to pre-seed their lease tables on resume.
    shard_results: HashMap<String, BTreeMap<u64, ShardDone>>,
    /// Quarantined shards of still-pending campaigns: shard →
    /// (attempts, reason).
    shard_quarantined: HashMap<String, BTreeMap<u64, (u32, String)>>,
}

fn replay(events: Vec<JobEvent>) -> Replayed {
    let mut r = Replayed::default();
    for ev in events {
        match ev {
            JobEvent::Submitted { id, spec } => {
                if let Some(n) = id.strip_prefix("job-").and_then(|n| n.parse().ok()) {
                    r.max_id = r.max_id.max(n);
                }
                r.jobs.insert(
                    id.clone(),
                    JobView {
                        id: id.clone(),
                        kind: spec.kind,
                        state: JobState::Queued,
                        error: None,
                        result: None,
                    },
                );
                r.specs.insert(id.clone(), spec);
                r.pending.push(id);
            }
            JobEvent::Finished { view } => {
                r.pending.retain(|p| p != &view.id);
                r.shard_results.remove(&view.id);
                r.shard_quarantined.remove(&view.id);
                r.jobs.insert(view.id.clone(), view);
            }
            JobEvent::ShardFinished { job, shard, result } => {
                r.shard_results
                    .entry(job)
                    .or_default()
                    .entry(shard)
                    .or_insert(result);
            }
            JobEvent::ShardQuarantined {
                job,
                shard,
                attempts,
                reason,
            } => {
                r.shard_quarantined
                    .entry(job)
                    .or_default()
                    .insert(shard, (attempts, reason));
            }
            // The epoch is tracked by the journal handle itself; lease
            // grant/renew/reclaim history and compaction checkpoints do
            // not affect the resume state.
            JobEvent::Epoch { .. }
            | JobEvent::LeaseAcquired { .. }
            | JobEvent::LeaseRenewed { .. }
            | JobEvent::LeaseReclaimed { .. }
            | JobEvent::Compacted { .. } => {}
        }
    }
    r
}

/// Seeds the whole-result blob cache from replayed terminal jobs: a
/// finished campaign stays warm across daemon restarts and failovers.
fn seed_results(state: &State, jobs: &BTreeMap<String, JobView>, specs: &HashMap<String, JobSpec>) {
    for view in jobs.values() {
        if let (JobState::Done, Some(result), Some(spec)) =
            (view.state, view.result.as_ref(), specs.get(&view.id))
        {
            state.store_result(job_digest(spec), result);
        }
    }
}

/// Runs the daemon until a graceful `Shutdown` request completes its
/// drain.
///
/// # Errors
///
/// Fails on a held journal lock (naming the holder's pid) unless
/// `standby`, a live Unix socket, bind errors, and a standby without a
/// journal.
pub fn serve(config: ServerConfig) -> Result<ServeReport, String> {
    let obs = config.obs.clone();
    let _span = obs.span("serve.lifetime");

    let endpoint = match &config.listen {
        Some(addr) => Endpoint::Tcp(addr.clone()),
        None => Endpoint::Unix(config.socket.clone()),
    };

    // Open + replay the journal first: a held lock must refuse a primary
    // before it touches the socket. A standby *expects* the lock to be
    // held — it binds immediately and contends in the election loop
    // instead.
    let mut replayed = Replayed::default();
    let mut initial_epoch = 0u64;
    let journal = if config.standby {
        if config.journal.is_none() {
            return Err("--standby requires a journal to watch".to_string());
        }
        None
    } else {
        match &config.journal {
            None => None,
            Some(path) => {
                let (mut journal, events) = JobJournal::open(path)?;
                if events.len() >= config.compact_threshold {
                    let dropped = journal.compact(&events)?;
                    obs.add("serve.journal.compacted", dropped);
                }
                // Claim the primaryship: the epoch record fences any
                // deposed predecessor that still believes it holds the
                // journal.
                initial_epoch = journal.elect()?;
                replayed = replay(events);
                Some(journal)
            }
        }
    };
    let resumed = replayed.pending.len() as u64;
    obs.add("serve.jobs.resumed", resumed);

    let listener = Listener::bind(&endpoint)?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("socket: {e}"))?;
    if let Some(ready) = &config.ready {
        let _ = ready.send(listener.local_addr());
    }

    let cache = match config.cache_budget {
        Some(budget) => WarmCache::with_budget(budget),
        None => WarmCache::enabled(),
    };
    let state = Arc::new(State {
        jobs: Mutex::new(std::mem::take(&mut replayed.jobs)),
        specs: Mutex::new(std::mem::take(&mut replayed.specs)),
        campaigns: Mutex::new(HashMap::new()),
        queue: JobQueue::new(config.queue_capacity),
        journal: Mutex::new(journal),
        cache,
        submit_gate: Mutex::new(()),
        next_id: AtomicU64::new(replayed.max_id + 1),
        submit_index: AtomicU64::new(0),
        draining: AtomicBool::new(false),
        standby: AtomicBool::new(config.standby),
        stopping: AtomicBool::new(false),
        epoch: AtomicU64::new(initial_epoch),
        resumed: AtomicU64::new(resumed),
        connections: AtomicU64::new(0),
        election_fault_fired: AtomicBool::new(false),
        started: std::time::Instant::now(),
        workers: config.workers.max(1),
        queue_capacity: config.queue_capacity,
        max_conns: config.max_conns.max(1),
        upload_budget: config.upload_budget,
        io_timeout: config.io_timeout,
        idle_timeout: config.idle_timeout,
        lease_ttl_ms: config.lease_ttl_ms.max(1),
        shard_watchdog_ms: config.shard_watchdog_ms.max(1),
        lease_retries: config.lease_retries,
        fault: config.fault.map(|p| Injector::with_obs(p, obs.clone())),
        obs: obs.clone(),
    });
    {
        let jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let specs = state.specs.lock().unwrap_or_else(|e| e.into_inner());
        seed_results(&state, &jobs, &specs);
    }

    // In-flight jobs resume before any new submission, in submission
    // order; sharded campaigns resume with their journaled shard results
    // pre-seeded.
    resume_pending(&state, &mut replayed);

    let workers: Vec<_> = (0..state.workers)
        .map(|w| {
            let state = state.clone();
            std::thread::spawn(move || worker_loop(&state, w))
        })
        .collect();

    let reaper = {
        let state = state.clone();
        std::thread::spawn(move || reaper_loop(&state))
    };

    // The election loop runs for the daemon's whole life whenever a
    // journal is configured: a standby contends for the primaryship, and
    // a deposed primary (epoch-fenced by a rival) re-enters standby and
    // contends again.
    let election = config.journal.clone().map(|path| {
        let state = state.clone();
        let threshold = config.compact_threshold;
        std::thread::spawn(move || election_loop(&state, &path, threshold))
    });

    // Accept loop. Nonblocking + sleep keeps it responsive to the drain
    // flag without platform-specific polling.
    let mut conn_index = 0u64;
    loop {
        match listener.accept() {
            Ok(conn) => {
                let index = conn_index;
                conn_index += 1;
                let live = state.connections.fetch_add(1, Ordering::SeqCst) + 1;
                state.obs.add("serve.conns.accepted", 1);
                let state = state.clone();
                std::thread::spawn(move || {
                    let _guard = ConnGuard(state.clone());
                    let _ = conn.set_read_timeout(Some(state.io_timeout));
                    let _ = conn.set_write_timeout(Some(state.io_timeout));
                    if live > state.max_conns as u64 {
                        // Shed: the daemon is at its connection cap.
                        state.obs.add("serve.conns.shed", 1);
                        let mut conn = conn;
                        let _ = write_frame(
                            &mut conn,
                            &ResponseFrame::new(Response::Busy {
                                retry_after_ms: 100,
                            }),
                        );
                        conn.shutdown();
                        return;
                    }
                    handle_connection(conn, &state, index);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if state.draining.load(Ordering::SeqCst) {
                    // A standby (including a deposed primary) has nothing
                    // to drain — its journaled pending work belongs to
                    // whoever holds the journal now.
                    if state.standby.load(Ordering::SeqCst) {
                        break;
                    }
                    let (queued, running, ..) = state.counts();
                    if queued == 0 && running == 0 && state.queue.is_empty() {
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                // A transient accept failure must not kill the daemon.
                state.obs.add("serve.accept.errors", 1);
                let _ = e;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }

    state.stopping.store(true, Ordering::SeqCst);
    state.queue.close();
    for w in workers {
        let _ = w.join();
    }
    let _ = reaper.join();
    if let Some(t) = election {
        let _ = t.join();
    }
    // Release the journal (and its flock) before returning: detached
    // connection handlers may keep the state alive past this point, and a
    // successor must not lose the election to a ghost of this daemon.
    drop(
        state
            .journal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take(),
    );
    if let Endpoint::Unix(path) = &endpoint {
        let _ = std::fs::remove_file(path);
    }
    let (_, _, done, failed, canceled) = state.counts();
    Ok(ServeReport {
        resumed: state.resumed.load(Ordering::SeqCst),
        done,
        failed,
        canceled,
    })
}

/// Decrements the live-connection gauge when a handler exits, however it
/// exits.
struct ConnGuard(Arc<State>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The election: any number of standbys (and deposed primaries) poll for
/// the journal flock. The flock acquisition *is* the election primitive —
/// exactly one contender's `JobJournal::open` succeeds — and the appended
/// `Epoch` record makes the win durable and fences the loser's stale
/// writes. Winners replay, re-queue unfinished jobs (campaigns resume
/// with journaled shard results pre-seeded), and start serving; losers
/// keep polling. The loop never exits on a win: if this primary is later
/// deposed, it demotes and contends again.
fn election_loop(state: &State, path: &std::path::Path, compact_threshold: usize) {
    loop {
        if state.stopping.load(Ordering::SeqCst) || state.draining.load(Ordering::SeqCst) {
            return;
        }
        if !state.standby.load(Ordering::SeqCst) {
            // Currently the primary; nothing to contend for.
            std::thread::sleep(Duration::from_millis(25));
            continue;
        }
        match JobJournal::open(path) {
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
            Ok((mut journal, events)) => {
                if events.len() >= compact_threshold {
                    if let Ok(dropped) = journal.compact(&events) {
                        state.obs.add("serve.journal.compacted", dropped);
                    }
                }
                let Ok(epoch) = journal.elect() else {
                    // Fenced in the open→elect window; drop the handle and
                    // re-poll.
                    continue;
                };
                let mut replayed = replay(events);
                {
                    let mut jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
                    for (id, view) in &replayed.jobs {
                        jobs.insert(id.clone(), view.clone());
                    }
                }
                {
                    let mut specs = state.specs.lock().unwrap_or_else(|e| e.into_inner());
                    for (id, spec) in &replayed.specs {
                        specs.insert(id.clone(), spec.clone());
                    }
                }
                seed_results(state, &replayed.jobs, &replayed.specs);
                let floor = state.next_id.load(Ordering::SeqCst);
                state
                    .next_id
                    .store((replayed.max_id + 1).max(floor), Ordering::SeqCst);
                state
                    .resumed
                    .store(replayed.pending.len() as u64, Ordering::SeqCst);
                state.epoch.store(epoch, Ordering::SeqCst);
                *state.journal.lock().unwrap_or_else(|e| e.into_inner()) = Some(journal);
                // Open for business *before* re-queueing, so the worker
                // pool picks the resumed work up instead of skipping it.
                state.standby.store(false, Ordering::SeqCst);
                resume_pending(state, &mut replayed);
                state.obs.add("serve.standby.takeovers", 1);
                state.obs.add("serve.elections.won", 1);
                state
                    .obs
                    .add("serve.jobs.resumed", state.resumed.load(Ordering::SeqCst));
            }
        }
    }
}

/// Re-enters every pending job from a replay: whole jobs go back on the
/// queue; sharded campaigns are reconstructed around their journaled
/// shard results and fan their remaining shards out.
fn resume_pending(state: &State, replayed: &mut Replayed) {
    let pending = std::mem::take(&mut replayed.pending);
    for id in pending {
        let spec = state
            .specs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned();
        let Some(spec) = spec else {
            state.finish(&id, JobState::Failed, Some("spec lost".to_string()), None);
            continue;
        };
        if spec.shards > 1 {
            let results = replayed.shard_results.remove(&id).unwrap_or_default();
            let quarantined = replayed.shard_quarantined.remove(&id).unwrap_or_default();
            start_campaign(state, &id, &spec, results, quarantined);
        } else if state.queue.push_internal(id.clone()).is_err() {
            // The queue is closed: the daemon is exiting. The job stays
            // journaled pending for the next primary.
            return;
        }
    }
}

/// Fans a campaign out: builds the lease table (pre-seeded with any
/// journaled shard results/quarantines), registers it, and queues the
/// outstanding shard units. A campaign whose digest is already in the
/// whole-result cache — or whose replayed shards already settle it —
/// finishes immediately.
fn start_campaign(
    state: &State,
    id: &str,
    spec: &JobSpec,
    results: BTreeMap<u64, ShardDone>,
    quarantined: BTreeMap<u64, (u32, String)>,
) {
    if results.is_empty() && quarantined.is_empty() {
        if let Some(mut r) = state.cached_result(job_digest(spec)) {
            state.obs.add("serve.results.hit", 1);
            r.cached = true;
            state.finish(id, JobState::Done, None, Some(r));
            return;
        }
        state.obs.add("serve.results.miss", 1);
    }
    let epoch = state.epoch.load(Ordering::SeqCst);
    let mut c = Campaign::new(spec.clone(), epoch, state.lease_ttl_ms, state.lease_retries);
    for (s, r) in results {
        c.seed_result(s, r);
    }
    for (s, (attempts, reason)) in quarantined {
        c.seed_quarantine(s, attempts, reason);
    }
    state.set_state(id, JobState::Running, None, None);
    if c.is_settled() {
        finalize_campaign(state, id, c);
        return;
    }
    let todo = c.unassigned(state.now_ms());
    state
        .campaigns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(id.to_string(), c);
    for s in todo {
        let _ = state.queue.push_internal(shard::shard_work_id(id, s));
    }
    state.obs.add("serve.campaigns.started", 1);
}

/// Merges and journals a settled campaign. The merged artifact is cached
/// only when undegraded — a quarantined shard's placeholder is not the
/// canonical bytes for this digest.
fn finalize_campaign(state: &State, id: &str, c: Campaign) {
    let degraded = !c.quarantined.is_empty();
    let r = c.merged_result();
    if degraded {
        state.obs.add("serve.campaigns.degraded", 1);
    } else {
        state.store_result(job_digest(&c.spec), &r);
    }
    state.obs.add("serve.campaigns.finished", 1);
    state.finish(id, JobState::Done, None, Some(r));
}

/// Finalizes the campaign iff it just settled (all shards committed or
/// quarantined).
fn try_finalize(state: &State, job: &str) {
    let settled = {
        let mut campaigns = state.campaigns.lock().unwrap_or_else(|e| e.into_inner());
        match campaigns.get(job) {
            Some(c) if c.is_settled() => campaigns.remove(job),
            _ => None,
        }
    };
    if let Some(c) = settled {
        finalize_campaign(state, job, c);
    }
}

/// The reaper: harvests expired leases (dead or hung workers), journals
/// the reclaim, schedules the retry behind a seeded backoff (or
/// quarantines the shard past its budget), and requeues shards whose
/// backoff elapsed.
fn reaper_loop(state: &State) {
    let tick = Duration::from_millis((state.lease_ttl_ms / 4).clamp(5, 250));
    while !state.stopping.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        reaper_pass(state);
    }
}

fn reaper_pass(state: &State) {
    let now = state.now_ms();
    let mut events: Vec<JobEvent> = vec![];
    let mut requeue: Vec<String> = vec![];
    let mut settled: Vec<String> = vec![];
    {
        let mut campaigns = state.campaigns.lock().unwrap_or_else(|e| e.into_inner());
        for (job, c) in campaigns.iter_mut() {
            for r in c.table.reclaim_expired(now) {
                let reason = "lease expired (holder died or hung)".to_string();
                c.trail.push(Degradation {
                    shard: r.shard,
                    attempt: r.attempt,
                    reason: reason.clone(),
                    quarantined: r.quarantined,
                });
                events.push(JobEvent::LeaseReclaimed {
                    job: job.clone(),
                    shard: r.shard,
                    epoch: r.epoch,
                    owner: r.owner.clone(),
                    attempt: r.attempt,
                    reason: reason.clone(),
                });
                if r.quarantined {
                    c.quarantined.insert(r.shard, reason.clone());
                    events.push(JobEvent::ShardQuarantined {
                        job: job.clone(),
                        shard: r.shard,
                        attempts: r.attempt + 1,
                        reason,
                    });
                    state.obs.add("serve.shards.quarantined", 1);
                } else {
                    let backoff = pmfault::backoff_ms(c.spec.seed ^ r.shard, r.attempt, 10, 200);
                    c.ready_at.insert(r.shard, now + backoff);
                    state.obs.add("serve.shards.reclaimed", 1);
                }
            }
            let due: Vec<u64> = c
                .ready_at
                .iter()
                .filter(|&(_, &t)| t <= now)
                .map(|(&s, _)| s)
                .collect();
            for s in due {
                c.ready_at.remove(&s);
                requeue.push(shard::shard_work_id(job, s));
            }
            if c.is_settled() {
                settled.push(job.clone());
            }
        }
    }
    for ev in &events {
        if state.journal_event(ev).is_err() {
            return; // fenced → demoted; campaign state is gone
        }
    }
    for id in requeue {
        let _ = state.queue.push_internal(id);
    }
    for job in settled {
        try_finalize(state, &job);
    }
}

/// Runs one leased shard unit: acquire → heartbeat while a helper thread
/// executes → commit (first-commit-wins). Injected chaos hits every edge
/// of this path; see the `FaultSite::Shard*` contracts.
fn run_shard(state: &State, job: &str, shard_idx: u64, owner: &str) {
    let (spec, lease) = {
        let mut campaigns = state.campaigns.lock().unwrap_or_else(|e| e.into_inner());
        let Some(c) = campaigns.get_mut(job) else {
            return; // campaign finalized, canceled, or demoted away
        };
        match c.table.acquire(shard_idx, owner, state.now_ms()) {
            Ok(l) => (c.spec.clone(), l),
            Err(_) => return, // done, quarantined, or raced a live holder
        }
    };
    if state
        .journal_event(&JobEvent::LeaseAcquired {
            job: job.to_string(),
            shard: shard_idx,
            epoch: lease.epoch,
            owner: owner.to_string(),
            attempt: lease.attempt,
        })
        .is_err()
    {
        return;
    }

    let occurrence = pmfault::shard_occurrence(shard_idx, lease.attempt);
    if let Some(inj) = &state.fault {
        // Chaos: the worker dies right after taking the lease. It simply
        // stops heartbeating; the reaper reclaims and reassigns.
        if inj.fires_at(FaultSite::ShardWorker, occurrence).is_some() {
            state.obs.add("serve.shards.killed", 1);
            return;
        }
    }
    // Chaos: the lease-expiry storm — this attempt never heartbeats, and
    // parks past the TTL so expiry is guaranteed before its commit.
    let storm = state.fault.as_ref().is_some_and(|inj| {
        inj.fires_at(FaultSite::ShardRenew, u64::from(lease.attempt))
            .is_some()
    });
    if storm {
        state.obs.add("serve.shards.storm_stalled", 1);
        std::thread::sleep(Duration::from_millis(
            state.lease_ttl_ms + state.lease_ttl_ms / 2,
        ));
    }

    // The shard body runs on a helper thread so this worker can heartbeat
    // the lease during execution — and abandon a hung shard to the reaper
    // instead of wedging.
    let (tx, rx) = std::sync::mpsc::channel();
    {
        let spec = spec.clone();
        let cache = state.cache.clone();
        let obs = state.obs.clone();
        std::thread::spawn(move || {
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                execute_shard(&spec, shard_idx, &cache, &obs)
            }));
            let _ = tx.send(match out {
                Ok(r) => r,
                Err(_) => Err("shard panicked".to_string()),
            });
        });
    }
    let renew_every = Duration::from_millis((state.lease_ttl_ms / 4).max(1));
    let deadline = state.now_ms() + state.shard_watchdog_ms;
    let mut journaled_renewal = false;
    loop {
        match rx.recv_timeout(renew_every) {
            Ok(outcome) => {
                commit_shard(state, job, shard_idx, owner, &lease, outcome);
                return;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if state.now_ms() >= deadline {
                    // Hung shard: abandon it. Renewals stop, the lease
                    // expires, the reaper reassigns; the helper's eventual
                    // late commit is fenced off by the lease table.
                    state.obs.add("serve.shards.abandoned", 1);
                    return;
                }
                if storm {
                    continue; // suppressed heartbeat
                }
                let renewed = {
                    let mut campaigns = state.campaigns.lock().unwrap_or_else(|e| e.into_inner());
                    match campaigns.get_mut(job) {
                        None => return, // campaign finalized or demoted away
                        Some(c) => c
                            .table
                            .renew(shard_idx, owner, lease.epoch, state.now_ms())
                            .is_ok(),
                    }
                };
                if !renewed {
                    return; // reclaimed out from under us; retry recomputes
                }
                if !journaled_renewal {
                    journaled_renewal = true;
                    let _ = state.journal_event(&JobEvent::LeaseRenewed {
                        job: job.to_string(),
                        shard: shard_idx,
                        epoch: lease.epoch,
                        owner: owner.to_string(),
                    });
                }
            }
        }
    }
}

/// Commits (or fails) one executed shard under first-commit-wins.
fn commit_shard(
    state: &State,
    job: &str,
    shard_idx: u64,
    owner: &str,
    lease: &pmtx::Lease,
    outcome: Result<ShardDone, String>,
) {
    let result = match outcome {
        Ok(r) => r,
        Err(reason) => {
            fail_shard(
                state,
                job,
                shard_idx,
                owner,
                &format!("shard failed: {reason}"),
            );
            return;
        }
    };
    let occurrence = pmfault::shard_occurrence(shard_idx, lease.attempt);
    if let Some(inj) = &state.fault {
        // Chaos: the reaper-vs-finisher race — the lease is revoked (as an
        // expiry would) at the worst moment, right before the commit. The
        // computed result is discarded; the retry recomputes it.
        if inj.fires_at(FaultSite::ShardCommit, occurrence).is_some() {
            fail_shard(
                state,
                job,
                shard_idx,
                owner,
                "injected reaper-vs-finisher commit race",
            );
            return;
        }
        // Chaos: a rival primary claims the journal between compute and
        // commit; our ShardFinished append below fences, and we demote.
        if inj.fires_at(FaultSite::ShardElection, occurrence).is_some()
            && !state.election_fault_fired.swap(true, Ordering::SeqCst)
        {
            let path = state
                .journal
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .as_ref()
                .map(|j| j.path().to_path_buf());
            if let Some(path) = path {
                let _ = crate::journal::append_rival_epoch(
                    &path,
                    state.epoch.load(Ordering::SeqCst) + 1,
                );
            }
        }
    }
    let committed = {
        let mut campaigns = state.campaigns.lock().unwrap_or_else(|e| e.into_inner());
        let Some(c) = campaigns.get_mut(job) else {
            return;
        };
        match c.table.complete(shard_idx, owner, lease.epoch) {
            Ok(()) => {
                c.results.insert(shard_idx, result.clone());
                true
            }
            Err(_) => false, // reclaimed, fenced, or already committed
        }
    };
    if !committed {
        state.obs.add("serve.shards.discarded", 1);
        return;
    }
    if state
        .journal_event(&JobEvent::ShardFinished {
            job: job.to_string(),
            shard: shard_idx,
            result,
        })
        .is_err()
    {
        return; // fenced → demoted; the successor re-runs this shard
    }
    state.obs.add("serve.shards.done", 1);
    try_finalize(state, job);
}

/// Books a failed attempt: revoke the lease, journal the reclaim, and
/// either schedule the retry behind a seeded backoff or quarantine the
/// shard past its budget.
fn fail_shard(state: &State, job: &str, shard_idx: u64, owner: &str, reason: &str) {
    let reclaimed = {
        let mut campaigns = state.campaigns.lock().unwrap_or_else(|e| e.into_inner());
        let Some(c) = campaigns.get_mut(job) else {
            return;
        };
        match c.table.revoke(shard_idx, owner) {
            Err(_) => None, // already reclaimed by the reaper
            Ok(r) => {
                c.trail.push(Degradation {
                    shard: shard_idx,
                    attempt: r.attempt,
                    reason: reason.to_string(),
                    quarantined: r.quarantined,
                });
                if r.quarantined {
                    c.quarantined.insert(shard_idx, reason.to_string());
                } else {
                    let backoff = pmfault::backoff_ms(c.spec.seed ^ shard_idx, r.attempt, 10, 200);
                    c.ready_at.insert(shard_idx, state.now_ms() + backoff);
                }
                Some(r)
            }
        }
    };
    let Some(r) = reclaimed else { return };
    let _ = state.journal_event(&JobEvent::LeaseReclaimed {
        job: job.to_string(),
        shard: shard_idx,
        epoch: r.epoch,
        owner: owner.to_string(),
        attempt: r.attempt,
        reason: reason.to_string(),
    });
    if r.quarantined {
        let _ = state.journal_event(&JobEvent::ShardQuarantined {
            job: job.to_string(),
            shard: shard_idx,
            attempts: r.attempt + 1,
            reason: reason.to_string(),
        });
        state.obs.add("serve.shards.quarantined", 1);
        try_finalize(state, job);
    } else {
        state.obs.add("serve.shards.reclaimed", 1);
    }
}

fn worker_loop(state: &State, worker: usize) {
    let owner = format!("{}:w{worker}", std::process::id());
    while let Some(id) = state.queue.pop() {
        // Shard units dispatch through the lease scheduler; the campaign
        // map is authoritative (a cleared campaign makes the unit a
        // no-op), so these never consult the standby flag.
        if let Some((job, shard_idx)) = shard::parse_work_id(&id) {
            let job = job.to_string();
            run_shard(state, &job, shard_idx, &owner);
            continue;
        }
        // Whole jobs: a standby (deposed primary) drops them — they are
        // journaled pending, and the journal holder re-runs them.
        if state.standby.load(Ordering::SeqCst) {
            continue;
        }
        // A canceled job was already journaled terminal; skip it.
        match state.view(&id).map(|v| v.state) {
            Some(JobState::Queued) => {}
            _ => continue,
        }
        state.set_state(&id, JobState::Running, None, None);
        let spec = state
            .specs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned();
        let Some(spec) = spec else {
            state.finish(&id, JobState::Failed, Some("spec lost".to_string()), None);
            continue;
        };

        // The queue/worker boundary is an injection site: occurrence index
        // is the stable submission counter, so firing is deterministic
        // regardless of worker scheduling.
        let index = state.submit_index.fetch_add(1, Ordering::SeqCst);
        if let Some(inj) = &state.fault {
            if let Some(kind) = inj.fires_at(FaultSite::DaemonWorker, index) {
                let injected = matches!(kind, FaultKind::WorkerPanic)
                    .then(|| "injected worker panic".to_string())
                    .unwrap_or_else(|| format!("injected fault: {}", kind.slug()));
                state.finish(&id, JobState::Failed, Some(injected), None);
                continue;
            }
        }

        let digest = job_digest(&spec);
        let outcome = match state.cached_result(digest) {
            Some(mut r) => {
                state.obs.add("serve.results.hit", 1);
                r.cached = true;
                Ok(r)
            }
            None => {
                state.obs.add("serve.results.miss", 1);
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    execute(&spec, &state.cache, &state.obs)
                }));
                match run {
                    Ok(Ok(r)) => {
                        state.store_result(digest, &r);
                        Ok(r)
                    }
                    Ok(Err(e)) => Err(e),
                    Err(_) => Err("job panicked; the daemon and its siblings carry on".to_string()),
                }
            }
        };
        match outcome {
            Ok(r) => state.finish(&id, JobState::Done, None, Some(r)),
            Err(e) => state.finish(&id, JobState::Failed, Some(e), None),
        }
    }
}

/// Per-connection fault shaping, decided once from the armed plan and the
/// stable accept index.
#[derive(Default, Clone, Copy)]
struct Shaping {
    /// Write half a response frame, then close: the peer sees a torn frame.
    torn: bool,
    /// Dribble responses `chunk` bytes at a time, `delay_ms` apart — the
    /// slow-client archetype, exercised from the daemon side.
    slow: Option<(u64, u64)>,
    /// Close the connection instead of responding at all.
    drop: bool,
}

impl Shaping {
    fn at(inj: Option<&Injector>, index: u64) -> Shaping {
        let Some(inj) = inj else {
            return Shaping::default();
        };
        Shaping {
            torn: inj.fires_at(FaultSite::NetTornFrame, index).is_some(),
            slow: match inj.fires_at(FaultSite::NetSlowClient, index) {
                Some(FaultKind::SlowWrites { chunk, delay_ms }) => Some((chunk, delay_ms)),
                _ => None,
            },
            drop: inj.fires_at(FaultSite::NetConnDrop, index).is_some(),
        }
    }
}

/// Writes one response under the connection's shaping. An `Err` means the
/// connection is done (injected teardown or a real write failure).
fn send(conn: &mut Conn, frame: &ResponseFrame, shaping: Shaping) -> Result<(), String> {
    if shaping.drop {
        conn.shutdown();
        return Err("injected connection drop".to_string());
    }
    let mut buf: Vec<u8> = vec![];
    write_frame(&mut buf, frame)?;
    if shaping.torn {
        // Half a frame, then gone: the peer must surface a torn-frame
        // error, never hang.
        let half = (buf.len() / 2).max(1);
        let _ = conn.write_all(&buf[..half]);
        let _ = conn.flush();
        conn.shutdown();
        return Err("injected torn response frame".to_string());
    }
    if let Some((chunk, delay_ms)) = shaping.slow {
        for piece in buf.chunks(chunk.max(1) as usize) {
            conn.write_all(piece)
                .map_err(|e| format!("write frame: {e}"))?;
            conn.flush().map_err(|e| format!("write frame: {e}"))?;
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
        return Ok(());
    }
    conn.write_all(&buf)
        .map_err(|e| format!("write frame: {e}"))?;
    conn.flush().map_err(|e| format!("write frame: {e}"))
}

/// Chunked-upload staging, per connection: one file reassembles at a
/// time; completed files wait in arrival order for the adopting `Submit`.
#[derive(Default)]
struct Staging {
    files: Vec<(String, String)>,
    current: Option<(String, u64, String)>,
    total: u64,
}

impl Staging {
    /// Verifies and stages one chunk; answers `ChunkAccepted` or a fatal
    /// `Error` (the caller closes the connection on `Err`).
    fn chunk(
        &mut self,
        name: String,
        seq: u64,
        data: String,
        checksum: u64,
        last: bool,
        budget: u64,
    ) -> Result<Response, String> {
        if pmir::snapshot::fnv1a(data.as_bytes()) != checksum {
            return Err(format!("chunk {seq} of `{name}`: checksum mismatch"));
        }
        self.total = self.total.saturating_add(data.len() as u64);
        if self.total > budget {
            return Err(format!(
                "upload exceeds the {budget}-byte budget; split the campaign or raise --upload-budget-mb"
            ));
        }
        let (cur_name, expected, mut buf) = match self.current.take() {
            None => {
                if seq != 0 {
                    return Err(format!("chunk {seq} of `{name}` arrived before chunk 0"));
                }
                (name.clone(), 0, String::new())
            }
            Some(cur) => cur,
        };
        if cur_name != name {
            return Err(format!(
                "chunk of `{name}` interleaved with unfinished `{cur_name}`"
            ));
        }
        if seq != expected {
            return Err(format!(
                "chunk {seq} of `{name}` out of order (expected {expected})"
            ));
        }
        buf.push_str(&data);
        if last {
            let digest = pmir::snapshot::fnv1a(buf.as_bytes());
            self.files.push((name.clone(), buf));
            Ok(Response::ChunkAccepted {
                name,
                seq,
                digest: Some(digest),
            })
        } else {
            self.current = Some((cur_name, seq + 1, buf));
            Ok(Response::ChunkAccepted {
                name,
                seq,
                digest: None,
            })
        }
    }
}

fn handle_connection(conn: Conn, state: &State, index: u64) {
    let mut reader = match conn.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = conn;
    let shaping = Shaping::at(state.fault.as_ref(), index);
    let mut staging = Staging::default();
    let mut idle = Duration::ZERO;
    loop {
        let frame: RequestFrame = match read_frame_idle(&mut reader) {
            Ok(FrameIn::Frame(f)) => {
                idle = Duration::ZERO;
                f
            }
            Ok(FrameIn::Eof) => return, // clean EOF
            Ok(FrameIn::Idle) => {
                idle += state.io_timeout;
                if idle >= state.idle_timeout {
                    state.obs.add("serve.conns.idle_closed", 1);
                    writer.shutdown();
                    return;
                }
                continue;
            }
            Err(e) => {
                // Torn, oversized, or garbage frame: answer a structured
                // error and close — never panic, never hang a worker.
                state.obs.add("serve.conns.bad_frames", 1);
                let _ = send(
                    &mut writer,
                    &ResponseFrame::new(Response::Error { message: e }),
                    shaping,
                );
                writer.shutdown();
                return;
            }
        };
        let schema = frame.schema;
        let response = if schema == JOBS_SCHEMA || schema == JOBS_SCHEMA_V1 {
            match frame.request {
                Request::SourceChunk {
                    name,
                    seq,
                    data,
                    checksum,
                    last,
                } => {
                    if state.standby.load(Ordering::SeqCst) {
                        Response::Error {
                            message: "standby daemon: waiting for the journal lock; not accepting uploads".to_string(),
                        }
                    } else {
                        match staging.chunk(name, seq, data, checksum, last, state.upload_budget) {
                            Ok(r) => r,
                            Err(message) => {
                                // A bad chunk poisons the whole staged
                                // upload: error and close.
                                state.obs.add("serve.chunks.rejected", 1);
                                let _ = send(
                                    &mut writer,
                                    &ResponseFrame {
                                        schema,
                                        response: Response::Error { message },
                                    },
                                    shaping,
                                );
                                writer.shutdown();
                                return;
                            }
                        }
                    }
                }
                Request::Submit { mut spec } => {
                    if staging.files.is_empty() {
                        respond(Request::Submit { spec }, state)
                    } else {
                        // The staged files come first, in arrival order,
                        // exactly as an inline submission would carry
                        // them — digests (and artifacts) match.
                        let mut sources = staging.files.clone();
                        sources.append(&mut spec.sources);
                        spec.sources = sources;
                        let response = respond(Request::Submit { spec }, state);
                        if !matches!(response, Response::Busy { .. }) {
                            // Adopted (or refused outright); a Busy keeps
                            // the staged upload for the cheap retry.
                            staging = Staging::default();
                        }
                        response
                    }
                }
                other => respond(other, state),
            }
        } else {
            Response::Error {
                message: format!(
                    "unsupported schema `{schema}`; this daemon speaks `{JOBS_SCHEMA}` (and `{JOBS_SCHEMA_V1}`)"
                ),
            }
        };
        let frame = ResponseFrame {
            schema: if schema == JOBS_SCHEMA_V1 {
                JOBS_SCHEMA_V1.to_string()
            } else {
                JOBS_SCHEMA.to_string()
            },
            response,
        };
        if send(&mut writer, &frame, shaping).is_err() {
            return;
        }
    }
}

fn respond(request: Request, state: &State) -> Response {
    if state.standby.load(Ordering::SeqCst) {
        match &request {
            Request::Health => {
                return Response::Health {
                    health: state.health(),
                }
            }
            Request::Ping => return Response::Pong,
            Request::Metrics => {}
            Request::Shutdown => {}
            _ => {
                return Response::Error {
                    message: "standby daemon: waiting for the journal lock; not serving jobs yet"
                        .to_string(),
                }
            }
        }
    }
    match request {
        Request::Submit { spec } => submit(spec, state),
        Request::Status { id } => match state.view(&id) {
            Some(view) => Response::Job { view },
            None => Response::Error {
                message: format!("unknown job `{id}`"),
            },
        },
        Request::Cancel { id } => cancel(&id, state),
        Request::Health => Response::Health {
            health: state.health(),
        },
        Request::Ping => Response::Pong,
        Request::Metrics => Response::Metrics {
            json: state
                .obs
                .registry()
                .map(pmobs::Registry::snapshot_json)
                .unwrap_or_else(|| state.obs.snapshot().to_json()),
        },
        Request::SourceChunk { .. } => Response::Error {
            message: "SourceChunk is handled per-connection".to_string(),
        },
        Request::Shutdown => {
            // Only raise the drain flag — the queue must stay open so
            // campaign shard units (and reaper requeues) already in flight
            // can finish. `serve` closes the queue after the accept loop
            // observes quiescence.
            state.draining.store(true, Ordering::SeqCst);
            state.obs.add("serve.shutdowns", 1);
            Response::ShuttingDown
        }
    }
}

fn submit(spec: JobSpec, state: &State) -> Response {
    if state.draining.load(Ordering::SeqCst) {
        return Response::Error {
            message: "daemon is draining (shutdown in progress); submission refused".to_string(),
        };
    }
    if let Err(e) = spec.validate() {
        return Response::Error { message: e };
    }
    let _gate = state.submit_gate.lock().unwrap_or_else(|e| e.into_inner());
    if state.queue.len() >= state.queue_capacity {
        state.obs.add("serve.jobs.rejected", 1);
        return Response::Busy {
            retry_after_ms: 25 * (state.queue.len().max(1) as u64),
        };
    }
    let id = format!("job-{}", state.next_id.fetch_add(1, Ordering::SeqCst));
    // Write-ahead: the journal entry lands (synced) before the client ever
    // sees the id. A crash after this point re-runs the job on resume; a
    // crash before it means the client was never told `Accepted`.
    if let Err(e) = state.journal_event(&JobEvent::Submitted {
        id: id.clone(),
        spec: spec.clone(),
    }) {
        // A fenced append means this primary was deposed mid-submit. The
        // job was NOT durably accepted — answer retryable `Busy` (never a
        // silent drop): the client's retry lands on whoever won.
        if is_fenced(&e) {
            return Response::Busy {
                retry_after_ms: 100,
            };
        }
        return Response::Error {
            message: format!("journal append failed: {e}"),
        };
    }
    state.jobs.lock().unwrap_or_else(|e| e.into_inner()).insert(
        id.clone(),
        JobView {
            id: id.clone(),
            kind: spec.kind,
            state: JobState::Queued,
            error: None,
            result: None,
        },
    );
    state
        .specs
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(id.clone(), spec.clone());
    if spec.shards > 1 {
        // Sharded campaign: fan the shard units out under the lease
        // scheduler instead of queueing the job whole.
        start_campaign(state, &id, &spec, BTreeMap::new(), BTreeMap::new());
        state.obs.add("serve.jobs.submitted", 1);
        return Response::Accepted { id };
    }
    match state.queue.push(id.clone()) {
        Ok(()) => {
            state.obs.add("serve.jobs.submitted", 1);
            Response::Accepted { id }
        }
        Err(retry_after_ms) => {
            // The gate makes this unreachable, but degrade structurally
            // (the journaled entry becomes a canceled job) if it ever
            // happens.
            state.finish(
                &id,
                JobState::Canceled,
                Some("queue full".to_string()),
                None,
            );
            Response::Busy { retry_after_ms }
        }
    }
}

fn cancel(id: &str, state: &State) -> Response {
    let Some(view) = state.view(id) else {
        return Response::Error {
            message: format!("unknown job `{id}`"),
        };
    };
    match view.state {
        JobState::Queued => {
            state.finish(id, JobState::Canceled, None, None);
            state.obs.add("serve.jobs.cancel_requests", 1);
            Response::Job {
                view: state.view(id).unwrap_or(view),
            }
        }
        JobState::Running => Response::Error {
            message: format!("job `{id}` is already running; running jobs are not interrupted"),
        },
        _ => Response::Job { view },
    }
}
