//! Transport abstraction: one daemon, two wire carriers.
//!
//! `hippo.jobs.v2` frames are carrier-agnostic; this module hides whether
//! they travel over a Unix domain socket (the PR 7 default, retained) or a
//! TCP socket (`hippoctl serve --listen 127.0.0.1:PORT`). Everything the
//! server's hostile-network posture needs is surfaced uniformly:
//!
//! - **deadlines** — [`Conn::set_read_timeout`] / [`Conn::set_write_timeout`]
//!   map onto both carriers, so a stalled peer turns into a timeout error
//!   instead of a wedged handler thread;
//! - **half-close** — [`Conn::shutdown`] lets fault injection tear a
//!   connection mid-frame deterministically;
//! - **nonblocking accept** — the server's drain-aware accept loop works
//!   identically over both listeners.
//!
//! [`Endpoint::parse`] keeps the CLI surface small: `host:port` with a
//! numeric port is TCP, anything else is a Unix socket path.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a daemon listens or a client dials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix domain socket path.
    Unix(PathBuf),
    /// A TCP address, `host:port`.
    Tcp(String),
}

impl Endpoint {
    /// Parses an endpoint spec. A spec of the form `host:port` whose final
    /// segment is all digits is TCP; everything else is a Unix socket
    /// path (so `./sockets/job:queue.sock` still works — its last segment
    /// is not numeric).
    pub fn parse(spec: &str) -> Endpoint {
        if let Some((host, port)) = spec.rsplit_once(':') {
            if !host.is_empty() && !port.is_empty() && port.bytes().all(|b| b.is_ascii_digit()) {
                return Endpoint::Tcp(spec.to_string());
            }
        }
        Endpoint::Unix(PathBuf::from(spec))
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "{a}"),
        }
    }
}

/// A bound listener on either carrier.
pub enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    /// Binds the endpoint. For Unix sockets a *stale* socket file (left by
    /// a killed daemon) is replaced; a *live* one is refused.
    ///
    /// # Errors
    ///
    /// Fails on a live Unix socket and on bind errors from either carrier.
    pub fn bind(endpoint: &Endpoint) -> Result<Listener, String> {
        match endpoint {
            Endpoint::Unix(path) => {
                if path.exists() {
                    if UnixStream::connect(path).is_ok() {
                        return Err(format!(
                            "{}: a daemon is already serving on this socket",
                            path.display()
                        ));
                    }
                    std::fs::remove_file(path).map_err(|e| format!("{}: {e}", path.display()))?;
                }
                UnixListener::bind(path)
                    .map(Listener::Unix)
                    .map_err(|e| format!("{}: bind: {e}", path.display()))
            }
            Endpoint::Tcp(addr) => TcpListener::bind(addr)
                .map(Listener::Tcp)
                .map_err(|e| format!("{addr}: bind: {e}")),
        }
    }

    /// # Errors
    ///
    /// Propagates the carrier's error.
    pub fn set_nonblocking(&self, v: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(v),
            Listener::Tcp(l) => l.set_nonblocking(v),
        }
    }

    /// Accepts one connection.
    ///
    /// # Errors
    ///
    /// Propagates the carrier's error (including `WouldBlock` when
    /// nonblocking).
    pub fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }

    /// The bound address, printable — for TCP this carries the actual
    /// port when the endpoint asked for `:0`.
    pub fn local_addr(&self) -> String {
        match self {
            Listener::Unix(l) => l
                .local_addr()
                .ok()
                .and_then(|a| a.as_pathname().map(|p| p.display().to_string()))
                .unwrap_or_default(),
            Listener::Tcp(l) => l.local_addr().map(|a| a.to_string()).unwrap_or_default(),
        }
    }
}

/// One accepted or dialed connection on either carrier.
pub enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    /// Dials the endpoint.
    ///
    /// # Errors
    ///
    /// Fails when nothing listens there.
    pub fn dial(endpoint: &Endpoint) -> Result<Conn, String> {
        match endpoint {
            Endpoint::Unix(path) => UnixStream::connect(path)
                .map(Conn::Unix)
                .map_err(|e| format!("{}: connect: {e} (is the daemon serving?)", path.display())),
            Endpoint::Tcp(addr) => TcpStream::connect(addr)
                .map(Conn::Tcp)
                .map_err(|e| format!("{addr}: connect: {e} (is the daemon serving?)")),
        }
    }

    /// # Errors
    ///
    /// Propagates the carrier's error.
    pub fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
    }

    /// # Errors
    ///
    /// Propagates the carrier's error.
    pub fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(d),
            Conn::Tcp(s) => s.set_read_timeout(d),
        }
    }

    /// # Errors
    ///
    /// Propagates the carrier's error.
    pub fn set_write_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_write_timeout(d),
            Conn::Tcp(s) => s.set_write_timeout(d),
        }
    }

    /// Half-closes both directions; errors are deliberately swallowed
    /// (the peer may already be gone).
    pub fn shutdown(&self) {
        match self {
            Conn::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_distinguishes_tcp_from_paths() {
        assert_eq!(
            Endpoint::parse("127.0.0.1:4401"),
            Endpoint::Tcp("127.0.0.1:4401".to_string())
        );
        assert_eq!(
            Endpoint::parse("localhost:80"),
            Endpoint::Tcp("localhost:80".to_string())
        );
        assert_eq!(
            Endpoint::parse("/tmp/hippod.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/hippod.sock"))
        );
        // A path whose last `:`-segment is not numeric stays a path.
        assert_eq!(
            Endpoint::parse("./sockets/job:queue.sock"),
            Endpoint::Unix(PathBuf::from("./sockets/job:queue.sock"))
        );
        // A bare `:port` is not a dialable TCP spec.
        assert_eq!(
            Endpoint::parse(":4401"),
            Endpoint::Unix(PathBuf::from(":4401"))
        );
    }

    #[test]
    fn tcp_listener_reports_its_ephemeral_port() {
        let l = Listener::bind(&Endpoint::parse("127.0.0.1:0")).unwrap();
        let addr = l.local_addr();
        assert!(addr.starts_with("127.0.0.1:"), "{addr}");
        assert_ne!(addr, "127.0.0.1:0", "the real port replaces :0");
        let c = Conn::dial(&Endpoint::parse(&addr)).unwrap();
        c.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        drop(c);
    }
}
