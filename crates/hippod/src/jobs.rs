//! Job specifications, states, and the worker body that executes them.
//!
//! A job is a self-contained request: the source files travel inline as
//! name/text pairs, so the daemon never reads the client's filesystem and the
//! compiled module carries the *original* path names in its debug
//! locations. That is what makes daemon output byte-identical to a
//! standalone `hippoctl` run over the same files — same sources, same
//! names, same deterministic pipeline, same defaults.
//!
//! Execution is pure in the spec: [`job_digest`] keys a whole-result warm
//! cache, and a hit replays the exact artifact the cold run produced.

use hippocrates::{BugSource, Hippocrates, RepairOptions, WarmCache};
use pmir::Module;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobKind {
    /// Static persistency check (`pmstatic`) — no execution.
    Lint,
    /// Crash-state exploration with the recovery oracle (`pmexplore`).
    Explore,
    /// The full detect→fix→verify repair loop; the artifact is the fixed
    /// module's textual IR.
    Fix,
    /// The inverse pass (`pmredund`): strip redundant flushes/fences with
    /// per-removal re-verification; the artifact is the optimized IR.
    Optimize,
}

impl JobKind {
    /// Parses the CLI spelling.
    ///
    /// # Errors
    ///
    /// Lists the accepted spellings.
    pub fn parse(s: &str) -> Result<JobKind, String> {
        match s {
            "lint" => Ok(JobKind::Lint),
            "explore" => Ok(JobKind::Explore),
            "fix" => Ok(JobKind::Fix),
            "optimize" => Ok(JobKind::Optimize),
            other => Err(format!(
                "job kind supports lint|explore|fix|optimize, got `{other}`"
            )),
        }
    }
}

impl fmt::Display for JobKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JobKind::Lint => "lint",
            JobKind::Explore => "explore",
            JobKind::Fix => "fix",
            JobKind::Optimize => "optimize",
        })
    }
}

/// A job's lifecycle state. Transitions only move forward:
/// `Queued → Running → {Done, Failed}`, or `Queued → Canceled`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Canceled,
}

impl JobState {
    /// Terminal states never change again (and are what the journal
    /// considers finished on resume).
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Canceled)
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Canceled => "canceled",
        })
    }
}

/// A complete job request. `sources` are `(name, text)` pairs; names
/// should be the client's original paths so diagnostics and debug
/// locations match a local run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    pub kind: JobKind,
    pub entry: String,
    pub sources: Vec<(String, String)>,
    /// `dynamic|static|both|exploration` — the fix loop's bug finder
    /// (ignored by other kinds). A string, not an enum, so the wire format
    /// matches the CLI flag verbatim.
    pub bug_source: String,
    /// Crash-state budget (explore/fix-with-exploration/optimize).
    pub budget: u64,
    /// Exploration sampler seed.
    pub seed: u64,
    /// Exploration worker threads. Never changes findings.
    pub jobs: u64,
    /// Per-job wall-clock budget (pmtx cooperative deadline). `None` is
    /// unlimited.
    pub deadline_ms: Option<u64>,
    /// Campaign fan-out: split an `explore` job into this many shard units
    /// scheduled independently across the worker pool (lease-based, see
    /// the `shard` module). `1` (the default, and the wire default for old
    /// clients) runs the job whole. The merged artifact is byte-identical
    /// for every value.
    #[serde(default = "default_shards")]
    pub shards: u64,
}

fn default_shards() -> u64 {
    1
}

/// The most shards one campaign may fan into — enough to saturate any
/// realistic worker pool while bounding journal and scheduler state.
pub const MAX_SHARDS: u64 = 64;

impl JobSpec {
    /// A spec with the same defaults as the `hippoctl` command line, so a
    /// bare submission reproduces a bare CLI run.
    pub fn new(kind: JobKind, sources: Vec<(String, String)>) -> JobSpec {
        JobSpec {
            kind,
            entry: "main".to_string(),
            sources,
            bug_source: "dynamic".to_string(),
            budget: 256,
            seed: 0,
            jobs: 1,
            deadline_ms: None,
            shards: 1,
        }
    }

    /// Validates the spec before it is journaled or queued.
    ///
    /// # Errors
    ///
    /// Returns the human-readable reason the spec is unusable.
    pub fn validate(&self) -> Result<(), String> {
        if self.sources.is_empty() {
            return Err("job has no source files".to_string());
        }
        if self.entry.is_empty() {
            return Err("job has an empty entry point".to_string());
        }
        if self.budget == 0 {
            return Err("budget must be at least 1".to_string());
        }
        if self.jobs == 0 {
            return Err("jobs must be at least 1".to_string());
        }
        if self.deadline_ms == Some(0) {
            return Err("deadline_ms must be positive (or omitted)".to_string());
        }
        if self.shards == 0 {
            return Err("shards must be at least 1".to_string());
        }
        if self.shards > MAX_SHARDS {
            return Err(format!("shards must be at most {MAX_SHARDS}"));
        }
        if self.shards > 1 && self.kind != JobKind::Explore {
            return Err(format!(
                "only explore jobs shard (got shards={} for a {} job)",
                self.shards, self.kind
            ));
        }
        parse_bug_source(&self.bug_source).map(|_| ())
    }
}

fn parse_bug_source(s: &str) -> Result<BugSource, String> {
    match s {
        "dynamic" => Ok(BugSource::Dynamic),
        "static" => Ok(BugSource::Static),
        "both" => Ok(BugSource::Both),
        "exploration" => Ok(BugSource::Exploration),
        other => Err(format!(
            "bug_source supports dynamic|static|both|exploration, got `{other}`"
        )),
    }
}

/// Digest of everything that shapes a job's artifact — the whole-result
/// cache key. Two jobs with equal digests produce byte-identical results,
/// so a cache hit *is* the cold answer.
pub fn job_digest(spec: &JobSpec) -> u64 {
    let sources = WarmCache::source_key(&spec.sources);
    let canon = format!(
        "kind={} entry={} sources={sources:016x} bug_source={} budget={} seed={} jobs={} deadline={:?} shards={}",
        spec.kind, spec.entry, spec.bug_source, spec.budget, spec.seed, spec.jobs, spec.deadline_ms, spec.shards,
    );
    pmir::snapshot::fnv1a(canon.as_bytes())
}

/// A finished job's artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// The deliverable: fixed/optimized module IR, or the rendered report
    /// for lint/explore. Byte-identical to the standalone CLI artifact.
    pub output: String,
    /// One human-readable summary line.
    pub summary: String,
    /// Whether the module/report came back clean.
    pub clean: bool,
    /// Served from the whole-result warm cache (no recomputation).
    pub cached: bool,
    pub duration_ms: u64,
}

/// One committed shard result — the unit the campaign scheduler journals
/// (`ShardFinished`) and the merge step concatenates. Deterministic in
/// `(spec, shard_index)`: any worker, on any attempt, commits these exact
/// bytes, which is what makes the merged campaign artifact byte-identical
/// no matter how many workers died along the way.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardDone {
    /// The shard's rendered exploration report.
    pub output: String,
    /// One human-readable summary line.
    pub summary: String,
    /// Whether this shard's frontier slice came back clean.
    pub clean: bool,
}

/// The client-visible view of a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobView {
    pub id: String,
    pub kind: JobKind,
    pub state: JobState,
    /// Why the job failed (state `Failed`), if it did.
    pub error: Option<String>,
    /// The artifact, once the job is `Done`.
    pub result: Option<JobResult>,
}

/// Compiles the spec's sources with their original names (cache-aware).
/// A lone `.ir` source parses as textual pmir, mirroring the standalone
/// CLI — so a healed artifact can be resubmitted for lint/explore jobs.
fn compile(spec: &JobSpec, cache: &WarmCache, obs: &pmobs::Obs) -> Result<Module, String> {
    let key = WarmCache::source_key(&spec.sources);
    let m = cache.module(key, obs, || {
        if spec.sources.iter().any(|(name, _)| name.ends_with(".ir")) {
            let [(name, text)] = &spec.sources[..] else {
                return Err("an .ir module must be loaded alone".to_string());
            };
            return pmir::parse::parse_module(text).map_err(|e| format!("{name}: {e}"));
        }
        let mut c = pmlang::Compiler::new();
        for (name, text) in &spec.sources {
            c = c.source(name.clone(), text.clone());
        }
        c.compile().map_err(|e| e.to_string())
    })?;
    // Fix/optimize mutate the module; clone out of the shared cache entry.
    Ok(Module::clone(&m))
}

/// Runs one job to completion. This is the worker body: deterministic in
/// the spec, shared-cache-aware, and it never touches the filesystem.
///
/// # Errors
///
/// Returns the failure message recorded on the job (compile errors, traps,
/// failed repairs, tripped budgets).
pub fn execute(spec: &JobSpec, cache: &WarmCache, obs: &pmobs::Obs) -> Result<JobResult, String> {
    spec.validate()?;
    let started = std::time::Instant::now();
    let _span = obs.span(&format!("serve.job.{}", spec.kind));
    let m = compile(spec, cache, obs)?;
    let (output, summary, clean) = match spec.kind {
        JobKind::Lint => lint(&m, spec, cache, obs)?,
        JobKind::Explore => explore(&m, spec, obs)?,
        JobKind::Fix => fix(m, spec, cache, obs)?,
        JobKind::Optimize => optimize(m, spec, obs)?,
    };
    Ok(JobResult {
        output,
        summary,
        clean,
        cached: false,
        duration_ms: started.elapsed().as_millis() as u64,
    })
}

/// Runs one shard of a sharded explore campaign: the same deterministic
/// pipeline as [`execute`], restricted to the shard's slice of the
/// frontier set. This is the campaign worker body — pure in
/// `(spec, shard)`, so retries after worker deaths recompute identical
/// bytes.
///
/// # Errors
///
/// Returns the failure message (compile errors, traps, tripped budgets);
/// the scheduler counts it against the shard's retry budget.
pub fn execute_shard(
    spec: &JobSpec,
    shard: u64,
    cache: &WarmCache,
    obs: &pmobs::Obs,
) -> Result<ShardDone, String> {
    spec.validate()?;
    if spec.kind != JobKind::Explore {
        return Err(format!("only explore jobs shard, not {}", spec.kind));
    }
    if shard >= spec.shards {
        return Err(format!(
            "shard {shard} out of range for a {}-shard campaign",
            spec.shards
        ));
    }
    let _span = obs.span("serve.job.explore.shard");
    let m = compile(spec, cache, obs)?;
    let opts = pmexplore::ExploreOptions {
        budget: spec.budget as usize,
        seed: spec.seed,
        jobs: spec.jobs as usize,
        obs: obs.clone(),
        shard: Some((shard, spec.shards)),
        ..pmexplore::ExploreOptions::default()
    };
    let x = pmexplore::run_and_explore(&m, &spec.entry, &opts).map_err(|e| e.to_string())?;
    let clean = x.report.is_clean();
    let summary = if clean {
        format!(
            "shard {shard}/{}: {} candidate state(s) consistent",
            spec.shards, x.report.stats.candidates
        )
    } else {
        format!(
            "shard {shard}/{}: {} inconsistent crash state(s)",
            spec.shards,
            x.report.findings.len()
        )
    };
    Ok(ShardDone {
        output: x.report.render(),
        summary,
        clean,
    })
}

fn lint(
    m: &Module,
    spec: &JobSpec,
    cache: &WarmCache,
    obs: &pmobs::Obs,
) -> Result<(String, String, bool), String> {
    let budget = pmtx::Budget::new(spec.deadline_ms, None);
    let report = cache.static_report(m, &spec.entry, obs, || {
        pmstatic::check_module_budgeted(m, &spec.entry, obs, &budget).map_err(|e| e.to_string())
    })?;
    let warnings = report.deduped_bugs().len() + report.redundant_flushes.len();
    let clean = warnings == 0;
    let summary = if clean {
        "lint: clean".to_string()
    } else {
        format!("lint: {warnings} warning(s)")
    };
    Ok((report.render(), summary, clean))
}

fn explore(m: &Module, spec: &JobSpec, obs: &pmobs::Obs) -> Result<(String, String, bool), String> {
    let opts = pmexplore::ExploreOptions {
        budget: spec.budget as usize,
        seed: spec.seed,
        jobs: spec.jobs as usize,
        obs: obs.clone(),
        ..pmexplore::ExploreOptions::default()
    };
    let x = pmexplore::run_and_explore(m, &spec.entry, &opts).map_err(|e| e.to_string())?;
    let clean = x.report.is_clean();
    let summary = if clean {
        format!(
            "explore: {} candidate state(s) consistent",
            x.report.stats.candidates
        )
    } else {
        format!(
            "explore: {} inconsistent crash state(s)",
            x.report.findings.len()
        )
    };
    Ok((x.report.render(), summary, clean))
}

fn fix(
    mut m: Module,
    spec: &JobSpec,
    cache: &WarmCache,
    obs: &pmobs::Obs,
) -> Result<(String, String, bool), String> {
    let opts = RepairOptions {
        bug_source: parse_bug_source(&spec.bug_source)?,
        explore_budget: spec.budget as usize,
        explore_seed: spec.seed,
        explore_jobs: spec.jobs as usize,
        deadline_ms: spec.deadline_ms,
        obs: obs.clone(),
        cache: cache.clone(),
        ..RepairOptions::default()
    };
    let outcome = Hippocrates::new(opts)
        .repair_until_clean(&mut m, &spec.entry)
        .map_err(|e| e.to_string())?;
    let summary = format!(
        "fix: {} fix(es), {} interprocedural, {} iteration(s), {} quarantined",
        outcome.fixes.len(),
        outcome.interprocedural_count(),
        outcome.iterations,
        outcome.quarantined.len(),
    );
    Ok((pmir::display::print_module(&m), summary, outcome.clean))
}

fn optimize(
    mut m: Module,
    spec: &JobSpec,
    obs: &pmobs::Obs,
) -> Result<(String, String, bool), String> {
    let opts = pmredund::OptimizeOptions {
        entry: spec.entry.clone(),
        explore_budget: spec.budget as usize,
        explore_seed: spec.seed,
        explore_jobs: spec.jobs as usize,
        obs: obs.clone(),
        ..pmredund::OptimizeOptions::default()
    };
    let out = pmredund::optimize_module(&mut m, &opts).map_err(|e| e.to_string())?;
    let summary = format!("optimize: {out}");
    Ok((pmir::display::print_module(&m), summary, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUGGY: &str = "fn main() {\n    var p: ptr = pmem_map(0, 4096);\n    store8(p, 0, 7);\n    print(load8(p, 0));\n}\n";

    fn spec(kind: JobKind) -> JobSpec {
        JobSpec::new(kind, vec![("buggy.pmc".to_string(), BUGGY.to_string())])
    }

    #[test]
    fn specs_validate_and_digest_by_content() {
        let s = spec(JobKind::Fix);
        s.validate().unwrap();
        let mut other = s.clone();
        assert_eq!(job_digest(&s), job_digest(&other));
        other.seed = 1;
        assert_ne!(job_digest(&s), job_digest(&other));
        let mut bad = s.clone();
        bad.sources.clear();
        assert!(bad.validate().is_err());
        bad = s.clone();
        bad.bug_source = "psychic".to_string();
        let msg = bad.validate().unwrap_err();
        assert!(msg.contains("dynamic|static|both|exploration"), "{msg}");
    }

    #[test]
    fn fix_job_repairs_and_emits_module_text() {
        let cache = WarmCache::enabled();
        let obs = pmobs::Obs::default();
        let r = execute(&spec(JobKind::Fix), &cache, &obs).unwrap();
        assert!(r.clean);
        assert!(!r.cached);
        assert!(r.output.contains("clwb"), "fix must insert a flush");
        assert!(r.summary.starts_with("fix: 1 fix(es)"), "{}", r.summary);
    }

    #[test]
    fn fix_jobs_are_deterministic_across_cold_and_warm_caches() {
        // Byte-identity is the daemon's core contract: warm-cache runs must
        // produce exactly the cold artifact.
        let cold = execute(
            &spec(JobKind::Fix),
            &WarmCache::default(),
            &pmobs::Obs::default(),
        )
        .unwrap();
        let cache = WarmCache::enabled();
        let warm1 = execute(&spec(JobKind::Fix), &cache, &pmobs::Obs::default()).unwrap();
        let warm2 = execute(&spec(JobKind::Fix), &cache, &pmobs::Obs::default()).unwrap();
        assert_eq!(cold.output, warm1.output);
        assert_eq!(warm1.output, warm2.output);
        let (hits, _) = cache.stats();
        assert!(hits > 0, "second run must hit the warm cache");
    }

    #[test]
    fn lint_and_explore_jobs_report_findings() {
        let cache = WarmCache::enabled();
        let obs = pmobs::Obs::default();
        let lint = execute(&spec(JobKind::Lint), &cache, &obs).unwrap();
        assert!(!lint.clean, "the unflushed store must lint dirty");
        let explore = execute(&spec(JobKind::Explore), &cache, &obs).unwrap();
        assert!(
            explore.summary.starts_with("explore:"),
            "{}",
            explore.summary
        );
    }

    #[test]
    fn a_lone_ir_source_parses_as_textual_pmir() {
        let cache = WarmCache::enabled();
        let obs = pmobs::Obs::default();
        // Heal the buggy app, then resubmit its artifact as an .ir lint job.
        let healed = execute(&spec(JobKind::Fix), &cache, &obs).unwrap();
        let lint = JobSpec::new(
            JobKind::Lint,
            vec![("healed.ir".to_string(), healed.output.clone())],
        );
        let report = execute(&lint, &cache, &obs).unwrap();
        assert!(report.clean, "the healed artifact must lint clean");
        // An .ir source refuses company, like the standalone CLI.
        let mixed = JobSpec::new(
            JobKind::Lint,
            vec![
                ("healed.ir".to_string(), healed.output),
                ("buggy.pmc".to_string(), BUGGY.to_string()),
            ],
        );
        let err = execute(&mixed, &cache, &obs).unwrap_err();
        assert!(err.contains("loaded alone"), "{err}");
    }

    #[test]
    fn compile_errors_surface_as_job_failures() {
        let cache = WarmCache::default();
        let obs = pmobs::Obs::default();
        let bad = JobSpec::new(
            JobKind::Lint,
            vec![("bad.pmc".to_string(), "fn main( {".to_string())],
        );
        assert!(execute(&bad, &cache, &obs).is_err());
    }
}
