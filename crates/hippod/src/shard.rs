//! Campaign sharding: deterministic shard units, the per-campaign
//! scheduler state, and the merge that makes a faulted multi-worker
//! campaign byte-identical to a single-worker run.
//!
//! A sharded explore job splits its frontier set into `spec.shards`
//! deterministic slices (frontier index modulo shard count — see
//! [`pmexplore::ExploreOptions::shard`]). Each slice is one **shard
//! unit**: an independently schedulable, independently retryable piece of
//! work whose result is pure in `(spec, shard_index)`. The scheduler in
//! `server.rs` hands shard units to the worker pool under
//! [`pmtx::LeaseTable`] leases; this module owns everything that is *not*
//! scheduling policy — the work-unit id encoding, the campaign
//! bookkeeping, the degradation trail, and the order-deterministic merge.
//!
//! **The byte-identity invariant.** [`merge`] concatenates committed
//! shard reports in shard-index order with fixed headers. Nothing about
//! worker deaths, lease reclaims, retries, or which worker won a commit
//! race appears in the artifact — that history lives in the journal and
//! the [`Degradation`] trail instead. Hence a campaign that lost two
//! workers and survived a lease-expiry storm merges the exact bytes of an
//! undisturbed single-worker run ([`run_local`]), which is what the chaos
//! gate asserts.

use crate::jobs::{execute_shard, JobKind, JobResult, JobSpec, ShardDone};
use hippocrates::WarmCache;
use pmtx::LeaseTable;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Separator between a job id and its shard index in queue work units.
const SHARD_SEP: &str = "#shard-";

/// Encodes the queue work unit for one shard of a campaign job. Client
/// visible ids stay `job-N`; only the internal queue carries these.
pub fn shard_work_id(job: &str, shard: u64) -> String {
    format!("{job}{SHARD_SEP}{shard}")
}

/// Decodes a queue work unit: `Some((job, shard))` for shard units,
/// `None` for whole jobs.
pub fn parse_work_id(id: &str) -> Option<(&str, u64)> {
    let (job, rest) = id.split_once(SHARD_SEP)?;
    rest.parse().ok().map(|shard| (job, shard))
}

/// One entry in a campaign's structured degradation trail: something went
/// wrong, the scheduler absorbed it, and the campaign carried on. The
/// trail is diagnostic metadata — it never leaks into the merged artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Degradation {
    pub shard: u64,
    /// The attempt that failed (0-based).
    pub attempt: u32,
    pub reason: String,
    /// True when this failure exhausted the shard's retry budget.
    pub quarantined: bool,
}

/// One in-flight sharded campaign: the lease table plus committed
/// results, quarantine reasons, backoff schedule, and degradation trail.
/// Scheduling decisions (when to reap, what to requeue) live in
/// `server.rs`; this is the bookkeeping they share.
pub struct Campaign {
    pub spec: JobSpec,
    pub table: LeaseTable,
    /// Committed shard results, first-commit-wins, keyed by shard index.
    pub results: BTreeMap<u64, ShardDone>,
    /// Quarantined shards and why.
    pub quarantined: BTreeMap<u64, String>,
    /// Reclaimed shards sit out a seeded backoff: shard → not-before, on
    /// the scheduler's clock.
    pub ready_at: BTreeMap<u64, u64>,
    pub trail: Vec<Degradation>,
    pub started: std::time::Instant,
}

impl Campaign {
    /// A fresh campaign for `spec` under election `epoch`.
    pub fn new(spec: JobSpec, epoch: u64, ttl_ms: u64, retries: u32) -> Campaign {
        let total = spec.shards;
        Campaign {
            spec,
            table: LeaseTable::new(epoch, total, ttl_ms, retries),
            results: BTreeMap::new(),
            quarantined: BTreeMap::new(),
            ready_at: BTreeMap::new(),
            trail: Vec::new(),
            started: std::time::Instant::now(),
        }
    }

    /// Pre-seeds a journaled shard result (resume / takeover replay).
    pub fn seed_result(&mut self, shard: u64, result: ShardDone) {
        self.table.seed_done(shard);
        self.results.insert(shard, result);
    }

    /// Pre-seeds a journaled quarantine (resume / takeover replay).
    pub fn seed_quarantine(&mut self, shard: u64, attempts: u32, reason: String) {
        self.table.seed_quarantined(shard, attempts);
        self.trail.push(Degradation {
            shard,
            attempt: attempts.saturating_sub(1),
            reason: reason.clone(),
            quarantined: true,
        });
        self.quarantined.insert(shard, reason);
    }

    /// Shards that still need their first (or next) grant — what to queue.
    pub fn unassigned(&self, now_ms: u64) -> Vec<u64> {
        self.table
            .assignable(now_ms)
            .into_iter()
            .filter(|s| !self.ready_at.contains_key(s))
            .collect()
    }

    /// Whether every shard committed or quarantined.
    pub fn is_settled(&self) -> bool {
        self.table.is_settled()
    }

    /// The merged campaign artifact (see [`merge`]), stamped with this
    /// campaign's wall-clock duration.
    pub fn merged_result(&self) -> JobResult {
        let (output, summary, clean) = merge(self.spec.shards, &self.results, &self.quarantined);
        JobResult {
            output,
            summary,
            clean,
            cached: false,
            duration_ms: self.started.elapsed().as_millis() as u64,
        }
    }
}

/// Merges committed shard reports into the final campaign artifact:
/// shard-index order, fixed headers, nothing schedule-dependent. A
/// quarantined shard contributes a deterministic placeholder (and marks
/// the artifact dirty); a fault-free campaign has none, so its merge is
/// byte-identical to [`run_local`]'s.
pub fn merge(
    total: u64,
    results: &BTreeMap<u64, ShardDone>,
    quarantined: &BTreeMap<u64, String>,
) -> (String, String, bool) {
    let mut output = String::new();
    let mut dirty = 0u64;
    for shard in 0..total {
        if let Some(r) = results.get(&shard) {
            output.push_str(&format!("== shard {shard}/{total} ==\n"));
            output.push_str(&r.output);
            if !r.output.ends_with('\n') {
                output.push('\n');
            }
            if !r.clean {
                dirty += 1;
            }
        } else if quarantined.contains_key(&shard) {
            output.push_str(&format!("== shard {shard}/{total} quarantined ==\n"));
        }
    }
    let q = quarantined.len();
    let clean = q == 0 && dirty == 0;
    let summary = if q == 0 {
        format!("campaign: {total} shard(s) merged, {dirty} dirty")
    } else {
        format!(
            "campaign: {} shard(s) merged, {dirty} dirty, {q} quarantined (degraded)",
            total - q as u64
        )
    };
    (output, summary, clean)
}

/// Runs a sharded campaign locally: every shard in order, one worker, no
/// daemon, no faults. This is the chaos gate's baseline — the bytes any
/// faulted multi-worker run of the same spec must reproduce exactly.
///
/// # Errors
///
/// Returns the first shard's failure message (local runs have no retry
/// budget; they are the reference, not the survivor).
pub fn run_local(spec: &JobSpec, cache: &WarmCache, obs: &pmobs::Obs) -> Result<JobResult, String> {
    spec.validate()?;
    if spec.kind != JobKind::Explore || spec.shards < 2 {
        return Err("run_local takes a sharded explore campaign".to_string());
    }
    let started = std::time::Instant::now();
    let mut results = BTreeMap::new();
    for shard in 0..spec.shards {
        results.insert(shard, execute_shard(spec, shard, cache, obs)?);
    }
    let (output, summary, clean) = merge(spec.shards, &results, &BTreeMap::new());
    Ok(JobResult {
        output,
        summary,
        clean,
        cached: false,
        duration_ms: started.elapsed().as_millis() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_ids_roundtrip_and_reject_whole_jobs() {
        let id = shard_work_id("job-7", 3);
        assert_eq!(id, "job-7#shard-3");
        assert_eq!(parse_work_id(&id), Some(("job-7", 3)));
        assert_eq!(parse_work_id("job-7"), None);
        assert_eq!(parse_work_id("job-7#shard-x"), None);
    }

    fn done(shard: u64, clean: bool) -> ShardDone {
        ShardDone {
            output: format!("report {shard}\n"),
            summary: format!("shard {shard}/3: x"),
            clean,
        }
    }

    #[test]
    fn merge_is_ordered_and_schedule_independent() {
        // Commit order 2, 0, 1 — merge order must still be 0, 1, 2.
        let mut results = BTreeMap::new();
        results.insert(2, done(2, true));
        results.insert(0, done(0, true));
        results.insert(1, done(1, false));
        let (out, summary, clean) = merge(3, &results, &BTreeMap::new());
        assert_eq!(
            out,
            "== shard 0/3 ==\nreport 0\n== shard 1/3 ==\nreport 1\n== shard 2/3 ==\nreport 2\n"
        );
        assert!(!clean, "one dirty shard dirties the campaign");
        assert_eq!(summary, "campaign: 3 shard(s) merged, 1 dirty");
    }

    #[test]
    fn quarantined_shards_leave_a_deterministic_placeholder() {
        let mut results = BTreeMap::new();
        results.insert(0, done(0, true));
        results.insert(2, done(2, true));
        let mut quarantined = BTreeMap::new();
        quarantined.insert(1u64, "injected worker kill".to_string());
        let (out, summary, clean) = merge(3, &results, &quarantined);
        assert!(out.contains("== shard 1/3 quarantined ==\n"), "{out}");
        assert!(!clean);
        assert!(summary.contains("1 quarantined (degraded)"), "{summary}");
    }

    #[test]
    fn campaign_bookkeeping_settles_and_merges() {
        let spec = {
            let mut s = JobSpec::new(
                JobKind::Explore,
                vec![("a.pmc".to_string(), "fn main() {}".to_string())],
            );
            s.shards = 2;
            s
        };
        let mut c = Campaign::new(spec, 1, 100, 2);
        assert_eq!(c.unassigned(0), vec![0, 1]);
        assert!(!c.is_settled());
        c.seed_result(0, done(0, true));
        c.seed_quarantine(1, 3, "poison".to_string());
        assert!(c.is_settled());
        let r = c.merged_result();
        assert!(!r.clean);
        assert_eq!(c.trail.len(), 1);
        assert!(c.trail[0].quarantined);
    }
}
