//! The `hippo.jobs.v1` wire protocol: length-prefixed JSON frames over a
//! Unix domain socket.
//!
//! # Framing
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! [ 4-byte big-endian payload length ][ payload: UTF-8 JSON ]
//! ```
//!
//! The JSON payload is an envelope carrying the schema tag, so a peer
//! speaking a future `hippo.jobs.v2` is refused with a structured error
//! instead of a parse failure:
//!
//! ```json
//! {"schema":"hippo.jobs.v1","request":{"Health":[]}}
//! {"schema":"hippo.jobs.v1","response":{"Health":{"health":{...}}}}
//! ```
//!
//! Frames larger than [`MAX_FRAME`] are refused before allocation — a
//! corrupt length prefix must not OOM the daemon. A clean EOF *between*
//! frames ends the connection; EOF *inside* a frame is an error.
//!
//! # Conversation
//!
//! A connection carries any number of request→response exchanges in
//! lockstep (no pipelining). Backpressure is explicit: a `Submit` against a
//! full queue gets [`Response::Busy`] with a `retry_after_ms` hint, never a
//! blocked socket.

use crate::jobs::{JobSpec, JobView};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// The protocol schema tag carried by every envelope.
pub const JOBS_SCHEMA: &str = "hippo.jobs.v1";

/// Hard ceiling on a single frame's payload (16 MiB) — submissions carry
/// source text inline, so the limit is generous; a garbage length prefix is
/// not.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// A client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Enqueue a job. Answered with `Accepted`, `Busy`, or `Error`.
    Submit { spec: JobSpec },
    /// Report a job's current state (and result, once terminal).
    Status { id: String },
    /// Cancel a queued job. Running jobs are not interrupted.
    Cancel { id: String },
    /// Liveness + queue/cache counters.
    Health,
    /// The live `hippo.metrics.v1` snapshot of the daemon's registry.
    Metrics,
    /// Graceful shutdown: stop accepting submissions, drain the queue,
    /// journal every outcome, then exit.
    Shutdown,
}

/// A daemon response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The job is journaled and queued.
    Accepted { id: String },
    /// The queue is full; retry after the hinted backoff.
    Busy { retry_after_ms: u64 },
    /// A job's current view (`Status`, `Cancel`).
    Job { view: JobView },
    /// Liveness report.
    Health { health: Health },
    /// `hippo.metrics.v1` JSON, rendered outside the registry lock.
    Metrics { json: String },
    /// Shutdown acknowledged; the daemon is draining.
    ShuttingDown,
    /// The request could not be served (unknown id, draining daemon,
    /// schema mismatch, invalid spec).
    Error { message: String },
}

/// The request envelope: schema tag + body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestFrame {
    pub schema: String,
    pub request: Request,
}

/// The response envelope: schema tag + body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseFrame {
    pub schema: String,
    pub response: Response,
}

/// The `Health` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Health {
    /// Always true when the daemon answers at all.
    pub ok: bool,
    /// True once a graceful shutdown started: submissions are refused,
    /// queued and running jobs drain to completion.
    pub draining: bool,
    pub queued: u64,
    pub running: u64,
    pub done: u64,
    pub failed: u64,
    pub canceled: u64,
    pub queue_capacity: u64,
    pub workers: u64,
    /// Warm-cache hits and misses (modules + alias + static + job results).
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Jobs re-queued from the journal at startup.
    pub resumed: u64,
}

impl RequestFrame {
    pub fn new(request: Request) -> RequestFrame {
        RequestFrame {
            schema: JOBS_SCHEMA.to_string(),
            request,
        }
    }
}

impl ResponseFrame {
    pub fn new(response: Response) -> ResponseFrame {
        ResponseFrame {
            schema: JOBS_SCHEMA.to_string(),
            response,
        }
    }
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates serialization and socket write failures as readable strings.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, value: &T) -> Result<(), String> {
    let payload = serde_json::to_string(value).map_err(|e| format!("encode frame: {e}"))?;
    let bytes = payload.as_bytes();
    if bytes.len() as u64 > u64::from(MAX_FRAME) {
        return Err(format!(
            "frame of {} bytes exceeds the {MAX_FRAME}-byte protocol limit",
            bytes.len()
        ));
    }
    let len = (bytes.len() as u32).to_be_bytes();
    w.write_all(&len).map_err(|e| format!("write frame: {e}"))?;
    w.write_all(bytes)
        .map_err(|e| format!("write frame: {e}"))?;
    w.flush().map_err(|e| format!("write frame: {e}"))?;
    Ok(())
}

/// Reads one frame. `Ok(None)` is a clean EOF between frames (peer hung
/// up); EOF inside a frame is an error.
///
/// # Errors
///
/// Fails on oversized length prefixes, truncated payloads, socket errors,
/// and payloads that are not valid JSON for `T`.
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> Result<Option<T>, String> {
    let mut len = [0u8; 4];
    match r.read(&mut len) {
        Ok(0) => return Ok(None),
        Ok(n) if n < 4 => {
            r.read_exact(&mut len[n..])
                .map_err(|e| format!("read frame length: {e}"))?;
        }
        Ok(_) => {}
        Err(e) => return Err(format!("read frame length: {e}")),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte protocol limit (corrupt prefix?)"
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| format!("read frame payload ({len} bytes): {e}"))?;
    let text = String::from_utf8(payload).map_err(|e| format!("frame is not UTF-8: {e}"))?;
    serde_json::from_str(&text)
        .map(Some)
        .map_err(|e| format!("decode frame: {e}: {text}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::JobKind;

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let req = RequestFrame::new(Request::Submit {
            spec: JobSpec {
                kind: JobKind::Fix,
                entry: "main".to_string(),
                sources: vec![("a.pmc".to_string(), "fn main() {}".to_string())],
                bug_source: "dynamic".to_string(),
                budget: 256,
                seed: 0,
                jobs: 1,
                deadline_ms: None,
            },
        });
        let mut buf: Vec<u8> = vec![];
        write_frame(&mut buf, &req).unwrap();
        write_frame(&mut buf, &RequestFrame::new(Request::Health)).unwrap();
        let mut cur = std::io::Cursor::new(buf);
        let back: RequestFrame = read_frame(&mut cur).unwrap().unwrap();
        assert_eq!(back, req);
        assert_eq!(back.schema, JOBS_SCHEMA);
        let second: RequestFrame = read_frame(&mut cur).unwrap().unwrap();
        assert_eq!(second.request, Request::Health);
        // Clean EOF between frames.
        let eof: Option<RequestFrame> = read_frame(&mut cur).unwrap();
        assert!(eof.is_none());
    }

    #[test]
    fn truncated_payload_is_an_error_not_an_eof() {
        let mut buf: Vec<u8> = vec![];
        write_frame(&mut buf, &RequestFrame::new(Request::Health)).unwrap();
        buf.truncate(buf.len() - 3);
        let mut cur = std::io::Cursor::new(buf);
        let err = read_frame::<_, RequestFrame>(&mut cur).unwrap_err();
        assert!(err.contains("payload"), "{err}");
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocation() {
        let mut buf = (MAX_FRAME + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"{}");
        let mut cur = std::io::Cursor::new(buf);
        let err = read_frame::<_, RequestFrame>(&mut cur).unwrap_err();
        assert!(err.contains("protocol limit"), "{err}");
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Accepted {
                id: "job-1".to_string(),
            },
            Response::Busy {
                retry_after_ms: 100,
            },
            Response::ShuttingDown,
            Response::Error {
                message: "nope".to_string(),
            },
        ] {
            let frame = ResponseFrame::new(resp.clone());
            let mut buf: Vec<u8> = vec![];
            write_frame(&mut buf, &frame).unwrap();
            let back: ResponseFrame = read_frame(&mut std::io::Cursor::new(buf)).unwrap().unwrap();
            assert_eq!(back.response, resp);
        }
    }
}
