//! The `hippo.jobs.v2` wire protocol: length-prefixed JSON frames over a
//! Unix domain socket or TCP.
//!
//! # Framing
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! [ 4-byte big-endian payload length ][ payload: UTF-8 JSON ]
//! ```
//!
//! The JSON payload is an envelope carrying the schema tag. The daemon
//! accepts both `hippo.jobs.v2` and the PR 7 `hippo.jobs.v1` envelope (v1
//! requests are a strict subset of v2), and echoes the requester's tag; an
//! unknown schema is refused with a structured error instead of a parse
//! failure:
//!
//! ```json
//! {"schema":"hippo.jobs.v2","request":{"Health":[]}}
//! {"schema":"hippo.jobs.v2","response":{"Health":{"health":{...}}}}
//! ```
//!
//! Frames larger than [`MAX_FRAME`] are refused before allocation — a
//! corrupt length prefix must not OOM the daemon. A clean EOF *between*
//! frames ends the connection; EOF *inside* a frame is an error.
//!
//! # v2 over v1
//!
//! - **Heartbeat** — [`Request::Ping`] → [`Response::Pong`], so clients
//!   and load balancers can probe liveness without touching job state.
//! - **Chunked source streaming** — [`Request::SourceChunk`] carries one
//!   in-order piece of one named source, FNV-checksummed per chunk, so a
//!   source set far beyond [`MAX_FRAME`] streams in bounded frames; the
//!   closing `Submit` adopts the staged files (see the server).
//! - **Deadline semantics** — servers read with a timeout; a peer that
//!   goes quiet *between* frames is idle (closed after the idle timeout),
//!   one that stalls *inside* a frame is torn (answered with an error and
//!   closed). [`read_frame_idle`] surfaces the distinction.
//!
//! # Conversation
//!
//! A connection carries any number of request→response exchanges in
//! lockstep (no pipelining). Backpressure is explicit: a `Submit` against a
//! full queue — or a connection against a full daemon — gets
//! [`Response::Busy`] with a `retry_after_ms` hint, never a blocked socket.

use crate::jobs::{JobSpec, JobView};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// The protocol schema tag carried by every envelope.
pub const JOBS_SCHEMA: &str = "hippo.jobs.v2";

/// The PR 7 schema tag, still accepted on the wire: every v1 request is a
/// valid v2 request.
pub const JOBS_SCHEMA_V1: &str = "hippo.jobs.v1";

/// Hard ceiling on a single frame's payload (16 MiB) — submissions carry
/// source text inline, so the limit is generous; a garbage length prefix is
/// not. Larger source sets stream via [`Request::SourceChunk`].
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// A client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Enqueue a job. Answered with `Accepted`, `Busy`, or `Error`.
    Submit { spec: JobSpec },
    /// Report a job's current state (and result, once terminal).
    Status { id: String },
    /// Cancel a queued job. Running jobs are not interrupted.
    Cancel { id: String },
    /// Liveness + queue/cache counters.
    Health,
    /// The live `hippo.metrics.v1` snapshot of the daemon's registry.
    Metrics,
    /// Heartbeat; answered with `Pong` even while draining or standing by.
    Ping,
    /// One in-order piece of one named source, staged on this connection
    /// until a `Submit` adopts the completed files. `checksum` is the
    /// FNV-1a digest of `data`'s bytes; `last` closes the file.
    SourceChunk {
        name: String,
        seq: u64,
        data: String,
        checksum: u64,
        last: bool,
    },
    /// Graceful shutdown: stop accepting submissions, drain the queue,
    /// journal every outcome, then exit.
    Shutdown,
}

/// A daemon response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The job is journaled and queued.
    Accepted { id: String },
    /// The queue (or the connection table) is full; retry after the
    /// hinted backoff.
    Busy { retry_after_ms: u64 },
    /// A job's current view (`Status`, `Cancel`).
    Job { view: JobView },
    /// Liveness report.
    Health { health: Health },
    /// `hippo.metrics.v1` JSON, rendered outside the registry lock.
    Metrics { json: String },
    /// Heartbeat reply.
    Pong,
    /// The chunk was verified and staged. On the file's last chunk,
    /// `digest` is the FNV-1a digest of the whole reassembled source, so
    /// the sender can prove the round trip byte-identical.
    ChunkAccepted {
        name: String,
        seq: u64,
        digest: Option<u64>,
    },
    /// Shutdown acknowledged; the daemon is draining.
    ShuttingDown,
    /// The request could not be served (unknown id, draining daemon,
    /// standby daemon, schema mismatch, invalid spec, bad chunk).
    Error { message: String },
}

/// The request envelope: schema tag + body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestFrame {
    pub schema: String,
    pub request: Request,
}

/// The response envelope: schema tag + body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseFrame {
    pub schema: String,
    pub response: Response,
}

/// The `Health` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Health {
    /// Always true when the daemon answers at all.
    pub ok: bool,
    /// True once a graceful shutdown started: submissions are refused,
    /// queued and running jobs drain to completion.
    pub draining: bool,
    pub queued: u64,
    pub running: u64,
    pub done: u64,
    pub failed: u64,
    pub canceled: u64,
    pub queue_capacity: u64,
    pub workers: u64,
    /// Warm-cache hits and misses (modules + alias + static + job results).
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Jobs re-queued from the journal at startup (or takeover).
    pub resumed: u64,
    /// Live client connections right now.
    pub connections: u64,
    /// Accounted warm-cache bytes (see `hippocrates::WarmCache`).
    pub cache_bytes: u64,
    /// Lifetime LRU evictions under `--cache-budget-mb`.
    pub cache_evictions: u64,
    /// True while this daemon waits for the journal lock; a standby
    /// refuses job traffic until it takes over.
    pub standby: bool,
    /// The election epoch this daemon serves at (0 when it runs without a
    /// journal, or while standing by). Wire-defaulted so old daemons'
    /// health payloads still parse.
    #[serde(default)]
    pub epoch: u64,
}

impl RequestFrame {
    pub fn new(request: Request) -> RequestFrame {
        RequestFrame {
            schema: JOBS_SCHEMA.to_string(),
            request,
        }
    }
}

impl ResponseFrame {
    pub fn new(response: Response) -> ResponseFrame {
        ResponseFrame {
            schema: JOBS_SCHEMA.to_string(),
            response,
        }
    }
}

/// What one read attempt produced.
pub enum FrameIn<T> {
    /// A whole, valid frame.
    Frame(T),
    /// Clean EOF between frames: the peer hung up.
    Eof,
    /// The read deadline expired before the *first* byte of a frame — the
    /// peer is idle, not torn. Only possible when the stream carries a
    /// read timeout.
    Idle,
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates serialization and socket write failures as readable strings.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, value: &T) -> Result<(), String> {
    let payload = serde_json::to_string(value).map_err(|e| format!("encode frame: {e}"))?;
    let bytes = payload.as_bytes();
    if bytes.len() as u64 > u64::from(MAX_FRAME) {
        return Err(format!(
            "frame of {} bytes exceeds the {MAX_FRAME}-byte protocol limit",
            bytes.len()
        ));
    }
    let len = (bytes.len() as u32).to_be_bytes();
    w.write_all(&len).map_err(|e| format!("write frame: {e}"))?;
    w.write_all(bytes)
        .map_err(|e| format!("write frame: {e}"))?;
    w.flush().map_err(|e| format!("write frame: {e}"))?;
    Ok(())
}

/// Reads one frame, distinguishing an idle peer from a torn one: a
/// timeout before the first byte is [`FrameIn::Idle`]; a timeout (or EOF)
/// *inside* a frame is an error.
///
/// # Errors
///
/// Fails on oversized length prefixes, truncated payloads, mid-frame
/// timeouts, socket errors, and payloads that are not valid JSON for `T`.
pub fn read_frame_idle<R: Read, T: Deserialize>(r: &mut R) -> Result<FrameIn<T>, String> {
    let mut len = [0u8; 4];
    match r.read(&mut len) {
        Ok(0) => return Ok(FrameIn::Eof),
        Ok(n) if n < 4 => {
            r.read_exact(&mut len[n..])
                .map_err(|e| format!("read frame length: {e}"))?;
        }
        Ok(_) => {}
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            return Ok(FrameIn::Idle);
        }
        Err(e) => return Err(format!("read frame length: {e}")),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte protocol limit (corrupt prefix?)"
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| format!("read frame payload ({len} bytes): {e}"))?;
    let text = String::from_utf8(payload).map_err(|e| format!("frame is not UTF-8: {e}"))?;
    serde_json::from_str(&text)
        .map(FrameIn::Frame)
        .map_err(|e| format!("decode frame: {e}: {text}"))
}

/// Reads one frame. `Ok(None)` is a clean EOF between frames (peer hung
/// up); EOF inside a frame is an error, and so is a read timeout (callers
/// that need to treat idleness gracefully use [`read_frame_idle`]).
///
/// # Errors
///
/// Fails on oversized length prefixes, truncated payloads, socket errors,
/// and payloads that are not valid JSON for `T`.
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> Result<Option<T>, String> {
    match read_frame_idle(r)? {
        FrameIn::Frame(t) => Ok(Some(t)),
        FrameIn::Eof => Ok(None),
        FrameIn::Idle => Err("read frame length: timed out".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::JobKind;

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let req = RequestFrame::new(Request::Submit {
            spec: JobSpec {
                kind: JobKind::Fix,
                entry: "main".to_string(),
                sources: vec![("a.pmc".to_string(), "fn main() {}".to_string())],
                bug_source: "dynamic".to_string(),
                budget: 256,
                seed: 0,
                jobs: 1,
                deadline_ms: None,
                shards: 1,
            },
        });
        let mut buf: Vec<u8> = vec![];
        write_frame(&mut buf, &req).unwrap();
        write_frame(&mut buf, &RequestFrame::new(Request::Health)).unwrap();
        let mut cur = std::io::Cursor::new(buf);
        let back: RequestFrame = read_frame(&mut cur).unwrap().unwrap();
        assert_eq!(back, req);
        assert_eq!(back.schema, JOBS_SCHEMA);
        let second: RequestFrame = read_frame(&mut cur).unwrap().unwrap();
        assert_eq!(second.request, Request::Health);
        // Clean EOF between frames.
        let eof: Option<RequestFrame> = read_frame(&mut cur).unwrap();
        assert!(eof.is_none());
    }

    #[test]
    fn truncated_payload_is_an_error_not_an_eof() {
        let mut buf: Vec<u8> = vec![];
        write_frame(&mut buf, &RequestFrame::new(Request::Health)).unwrap();
        buf.truncate(buf.len() - 3);
        let mut cur = std::io::Cursor::new(buf);
        let err = read_frame::<_, RequestFrame>(&mut cur).unwrap_err();
        assert!(err.contains("payload"), "{err}");
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocation() {
        let mut buf = (MAX_FRAME + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"{}");
        let mut cur = std::io::Cursor::new(buf);
        let err = read_frame::<_, RequestFrame>(&mut cur).unwrap_err();
        assert!(err.contains("protocol limit"), "{err}");
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Accepted {
                id: "job-1".to_string(),
            },
            Response::Busy {
                retry_after_ms: 100,
            },
            Response::Pong,
            Response::ChunkAccepted {
                name: "a.pmc".to_string(),
                seq: 3,
                digest: Some(0xdead_beef),
            },
            Response::ShuttingDown,
            Response::Error {
                message: "nope".to_string(),
            },
        ] {
            let frame = ResponseFrame::new(resp.clone());
            let mut buf: Vec<u8> = vec![];
            write_frame(&mut buf, &frame).unwrap();
            let back: ResponseFrame = read_frame(&mut std::io::Cursor::new(buf)).unwrap().unwrap();
            assert_eq!(back.response, resp);
        }
    }

    #[test]
    fn chunk_requests_roundtrip_with_checksums() {
        let data = "fn main() {}".to_string();
        let checksum = pmir::snapshot::fnv1a(data.as_bytes());
        let req = RequestFrame::new(Request::SourceChunk {
            name: "big.pmc".to_string(),
            seq: 0,
            data,
            checksum,
            last: true,
        });
        let mut buf: Vec<u8> = vec![];
        write_frame(&mut buf, &req).unwrap();
        let back: RequestFrame = read_frame(&mut std::io::Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(back, req);
    }
}
