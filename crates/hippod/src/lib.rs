//! `hippod` — repair-as-a-service.
//!
//! The Hippocrates pipeline, served: a long-running daemon accepts
//! lint/explore/fix/optimize jobs for many modules concurrently over a
//! Unix domain socket, speaking the versioned, length-prefixed JSON
//! protocol `hippo.jobs.v1` ([`proto`]).
//!
//! The pieces, and the guarantee each one carries:
//!
//! - [`queue`] — a bounded job queue with *explicit* backpressure: a full
//!   queue answers `Busy { retry_after_ms }`, it never blocks a client.
//! - [`journal`] — pmtx-style write-ahead job state. `Accepted` implies
//!   journaled-and-synced; `kill -9` mid-campaign resumes every in-flight
//!   job on restart and serves finished ones from their journaled result.
//!   The journal is exclusively locked — a second daemon refuses with the
//!   holder's pid.
//! - [`jobs`] — the worker body. Sources travel inline with their original
//!   names and run through the same deterministic entry points as the
//!   `hippoctl` CLI, so daemon artifacts are **byte-identical** to
//!   standalone runs.
//! - Warm caches ([`hippocrates::WarmCache`] + a whole-result cache keyed
//!   by [`jobs::job_digest`]) make repeat submissions of an unchanged
//!   module skip cold work without changing a byte of output.
//! - [`server`] — the accept loop and worker pool. A failed or panicking
//!   job (including one injected at the
//!   [`pmfault::FaultSite::DaemonWorker`] boundary) fails *alone*; graceful
//!   shutdown drains the queue and journals every outcome; health and live
//!   `hippo.metrics.v1` endpoints answer throughout.
//! - [`client`] — the blocking client the CLI and tests drive.

pub mod chaos;
pub mod client;
pub mod jobs;
pub mod journal;
pub mod netfault;
pub mod proto;
pub mod queue;
pub mod server;
pub mod shard;
pub mod transport;

pub use client::{Client, Submitted, CHUNK_BYTES, CHUNK_THRESHOLD};
pub use jobs::{execute, job_digest, JobKind, JobResult, JobSpec, JobState, JobView};
pub use journal::{JobEvent, JobJournal, JOBS_JOURNAL_SCHEMA};
pub use proto::{Health, Request, Response, JOBS_SCHEMA, JOBS_SCHEMA_V1, MAX_FRAME};
pub use queue::JobQueue;
pub use server::{serve, ServeReport, ServerConfig};
pub use transport::{Conn, Endpoint, Listener};
