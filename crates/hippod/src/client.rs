//! The blocking `hippo.jobs.v2` client used by `hippoctl` subcommands and
//! the system tests.
//!
//! Dials either carrier ([`Client::dial`] parses `host:port` vs. socket
//! path), heartbeats with [`Client::ping`], and streams oversized source
//! sets transparently: a `submit` whose sources exceed the chunk threshold
//! ships them as checksummed [`Request::SourceChunk`] frames first, then
//! sends a `Submit` that adopts them server-side — the job digest (and so
//! the artifact, and the warm-cache hit) is byte-identical to an inline
//! submission of the same sources.

use crate::jobs::{JobSpec, JobView};
use crate::proto::{
    read_frame, write_frame, Health, Request, RequestFrame, Response, ResponseFrame,
};
use crate::transport::{Conn, Endpoint};
use std::path::Path;
use std::time::{Duration, Instant};

/// Sources above this total stream as chunks instead of riding inline in
/// the `Submit` frame — comfortably under [`crate::proto::MAX_FRAME`]
/// even after JSON escaping.
pub const CHUNK_THRESHOLD: usize = 4 * 1024 * 1024;

/// Bytes of source text per `SourceChunk` frame. Worst-case JSON escaping
/// (6 bytes per byte) keeps the frame under `MAX_FRAME`.
pub const CHUNK_BYTES: usize = 2 * 1024 * 1024;

/// What a submission came back with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submitted {
    /// Journaled and queued under this id.
    Accepted(String),
    /// Backpressure: the queue is full, retry after this many ms.
    Busy(u64),
}

/// A connected client. One request/response exchange at a time.
pub struct Client {
    stream: Conn,
    chunk_threshold: usize,
}

impl Client {
    /// Connects to a daemon on a Unix socket path — the PR 7 spelling,
    /// retained for callers that hold a path.
    ///
    /// # Errors
    ///
    /// Fails when nothing listens on `socket`.
    pub fn connect(socket: impl AsRef<Path>) -> Result<Client, String> {
        Client::dial_endpoint(&Endpoint::Unix(socket.as_ref().to_path_buf()))
    }

    /// Connects to either carrier: `host:port` is TCP, anything else a
    /// Unix socket path.
    ///
    /// # Errors
    ///
    /// Fails when nothing listens there.
    pub fn dial(spec: &str) -> Result<Client, String> {
        Client::dial_endpoint(&Endpoint::parse(spec))
    }

    /// Connects to a parsed endpoint.
    ///
    /// # Errors
    ///
    /// Fails when nothing listens there.
    pub fn dial_endpoint(endpoint: &Endpoint) -> Result<Client, String> {
        Ok(Client {
            stream: Conn::dial(endpoint)?,
            chunk_threshold: CHUNK_THRESHOLD,
        })
    }

    /// Connects, retrying until the daemon answers or `timeout` elapses —
    /// for scripts that just started the daemon.
    ///
    /// # Errors
    ///
    /// Fails when the daemon does not come up in time.
    pub fn connect_retry(socket: impl AsRef<Path>, timeout: Duration) -> Result<Client, String> {
        let spec = socket.as_ref().display().to_string();
        Client::dial_retry(&spec, timeout)
    }

    /// [`Client::dial`], retried until the daemon answers or `timeout`
    /// elapses.
    ///
    /// # Errors
    ///
    /// Fails when the daemon does not come up in time.
    pub fn dial_retry(spec: &str, timeout: Duration) -> Result<Client, String> {
        let endpoint = Endpoint::parse(spec);
        let deadline = Instant::now() + timeout;
        loop {
            match Client::dial_endpoint(&endpoint) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => {
                    return Err(format!("daemon did not come up within {timeout:?}: {e}"));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Applies read/write deadlines to this connection, so a dead daemon
    /// turns into an error instead of a hung client.
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), String> {
        self.stream
            .set_read_timeout(timeout)
            .and_then(|()| self.stream.set_write_timeout(timeout))
            .map_err(|e| format!("set timeout: {e}"))
    }

    /// Lowers (or raises) the total-source-bytes threshold above which
    /// `submit` streams sources as chunks. Tests use a tiny threshold to
    /// exercise chunking without megabyte fixtures.
    pub fn set_chunk_threshold(&mut self, bytes: usize) {
        self.chunk_threshold = bytes;
    }

    /// One request → one response.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, a hung-up daemon, and protocol-level
    /// `Error` responses surfaced by the typed helpers (not here).
    pub fn request(&mut self, request: Request) -> Result<Response, String> {
        write_frame(&mut self.stream, &RequestFrame::new(request))?;
        let frame: Option<ResponseFrame> = read_frame(&mut self.stream)?;
        frame
            .map(|f| f.response)
            .ok_or_else(|| "daemon hung up mid-request".to_string())
    }

    /// Heartbeat: `Ping` → `Pong`. Answers even on a draining or standby
    /// daemon.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn ping(&mut self) -> Result<(), String> {
        match self.request(Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected response to Ping: {other:?}")),
        }
    }

    /// Streams `spec`'s sources as checksummed chunks when they exceed the
    /// chunk threshold, returning the spec with its sources moved
    /// server-side. A spec under the threshold is returned unchanged.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, chunk rejections, and a reassembled
    /// digest that does not match the sender's.
    fn stage_if_large(&mut self, mut spec: JobSpec) -> Result<JobSpec, String> {
        let total: usize = spec.sources.iter().map(|(n, b)| n.len() + b.len()).sum();
        if total <= self.chunk_threshold {
            return Ok(spec);
        }
        // All sources stream, in order, so the server-side merge rebuilds
        // the source list exactly as an inline submission would carry it.
        for (name, body) in std::mem::take(&mut spec.sources) {
            let sent_digest = pmir::snapshot::fnv1a(body.as_bytes());
            // Pieces shrink with the threshold so a lowered test threshold
            // exercises real multi-chunk reassembly on small sources.
            let pieces = split_utf8(&body, CHUNK_BYTES.min(self.chunk_threshold.max(1)));
            let n = pieces.len();
            for (seq, piece) in pieces.into_iter().enumerate() {
                let last = seq + 1 == n;
                let response = self.request(Request::SourceChunk {
                    name: name.clone(),
                    seq: seq as u64,
                    checksum: pmir::snapshot::fnv1a(piece.as_bytes()),
                    data: piece.to_string(),
                    last,
                })?;
                match response {
                    Response::ChunkAccepted { digest, .. } => {
                        if last && digest != Some(sent_digest) {
                            return Err(format!(
                                "`{name}`: reassembled digest {digest:?} does not match sent {sent_digest}"
                            ));
                        }
                    }
                    Response::Error { message } => return Err(message),
                    other => return Err(format!("unexpected response to SourceChunk: {other:?}")),
                }
            }
        }
        Ok(spec)
    }

    /// Submits a job, streaming oversized source sets as chunks.
    ///
    /// # Errors
    ///
    /// Fails on transport errors and daemon-side rejections (invalid spec,
    /// draining or standby daemon, rejected chunk).
    pub fn submit(&mut self, spec: JobSpec) -> Result<Submitted, String> {
        let spec = self.stage_if_large(spec)?;
        self.submit_inline(spec)
    }

    fn submit_inline(&mut self, spec: JobSpec) -> Result<Submitted, String> {
        match self.request(Request::Submit { spec })? {
            Response::Accepted { id } => Ok(Submitted::Accepted(id)),
            Response::Busy { retry_after_ms } => Ok(Submitted::Busy(retry_after_ms)),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected response to Submit: {other:?}")),
        }
    }

    /// Submits, honoring `Busy` backpressure by sleeping the hinted
    /// backoff, until accepted or `timeout` elapses. Oversized sources
    /// stream once; only the cheap adopting `Submit` retries.
    ///
    /// # Errors
    ///
    /// Fails on rejections and when the queue never frees up in time.
    pub fn submit_retry(&mut self, spec: JobSpec, timeout: Duration) -> Result<String, String> {
        let spec = self.stage_if_large(spec)?;
        let deadline = Instant::now() + timeout;
        loop {
            match self.submit_inline(spec.clone())? {
                Submitted::Accepted(id) => return Ok(id),
                Submitted::Busy(ms) => {
                    if Instant::now() >= deadline {
                        return Err(format!(
                            "queue stayed full for {timeout:?}; last retry hint was {ms}ms"
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(ms.min(250)));
                }
            }
        }
    }

    /// A job's current view.
    ///
    /// # Errors
    ///
    /// Fails on transport errors and unknown ids.
    pub fn status(&mut self, id: &str) -> Result<JobView, String> {
        match self.request(Request::Status { id: id.to_string() })? {
            Response::Job { view } => Ok(view),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected response to Status: {other:?}")),
        }
    }

    /// Polls until the job reaches a terminal state.
    ///
    /// # Errors
    ///
    /// Fails on transport errors and when `timeout` elapses first.
    pub fn wait(&mut self, id: &str, timeout: Duration) -> Result<JobView, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let view = self.status(id)?;
            if view.state.is_terminal() {
                return Ok(view);
            }
            if Instant::now() >= deadline {
                return Err(format!("job `{id}` still {} after {timeout:?}", view.state));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Cancels a queued job; returns its (terminal) view.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, unknown ids, and running jobs.
    pub fn cancel(&mut self, id: &str) -> Result<JobView, String> {
        match self.request(Request::Cancel { id: id.to_string() })? {
            Response::Job { view } => Ok(view),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected response to Cancel: {other:?}")),
        }
    }

    /// The daemon's health report.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn health(&mut self) -> Result<Health, String> {
        match self.request(Request::Health)? {
            Response::Health { health } => Ok(health),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected response to Health: {other:?}")),
        }
    }

    /// The live `hippo.metrics.v1` snapshot.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn metrics(&mut self) -> Result<String, String> {
        match self.request(Request::Metrics)? {
            Response::Metrics { json } => Ok(json),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected response to Metrics: {other:?}")),
        }
    }

    /// Requests a graceful shutdown (drain, journal, exit).
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn shutdown(&mut self) -> Result<(), String> {
        match self.request(Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected response to Shutdown: {other:?}")),
        }
    }

    /// Waits for every non-terminal job to settle — used before asserting
    /// on a drained daemon.
    ///
    /// # Errors
    ///
    /// Fails on transport errors and when `timeout` elapses first.
    pub fn wait_idle(&mut self, timeout: Duration) -> Result<Health, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let h = self.health()?;
            if h.queued == 0 && h.running == 0 {
                return Ok(h);
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "daemon still busy after {timeout:?}: {} queued, {} running",
                    h.queued, h.running
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Splits `s` into pieces of at most `max` bytes, never inside a UTF-8
/// code point.
fn split_utf8(s: &str, max: usize) -> Vec<&str> {
    let max = max.max(4);
    let mut pieces = vec![];
    let mut rest = s;
    while rest.len() > max {
        let mut end = max;
        while !rest.is_char_boundary(end) {
            end -= 1;
        }
        let (head, tail) = rest.split_at(end);
        pieces.push(head);
        rest = tail;
    }
    pieces.push(rest);
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_utf8_respects_char_boundaries_and_reassembles() {
        let s = "héllo wörld ✓".repeat(10);
        for max in [4, 5, 7, 64] {
            let pieces = split_utf8(&s, max);
            assert!(pieces.iter().all(|p| p.len() <= max.max(4)));
            assert_eq!(pieces.concat(), s);
        }
        // An empty source still yields one (empty) chunk, so `last` fires.
        assert_eq!(split_utf8("", 8), vec![""]);
    }
}
