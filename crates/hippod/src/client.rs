//! The blocking `hippo.jobs.v1` client used by `hippoctl` subcommands and
//! the system tests.

use crate::jobs::{JobSpec, JobView};
use crate::proto::{
    read_frame, write_frame, Health, Request, RequestFrame, Response, ResponseFrame,
};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// What a submission came back with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submitted {
    /// Journaled and queued under this id.
    Accepted(String),
    /// Backpressure: the queue is full, retry after this many ms.
    Busy(u64),
}

/// A connected client. One request/response exchange at a time.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to a serving daemon.
    ///
    /// # Errors
    ///
    /// Fails when nothing listens on `socket`.
    pub fn connect(socket: impl AsRef<Path>) -> Result<Client, String> {
        let socket = socket.as_ref();
        let stream = UnixStream::connect(socket).map_err(|e| {
            format!(
                "{}: connect: {e} (is the daemon serving?)",
                socket.display()
            )
        })?;
        Ok(Client { stream })
    }

    /// Connects, retrying until the daemon answers or `timeout` elapses —
    /// for scripts that just started the daemon.
    ///
    /// # Errors
    ///
    /// Fails when the daemon does not come up in time.
    pub fn connect_retry(socket: impl AsRef<Path>, timeout: Duration) -> Result<Client, String> {
        let socket = socket.as_ref();
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(socket) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => {
                    return Err(format!("daemon did not come up within {timeout:?}: {e}"));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// One request → one response.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, a hung-up daemon, and protocol-level
    /// `Error` responses surfaced by the typed helpers (not here).
    pub fn request(&mut self, request: Request) -> Result<Response, String> {
        write_frame(&mut self.stream, &RequestFrame::new(request))?;
        let frame: Option<ResponseFrame> = read_frame(&mut self.stream)?;
        frame
            .map(|f| f.response)
            .ok_or_else(|| "daemon hung up mid-request".to_string())
    }

    /// Submits a job.
    ///
    /// # Errors
    ///
    /// Fails on transport errors and daemon-side rejections (invalid spec,
    /// draining daemon).
    pub fn submit(&mut self, spec: JobSpec) -> Result<Submitted, String> {
        match self.request(Request::Submit { spec })? {
            Response::Accepted { id } => Ok(Submitted::Accepted(id)),
            Response::Busy { retry_after_ms } => Ok(Submitted::Busy(retry_after_ms)),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected response to Submit: {other:?}")),
        }
    }

    /// Submits, honoring `Busy` backpressure by sleeping the hinted
    /// backoff, until accepted or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// Fails on rejections and when the queue never frees up in time.
    pub fn submit_retry(&mut self, spec: JobSpec, timeout: Duration) -> Result<String, String> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.submit(spec.clone())? {
                Submitted::Accepted(id) => return Ok(id),
                Submitted::Busy(ms) => {
                    if Instant::now() >= deadline {
                        return Err(format!(
                            "queue stayed full for {timeout:?}; last retry hint was {ms}ms"
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(ms.min(250)));
                }
            }
        }
    }

    /// A job's current view.
    ///
    /// # Errors
    ///
    /// Fails on transport errors and unknown ids.
    pub fn status(&mut self, id: &str) -> Result<JobView, String> {
        match self.request(Request::Status { id: id.to_string() })? {
            Response::Job { view } => Ok(view),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected response to Status: {other:?}")),
        }
    }

    /// Polls until the job reaches a terminal state.
    ///
    /// # Errors
    ///
    /// Fails on transport errors and when `timeout` elapses first.
    pub fn wait(&mut self, id: &str, timeout: Duration) -> Result<JobView, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let view = self.status(id)?;
            if view.state.is_terminal() {
                return Ok(view);
            }
            if Instant::now() >= deadline {
                return Err(format!("job `{id}` still {} after {timeout:?}", view.state));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Cancels a queued job; returns its (terminal) view.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, unknown ids, and running jobs.
    pub fn cancel(&mut self, id: &str) -> Result<JobView, String> {
        match self.request(Request::Cancel { id: id.to_string() })? {
            Response::Job { view } => Ok(view),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected response to Cancel: {other:?}")),
        }
    }

    /// The daemon's health report.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn health(&mut self) -> Result<Health, String> {
        match self.request(Request::Health)? {
            Response::Health { health } => Ok(health),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected response to Health: {other:?}")),
        }
    }

    /// The live `hippo.metrics.v1` snapshot.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn metrics(&mut self) -> Result<String, String> {
        match self.request(Request::Metrics)? {
            Response::Metrics { json } => Ok(json),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected response to Metrics: {other:?}")),
        }
    }

    /// Requests a graceful shutdown (drain, journal, exit).
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn shutdown(&mut self) -> Result<(), String> {
        match self.request(Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected response to Shutdown: {other:?}")),
        }
    }

    /// Waits for every non-terminal job to settle — used before asserting
    /// on a drained daemon.
    ///
    /// # Errors
    ///
    /// Fails on transport errors and when `timeout` elapses first.
    pub fn wait_idle(&mut self, timeout: Duration) -> Result<Health, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let h = self.health()?;
            if h.queued == 0 && h.running == 0 {
                return Ok(h);
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "daemon still busy after {timeout:?}: {} queued, {} running",
                    h.queued, h.running
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}
