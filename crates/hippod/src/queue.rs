//! The bounded job queue with explicit backpressure.
//!
//! Capacity is enforced at submission time: a push against a full queue
//! fails immediately with a retry-after hint the protocol layer forwards as
//! [`crate::proto::Response::Busy`]. Nothing ever blocks a client socket on
//! queue space — backpressure is a structured answer, not a stalled write.
//!
//! Workers block on [`JobQueue::pop`]; closing the queue wakes them all,
//! lets them drain what is already queued, and then returns `None` so the
//! pool can exit. This is the graceful-shutdown drain.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Base of the retry-after hint; the hint grows with queue depth so a
/// storm of rejected clients naturally spreads out.
const RETRY_AFTER_BASE_MS: u64 = 25;

struct Inner {
    items: VecDeque<String>,
    closed: bool,
}

/// A bounded MPMC queue of job ids.
pub struct JobQueue {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// A queue holding at most `capacity` queued (not yet running) jobs.
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues a job id.
    ///
    /// # Errors
    ///
    /// When the queue is full (or closed), returns the backpressure hint in
    /// milliseconds after which the client should retry.
    pub fn push(&self, id: String) -> Result<(), u64> {
        let mut g = self.lock();
        if g.closed || g.items.len() >= self.capacity {
            return Err(RETRY_AFTER_BASE_MS * (g.items.len().max(1) as u64));
        }
        g.items.push_back(id);
        drop(g);
        self.ready.notify_one();
        Ok(())
    }

    /// Enqueues a scheduler-internal work unit (campaign shard fan-out,
    /// reaper requeues), bypassing the client-facing capacity check: the
    /// capacity bound meters *submissions*, and a campaign's shards must
    /// never be lost to transient fullness once the job was accepted.
    /// Only a closed queue refuses.
    ///
    /// # Errors
    ///
    /// When the queue is closed (the daemon is past its drain point).
    pub fn push_internal(&self, id: String) -> Result<(), u64> {
        let mut g = self.lock();
        if g.closed {
            return Err(RETRY_AFTER_BASE_MS);
        }
        g.items.push_back(id);
        drop(g);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available; `None` once the queue is closed
    /// *and* drained — the worker-pool exit signal.
    pub fn pop(&self) -> Option<String> {
        let mut g = self.lock();
        loop {
            if let Some(id) = g.items.pop_front() {
                return Some(id);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops accepting pushes; blocked and future pops drain the remaining
    /// items, then return `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Jobs currently queued (not yet popped by a worker).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_rejects_with_growing_retry_hint() {
        let q = JobQueue::new(2);
        q.push("a".to_string()).unwrap();
        q.push("b".to_string()).unwrap();
        let hint = q.push("c".to_string()).unwrap_err();
        assert_eq!(hint, RETRY_AFTER_BASE_MS * 2);
        assert_eq!(q.len(), 2);
        // Popping frees a slot; the push now succeeds.
        assert_eq!(q.pop().as_deref(), Some("a"));
        q.push("c".to_string()).unwrap();
    }

    #[test]
    fn close_drains_then_releases_workers() {
        let q = Arc::new(JobQueue::new(8));
        q.push("a".to_string()).unwrap();
        q.push("b".to_string()).unwrap();
        q.close();
        // Queued work survives the close (drain) ...
        assert_eq!(q.pop().as_deref(), Some("a"));
        assert_eq!(q.pop().as_deref(), Some("b"));
        // ... then pops return None instead of blocking.
        assert_eq!(q.pop(), None);
        // And new pushes are refused.
        assert!(q.push("c".to_string()).is_err());
    }

    #[test]
    fn blocked_workers_wake_on_push_and_on_close() {
        let q = Arc::new(JobQueue::new(8));
        let popper = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        // Give the popper time to block, then feed it.
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.push("x".to_string()).unwrap();
        assert_eq!(popper.join().unwrap().as_deref(), Some("x"));
        let exiter = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(exiter.join().unwrap(), None);
    }
}
