//! Net-archetype fault campaign: one seed, one in-process daemon.
//!
//! The transport faults (`net.torn_frame`, `net.slow_client`,
//! `net.conn_drop`) land at the daemon's connection boundary — keyed by
//! accept index — not inside the repair pipeline, so exercising them
//! means standing up a daemon with the plan armed and driving enough
//! connections for the seeded `Nth(n < 3)` trigger to fire. Both
//! `hippoctl faultcampaign` and `fault_bench` run net seeds through this
//! helper so the CLI gate and the benchmark enforce the same contract:
//! the hostile connection degrades *alone* with a structured client-side
//! error (never a daemon panic or hang), sibling connections are served,
//! and a fresh connection afterwards gets an artifact byte-identical to
//! a standalone run.

use crate::{Client, JobKind, JobSpec, JobState, ServerConfig};
use std::time::Duration;

/// Runs one net-archetype seed end to end. `source` is the workload the
/// campaign submits (compiled server-side); the caller picks it so the
/// CLI and the bench share one do-no-harm reference shape.
pub fn campaign_seed(
    seed: u64,
    source_name: &str,
    source: &str,
    obs: &pmobs::Obs,
) -> Result<String, String> {
    let plan = pmfault::FaultPlan::from_seed(seed);
    let dir = std::env::temp_dir().join(format!("hippo-netfault-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let socket = dir.join("hippod.sock");
    let spec = JobSpec::new(
        JobKind::Fix,
        vec![(source_name.to_string(), source.to_string())],
    );
    // The do-no-harm reference: the same spec executed standalone.
    let reference = crate::execute(
        &spec,
        &hippocrates::WarmCache::enabled(),
        &pmobs::Obs::default(),
    )?;
    let server = {
        let config = ServerConfig {
            socket: socket.clone(),
            workers: 2,
            io_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(10),
            fault: Some(plan.clone()),
            obs: obs.clone(),
            ..ServerConfig::default()
        };
        std::thread::spawn(move || crate::serve(config))
    };
    // Connections 0..=3 cover every trigger offset the seed can pick, so
    // exactly one of them meets the armed fault. Each submits the same
    // spec; a shaped connection must fail with a structured error (torn
    // frame, dropped connection) or simply run slow (dribbled writes) —
    // never wedge. The client-side deadline converts a hang into an error.
    let mut degraded: Vec<String> = vec![];
    for conn in 0..4u64 {
        let attempt = (|| -> Result<(), String> {
            let mut c = Client::connect_retry(&socket, Duration::from_secs(5))?;
            c.set_io_timeout(Some(Duration::from_secs(10)))?;
            c.submit_retry(spec.clone(), Duration::from_secs(5))?;
            Ok(())
        })();
        if let Err(why) = attempt {
            if why.is_empty() {
                return Err(format!("connection {conn} failed without a reason"));
            }
            degraded.push(format!("conn {conn}: {why}"));
        }
    }
    let expects_errors = plan.targets(pmfault::FaultSite::NetTornFrame)
        || plan.targets(pmfault::FaultSite::NetConnDrop);
    if expects_errors && degraded.len() != 1 {
        return Err(format!(
            "torn/drop plan must degrade exactly the triggered connection, saw {}: {degraded:?}",
            degraded.len()
        ));
    }
    if !expects_errors && !degraded.is_empty() {
        return Err(format!(
            "slow-client shaping must slow, not break: {degraded:?}"
        ));
    }
    // A fresh connection (past every trigger offset) sees a healthy daemon
    // and an artifact byte-identical to the standalone reference.
    let fresh = (|| -> Result<(), String> {
        let mut c = Client::connect_retry(&socket, Duration::from_secs(5))?;
        c.set_io_timeout(Some(Duration::from_secs(10)))?;
        let h = c.health()?;
        if !h.ok {
            return Err("daemon unhealthy after hostile connections".to_string());
        }
        let id = c.submit_retry(spec.clone(), Duration::from_secs(5))?;
        let view = c.wait(&id, Duration::from_secs(60))?;
        if view.state != JobState::Done {
            return Err(format!("fresh job ended {:?}", view.state));
        }
        let result = view.result.ok_or("done job carried no result")?;
        if result.output != reference.output || result.clean != reference.clean {
            return Err("daemon artifact diverged from the standalone run".to_string());
        }
        c.shutdown()?;
        Ok(())
    })();
    fresh?;
    // Bounded join: a daemon that fails to drain is a hang, the exact
    // failure mode this gate exists to catch.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(server.join());
    });
    let report = match rx.recv_timeout(Duration::from_secs(30)) {
        Ok(Ok(Ok(report))) => report,
        Ok(Ok(Err(e))) => return Err(format!("daemon exited with error: {e}")),
        Ok(Err(_)) => return Err("daemon thread panicked".to_string()),
        Err(_) => return Err("daemon failed to drain within 30s — that is a hang".to_string()),
    };
    if report.done == 0 {
        return Err("daemon drained without finishing any job".to_string());
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(format!(
        "{} hostile conn(s) degraded alone, daemon served {} job(s), fresh artifact byte-identical",
        degraded.len(),
        report.done
    ))
}
