//! The daemon's write-ahead job journal.
//!
//! Same discipline (and same on-disk framing) as the `pmtx` repair
//! journal: line-oriented, every line checksummed, appends synced before
//! the daemon acknowledges. Two event kinds cover the whole job
//! lifecycle:
//!
//! - `Submitted { id, spec }` — written *before* the client sees
//!   `Accepted`. An acknowledged job is therefore always durable.
//! - `Finished { view }` — written when the job reaches a terminal state
//!   (`Done`/`Failed`/`Canceled`), carrying the full result.
//!
//! **Resume rule:** on restart, every `Submitted` without a matching
//! `Finished` re-enters the queue in submission order; every `Finished`
//! job serves its journaled result directly. Job execution is
//! deterministic in the spec, so a re-run of an interrupted job commits
//! the same result the killed run would have.
//!
//! A torn final line (the daemon was SIGKILLed mid-append) is dropped and
//! truncated away; corruption anywhere *else* is refused loudly.
//! Exclusive advisory locking ([`pmtx::FileLock`]) makes a second daemon
//! on the same journal refuse with the holder's pid instead of
//! interleaving appends.

use crate::jobs::{JobSpec, JobView};
use pmtx::framing::{decode_line, encode_line, split_lines};
use pmtx::FileLock;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

/// The journal's schema tag, checked on resume.
pub const JOBS_JOURNAL_SCHEMA: &str = "hippo.jobs.v1";

/// The first journal line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobJournalHeader {
    pub schema: String,
}

/// One journaled lifecycle event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobEvent {
    Submitted { id: String, spec: JobSpec },
    Finished { view: JobView },
}

/// An open, exclusively locked job journal.
#[derive(Debug)]
pub struct JobJournal {
    file: File,
    path: PathBuf,
    _lock: FileLock,
}

impl JobJournal {
    /// Opens (creating if absent) the journal, replaying every committed
    /// event. A torn final line is truncated away; the replayed events are
    /// returned in append order.
    ///
    /// # Errors
    ///
    /// Fails when another process holds the journal (the message names the
    /// holder's pid), on interior corruption, on a schema mismatch, and on
    /// I/O errors.
    pub fn open(path: impl AsRef<Path>) -> Result<(JobJournal, Vec<JobEvent>), String> {
        let path = path.as_ref().to_path_buf();
        let lock = FileLock::acquire(&path).map_err(|e| e.to_string())?;
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let mut text = String::new();
        file.read_to_string(&mut text)
            .map_err(|e| format!("{}: {e}", path.display()))?;

        let mut journal = JobJournal {
            file,
            path,
            _lock: lock,
        };
        if text.is_empty() {
            journal.append_line(&JobJournalHeader {
                schema: JOBS_JOURNAL_SCHEMA.to_string(),
            })?;
            return Ok((journal, vec![]));
        }

        let lines = split_lines(&text);
        let mut events = vec![];
        let mut truncate_at: Option<usize> = None;
        for (i, line) in lines.iter().enumerate() {
            let last = i + 1 == lines.len();
            let payload = match decode_line(line.body) {
                Ok(p) if line.terminated => p,
                // A torn tail — unterminated or checksum-failed final
                // line — is the one legal form of damage: the process died
                // mid-append, the event was never acknowledged. Drop it.
                _ if last => {
                    truncate_at = Some(line.offset);
                    break;
                }
                Ok(_) | Err(_) => {
                    return Err(format!(
                        "{}: corrupted journal line {} (not at the tail); refusing to resume \
                         from a damaged journal",
                        journal.path.display(),
                        i + 1
                    ));
                }
            };
            if i == 0 {
                let header: JobJournalHeader = serde_json::from_str(payload)
                    .map_err(|e| format!("{}: bad journal header: {e}", journal.path.display()))?;
                if header.schema != JOBS_JOURNAL_SCHEMA {
                    return Err(format!(
                        "{}: journal schema is `{}`, this daemon speaks `{JOBS_JOURNAL_SCHEMA}`",
                        journal.path.display(),
                        header.schema
                    ));
                }
                continue;
            }
            match serde_json::from_str::<JobEvent>(payload) {
                Ok(ev) => events.push(ev),
                Err(e) if last => {
                    // Structurally torn JSON with an accidentally valid
                    // checksum cannot happen (the checksum covers the whole
                    // payload), but a half-written *terminated* line at the
                    // tail is still unacknowledged work: drop it too.
                    let _ = e;
                    truncate_at = Some(line.offset);
                }
                Err(e) => {
                    return Err(format!(
                        "{}: journal line {} does not parse: {e}",
                        journal.path.display(),
                        i + 1
                    ));
                }
            }
        }
        if let Some(offset) = truncate_at {
            journal
                .file
                .set_len(offset as u64)
                .map_err(|e| format!("{}: truncate: {e}", journal.path.display()))?;
            journal
                .file
                .seek(std::io::SeekFrom::End(0))
                .map_err(|e| format!("{}: {e}", journal.path.display()))?;
        }
        if events.is_empty() && truncate_at == Some(0) {
            // Even the header was torn; start fresh.
            journal.append_line(&JobJournalHeader {
                schema: JOBS_JOURNAL_SCHEMA.to_string(),
            })?;
        }
        Ok((journal, events))
    }

    fn append_line<T: Serialize>(&mut self, value: &T) -> Result<(), String> {
        let payload =
            serde_json::to_string(value).map_err(|e| format!("encode journal record: {e}"))?;
        let line = encode_line(&payload);
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| format!("{}: append: {e}", self.path.display()))?;
        self.file
            .sync_data()
            .map_err(|e| format!("{}: sync: {e}", self.path.display()))?;
        Ok(())
    }

    /// Appends one event, durable (synced) before returning.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O failures.
    pub fn append(&mut self, event: &JobEvent) -> Result<(), String> {
        self.append_line(event)
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::{JobKind, JobState};

    fn spec() -> JobSpec {
        JobSpec::new(
            JobKind::Lint,
            vec![("a.pmc".to_string(), "fn main() {}".to_string())],
        )
    }

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hippod-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("jobs.journal")
    }

    fn submitted(id: &str) -> JobEvent {
        JobEvent::Submitted {
            id: id.to_string(),
            spec: spec(),
        }
    }

    fn finished(id: &str) -> JobEvent {
        JobEvent::Finished {
            view: JobView {
                id: id.to_string(),
                kind: JobKind::Lint,
                state: JobState::Done,
                error: None,
                result: None,
            },
        }
    }

    #[test]
    fn events_replay_in_append_order() {
        let path = tmp("replay");
        {
            let (mut j, replayed) = JobJournal::open(&path).unwrap();
            assert!(replayed.is_empty());
            j.append(&submitted("job-1")).unwrap();
            j.append(&submitted("job-2")).unwrap();
            j.append(&finished("job-1")).unwrap();
        }
        let (_j, replayed) = JobJournal::open(&path).unwrap();
        assert_eq!(
            replayed,
            vec![submitted("job-1"), submitted("job-2"), finished("job-1")]
        );
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let path = tmp("torn");
        {
            let (mut j, _) = JobJournal::open(&path).unwrap();
            j.append(&submitted("job-1")).unwrap();
        }
        // Simulate a SIGKILL mid-append: half a line, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"Finished\":{\"view\":{\"id\":\"job")
            .unwrap();
        drop(f);
        let before = std::fs::metadata(&path).unwrap().len();
        let (_j, replayed) = JobJournal::open(&path).unwrap();
        assert_eq!(replayed, vec![submitted("job-1")]);
        assert!(
            std::fs::metadata(&path).unwrap().len() < before,
            "the torn tail must be truncated away"
        );
    }

    #[test]
    fn interior_corruption_is_refused() {
        let path = tmp("interior");
        {
            let (mut j, _) = JobJournal::open(&path).unwrap();
            j.append(&submitted("job-1")).unwrap();
            j.append(&finished("job-1")).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let flipped = text.replacen("job-1", "job-X", 1);
        std::fs::write(&path, flipped).unwrap();
        let err = JobJournal::open(&path).unwrap_err();
        assert!(err.contains("corrupted journal line"), "{err}");
    }

    #[test]
    fn second_open_is_refused_with_holder_pid() {
        let path = tmp("locked");
        let (_j, _) = JobJournal::open(&path).unwrap();
        let err = JobJournal::open(&path).unwrap_err();
        assert!(err.contains("held by pid"), "{err}");
        assert!(
            err.contains(&std::process::id().to_string()),
            "the message must name the holder: {err}"
        );
    }
}
