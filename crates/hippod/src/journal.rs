//! The daemon's write-ahead job journal — and, since PR 10, the campaign
//! scheduler's lease ledger and the primary-election epoch record.
//!
//! Same discipline (and same on-disk framing) as the `pmtx` repair
//! journal: line-oriented, every line checksummed, appends synced before
//! the daemon acknowledges. The event kinds:
//!
//! - `Submitted { id, spec }` — written *before* the client sees
//!   `Accepted`. An acknowledged job is therefore always durable.
//! - `Finished { view }` — written when the job reaches a terminal state
//!   (`Done`/`Failed`/`Canceled`), carrying the full result.
//! - `Epoch { epoch, pid }` — a primary won the election at this
//!   monotonic epoch. Written by [`JobJournal::elect`] under the journal
//!   flock; the highest epoch in the journal names the legitimate primary.
//! - `LeaseAcquired` / `LeaseRenewed` / `LeaseReclaimed` /
//!   `ShardQuarantined` — the campaign scheduler's lease ledger (see
//!   [`pmtx::LeaseTable`]): who ran which shard, which leases expired, and
//!   which shards were quarantined after exhausting their retry budget.
//!   Together they are the campaign's structured degradation trail.
//! - `ShardFinished { job, shard, result }` — one shard's committed
//!   result. On resume, committed shards are *not* re-run: the successor
//!   merges the journaled shard results with its own.
//! - `Compacted { dropped }` — a compaction checkpoint: this journal was
//!   rewritten with `dropped` superseded records removed. Compaction
//!   preserves resume byte-identity (see [`compact_events`]).
//!
//! **Resume rule:** on restart, every `Submitted` without a matching
//! `Finished` re-enters the queue in submission order (sharded campaigns
//! re-enter with their journaled `ShardFinished` results pre-seeded);
//! every `Finished` job serves its journaled result directly. Job and
//! shard execution are deterministic in the spec, so a re-run of an
//! interrupted job commits the same result the killed run would have.
//!
//! **Epoch fencing.** A deposed primary must never corrupt its
//! successor's journal. Every append first verifies that the journal file
//! is exactly where this handle last left it — same inode, same length.
//! If another writer advanced it (a rival primary's `Epoch` record, a
//! successor's compaction), the append is refused with a fenced error
//! ([`is_fenced`]) instead of performed, and the caller demotes. Combined
//! with the flock this closes the standby takeover race window: even a
//! writer that somehow bypasses the lock cannot make a deposed primary's
//! stale write land silently.
//!
//! A torn final line (the daemon was SIGKILLed mid-append) is dropped and
//! truncated away; corruption anywhere *else* is refused loudly.
//! Exclusive advisory locking ([`pmtx::FileLock`]) makes a second daemon
//! on the same journal refuse with the holder's pid instead of
//! interleaving appends.

use crate::jobs::{JobSpec, JobView, ShardDone};
use pmtx::framing::{decode_line, encode_line, split_lines};
use pmtx::FileLock;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

/// The journal's schema tag, checked on resume.
pub const JOBS_JOURNAL_SCHEMA: &str = "hippo.jobs.v1";

/// The prefix of every epoch-fencing refusal; [`is_fenced`] keys on it.
const FENCED: &str = "epoch fenced";

/// Whether a journal append error is an epoch-fencing refusal — the
/// signal that this primary was deposed and must demote instead of retry.
pub fn is_fenced(err: &str) -> bool {
    err.starts_with(FENCED)
}

/// The first journal line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobJournalHeader {
    pub schema: String,
}

/// One journaled lifecycle event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobEvent {
    Submitted {
        id: String,
        spec: JobSpec,
    },
    Finished {
        view: JobView,
    },
    /// A primary won the election at this monotonic epoch.
    Epoch {
        epoch: u64,
        pid: u32,
    },
    /// A worker acquired the lease on one campaign shard.
    LeaseAcquired {
        job: String,
        shard: u64,
        epoch: u64,
        owner: String,
        attempt: u32,
    },
    /// The holder heartbeat-renewed its lease (journaled coarsely: the
    /// first renewal of each attempt, so the ledger shows liveness without
    /// growing per heartbeat).
    LeaseRenewed {
        job: String,
        shard: u64,
        epoch: u64,
        owner: String,
    },
    /// The reaper reclaimed an expired (or revoked) lease; the shard goes
    /// back to the scheduler with its attempt counter advanced.
    LeaseReclaimed {
        job: String,
        shard: u64,
        epoch: u64,
        owner: String,
        attempt: u32,
        reason: String,
    },
    /// The shard exhausted its retry budget: poison-shard quarantine.
    ShardQuarantined {
        job: String,
        shard: u64,
        attempts: u32,
        reason: String,
    },
    /// One shard's committed (first-commit-wins) result.
    ShardFinished {
        job: String,
        shard: u64,
        result: ShardDone,
    },
    /// Compaction checkpoint: `dropped` superseded records were removed
    /// when this journal was rewritten.
    Compacted {
        dropped: u64,
    },
}

/// An open, exclusively locked job journal.
#[derive(Debug)]
pub struct JobJournal {
    file: File,
    path: PathBuf,
    /// Where this handle believes the journal ends; a mismatch on append
    /// means another writer advanced it — the epoch fence.
    expected_len: u64,
    /// The highest election epoch seen or written through this handle.
    epoch: u64,
    _lock: FileLock,
}

impl JobJournal {
    /// Opens (creating if absent) the journal, replaying every committed
    /// event. A torn final line is truncated away; the replayed events are
    /// returned in append order.
    ///
    /// # Errors
    ///
    /// Fails when another process holds the journal (the message names the
    /// holder's pid), on interior corruption, on a schema mismatch, and on
    /// I/O errors.
    pub fn open(path: impl AsRef<Path>) -> Result<(JobJournal, Vec<JobEvent>), String> {
        let path = path.as_ref().to_path_buf();
        let lock = FileLock::acquire(&path).map_err(|e| e.to_string())?;
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let mut text = String::new();
        file.read_to_string(&mut text)
            .map_err(|e| format!("{}: {e}", path.display()))?;

        let mut journal = JobJournal {
            file,
            path,
            expected_len: 0,
            epoch: 0,
            _lock: lock,
        };
        if text.is_empty() {
            journal.append_line(&JobJournalHeader {
                schema: JOBS_JOURNAL_SCHEMA.to_string(),
            })?;
            return Ok((journal, vec![]));
        }

        let lines = split_lines(&text);
        let mut events = vec![];
        let mut truncate_at: Option<usize> = None;
        for (i, line) in lines.iter().enumerate() {
            let last = i + 1 == lines.len();
            let payload = match decode_line(line.body) {
                Ok(p) if line.terminated => p,
                // A torn tail — unterminated or checksum-failed final
                // line — is the one legal form of damage: the process died
                // mid-append, the event was never acknowledged. Drop it.
                _ if last => {
                    truncate_at = Some(line.offset);
                    break;
                }
                Ok(_) | Err(_) => {
                    return Err(format!(
                        "{}: corrupted journal line {} (not at the tail); refusing to resume \
                         from a damaged journal",
                        journal.path.display(),
                        i + 1
                    ));
                }
            };
            if i == 0 {
                let header: JobJournalHeader = serde_json::from_str(payload)
                    .map_err(|e| format!("{}: bad journal header: {e}", journal.path.display()))?;
                if header.schema != JOBS_JOURNAL_SCHEMA {
                    return Err(format!(
                        "{}: journal schema is `{}`, this daemon speaks `{JOBS_JOURNAL_SCHEMA}`",
                        journal.path.display(),
                        header.schema
                    ));
                }
                continue;
            }
            match serde_json::from_str::<JobEvent>(payload) {
                Ok(ev) => events.push(ev),
                Err(e) if last => {
                    // Structurally torn JSON with an accidentally valid
                    // checksum cannot happen (the checksum covers the whole
                    // payload), but a half-written *terminated* line at the
                    // tail is still unacknowledged work: drop it too.
                    let _ = e;
                    truncate_at = Some(line.offset);
                }
                Err(e) => {
                    return Err(format!(
                        "{}: journal line {} does not parse: {e}",
                        journal.path.display(),
                        i + 1
                    ));
                }
            }
        }
        if let Some(offset) = truncate_at {
            journal
                .file
                .set_len(offset as u64)
                .map_err(|e| format!("{}: truncate: {e}", journal.path.display()))?;
            journal
                .file
                .seek(std::io::SeekFrom::End(0))
                .map_err(|e| format!("{}: {e}", journal.path.display()))?;
        }
        if events.is_empty() && truncate_at == Some(0) {
            // Even the header was torn; start fresh.
            journal.append_line(&JobJournalHeader {
                schema: JOBS_JOURNAL_SCHEMA.to_string(),
            })?;
        }
        journal.epoch = max_epoch(&events);
        journal.expected_len = journal
            .file
            .metadata()
            .map_err(|e| format!("{}: {e}", journal.path.display()))?
            .len();
        Ok((journal, events))
    }

    fn append_line<T: Serialize>(&mut self, value: &T) -> Result<(), String> {
        let payload =
            serde_json::to_string(value).map_err(|e| format!("encode journal record: {e}"))?;
        let line = encode_line(&payload);
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| format!("{}: append: {e}", self.path.display()))?;
        self.file
            .sync_data()
            .map_err(|e| format!("{}: sync: {e}", self.path.display()))?;
        self.expected_len = self
            .file
            .metadata()
            .map_err(|e| format!("{}: {e}", self.path.display()))?
            .len();
        Ok(())
    }

    /// Verifies that the journal file on disk is exactly where this handle
    /// last left it (same inode, same length). A mismatch means another
    /// writer advanced or replaced it — this primary was deposed.
    fn check_fence(&self) -> Result<(), String> {
        let on_disk = match std::fs::metadata(&self.path) {
            Ok(m) => m,
            Err(e) => {
                return Err(format!(
                    "{FENCED}: journal {} vanished from under this primary ({e}); demoting",
                    self.path.display()
                ));
            }
        };
        #[cfg(unix)]
        {
            use std::os::unix::fs::MetadataExt;
            let own = self
                .file
                .metadata()
                .map_err(|e| format!("{}: {e}", self.path.display()))?;
            if own.ino() != on_disk.ino() || own.dev() != on_disk.dev() {
                return Err(format!(
                    "{FENCED}: journal {} was replaced out from under this primary{}; \
                     refusing stale write and demoting",
                    self.path.display(),
                    rival_epoch_note(&self.path, self.epoch)
                ));
            }
        }
        if on_disk.len() != self.expected_len {
            return Err(format!(
                "{FENCED}: journal {} advanced behind this primary ({} bytes on disk, {} \
                 expected){}; refusing stale write and demoting",
                self.path.display(),
                on_disk.len(),
                self.expected_len,
                rival_epoch_note(&self.path, self.epoch)
            ));
        }
        Ok(())
    }

    /// Appends one event, durable (synced) before returning.
    ///
    /// # Errors
    ///
    /// Refuses with a fenced error ([`is_fenced`]) when another writer
    /// advanced or replaced the journal since this handle's last append —
    /// the caller must demote, not retry. Also propagates serialization
    /// and I/O failures.
    pub fn append(&mut self, event: &JobEvent) -> Result<(), String> {
        self.check_fence()?;
        self.append_line(event)?;
        if let JobEvent::Epoch { epoch, .. } = event {
            self.epoch = (*epoch).max(self.epoch);
        }
        Ok(())
    }

    /// Claims the primaryship: appends an `Epoch` record one past the
    /// highest epoch this journal has seen, returning the new epoch.
    ///
    /// The flock held by this handle makes the claim atomic; the record
    /// makes it durable, so a deposed predecessor's fence check (and any
    /// auditor) can see who the legitimate primary is.
    ///
    /// # Errors
    ///
    /// Propagates [`JobJournal::append`] failures, including fencing.
    pub fn elect(&mut self) -> Result<u64, String> {
        let epoch = self.epoch + 1;
        self.append(&JobEvent::Epoch {
            epoch,
            pid: std::process::id(),
        })?;
        Ok(epoch)
    }

    /// The highest election epoch seen or written through this handle.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Rewrites the journal with superseded records removed (see
    /// [`compact_events`]), preserving resume semantics exactly. `events`
    /// must be this journal's full replayed event list.
    ///
    /// The rewrite goes to a `.compact` sibling which is synced and then
    /// renamed over the journal — crash-atomic, and safe under the flock
    /// because the lock lives on a sidecar file whose inode is untouched.
    /// Returns the number of records dropped.
    ///
    /// # Errors
    ///
    /// Refuses with a fenced error when a rival writer advanced the
    /// journal; propagates I/O failures (the original journal is intact
    /// unless the rename itself succeeded).
    pub fn compact(&mut self, events: &[JobEvent]) -> Result<u64, String> {
        self.check_fence()?;
        let (kept, dropped) = compact_events(events);
        let mut text = String::new();
        let header = serde_json::to_string(&JobJournalHeader {
            schema: JOBS_JOURNAL_SCHEMA.to_string(),
        })
        .map_err(|e| format!("encode journal header: {e}"))?;
        text.push_str(&encode_line(&header));
        let checkpoint = serde_json::to_string(&JobEvent::Compacted { dropped })
            .map_err(|e| format!("encode journal record: {e}"))?;
        text.push_str(&encode_line(&checkpoint));
        for event in &kept {
            let payload =
                serde_json::to_string(event).map_err(|e| format!("encode journal record: {e}"))?;
            text.push_str(&encode_line(&payload));
        }
        let tmp = PathBuf::from(format!("{}.compact", self.path.display()));
        {
            let mut f =
                File::create(&tmp).map_err(|e| format!("{}: create: {e}", tmp.display()))?;
            f.write_all(text.as_bytes())
                .map_err(|e| format!("{}: write: {e}", tmp.display()))?;
            f.sync_all()
                .map_err(|e| format!("{}: sync: {e}", tmp.display()))?;
        }
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| format!("rename {} over {}: {e}", tmp.display(), self.path.display()))?;
        self.file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| format!("{}: reopen after compaction: {e}", self.path.display()))?;
        self.expected_len = self
            .file
            .metadata()
            .map_err(|e| format!("{}: {e}", self.path.display()))?
            .len();
        Ok(dropped)
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn max_epoch(events: &[JobEvent]) -> u64 {
    events
        .iter()
        .filter_map(|e| match e {
            JobEvent::Epoch { epoch, .. } => Some(*epoch),
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

/// A human-readable note naming the rival epoch that fenced us, when the
/// tail of the journal is still readable enough to find one.
fn rival_epoch_note(path: &Path, own: u64) -> String {
    match read_events(path) {
        Ok(events) => {
            let newest = max_epoch(&events);
            if newest > own {
                format!(" — a rival primary holds epoch {newest} (ours: {own})")
            } else {
                String::new()
            }
        }
        Err(_) => String::new(),
    }
}

/// Compacts a replayed event list, dropping every record that no longer
/// affects resume:
///
/// - all `Epoch` records collapse into the single latest one, emitted
///   first so a resuming primary knows the fence floor before anything
///   else;
/// - terminal jobs keep `Submitted` + `Finished` (the cached result);
/// - pending jobs keep `Submitted` plus their committed `ShardFinished`
///   (first commit per shard — later duplicates lost the
///   first-commit-wins race) and `ShardQuarantined` records;
/// - lease acquire/renew/reclaim history and prior `Compacted`
///   checkpoints are dropped — they describe the past, not the resume
///   state.
///
/// Replaying the compacted list reconstructs exactly the same scheduler
/// state (and therefore byte-identical campaign output) as the original.
/// Returns `(kept, dropped_count)`.
pub fn compact_events(events: &[JobEvent]) -> (Vec<JobEvent>, u64) {
    use std::collections::HashSet;
    let finished: HashSet<&str> = events
        .iter()
        .filter_map(|e| match e {
            JobEvent::Finished { view } => Some(view.id.as_str()),
            _ => None,
        })
        .collect();
    let newest_epoch = max_epoch(events);
    let mut kept = Vec::new();
    if newest_epoch > 0 {
        kept.push(JobEvent::Epoch {
            epoch: newest_epoch,
            pid: std::process::id(),
        });
    }
    let mut committed: HashSet<(String, u64)> = HashSet::new();
    for event in events {
        match event {
            JobEvent::Submitted { .. } | JobEvent::Finished { .. } => kept.push(event.clone()),
            JobEvent::ShardFinished { job, shard, .. }
                if !finished.contains(job.as_str()) && committed.insert((job.clone(), *shard)) =>
            {
                kept.push(event.clone());
            }
            JobEvent::ShardQuarantined { job, .. } if !finished.contains(job.as_str()) => {
                kept.push(event.clone());
            }
            JobEvent::Epoch { .. }
            | JobEvent::LeaseAcquired { .. }
            | JobEvent::LeaseRenewed { .. }
            | JobEvent::LeaseReclaimed { .. }
            | JobEvent::ShardFinished { .. }
            | JobEvent::ShardQuarantined { .. }
            | JobEvent::Compacted { .. } => {}
        }
    }
    let dropped = events.len().saturating_sub(kept.len()) as u64;
    (kept, dropped)
}

/// Reads a journal's events without taking the lock — the audit path used
/// by tests, the chaos gate, and post-mortem tooling while (or after) a
/// daemon holds the journal. Tolerates a torn tail (skipped, like
/// [`JobJournal::open`], but without truncating); refuses interior
/// corruption and schema mismatches.
///
/// # Errors
///
/// Fails on I/O errors, a bad or missing header, and interior corruption.
pub fn read_events(path: impl AsRef<Path>) -> Result<Vec<JobEvent>, String> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if text.is_empty() {
        return Err(format!("{}: empty journal (no header)", path.display()));
    }
    let lines = split_lines(&text);
    let mut events = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let last = i + 1 == lines.len();
        let payload = match decode_line(line.body) {
            Ok(p) if line.terminated => p,
            _ if last => break,
            Ok(_) | Err(_) => {
                return Err(format!(
                    "{}: corrupted journal line {} (not at the tail)",
                    path.display(),
                    i + 1
                ));
            }
        };
        if i == 0 {
            let header: JobJournalHeader = serde_json::from_str(payload)
                .map_err(|e| format!("{}: bad journal header: {e}", path.display()))?;
            if header.schema != JOBS_JOURNAL_SCHEMA {
                return Err(format!(
                    "{}: journal schema is `{}`, this reader speaks `{JOBS_JOURNAL_SCHEMA}`",
                    path.display(),
                    header.schema
                ));
            }
            continue;
        }
        match serde_json::from_str::<JobEvent>(payload) {
            Ok(ev) => events.push(ev),
            Err(_) if last => break,
            Err(e) => {
                return Err(format!(
                    "{}: journal line {} does not parse: {e}",
                    path.display(),
                    i + 1
                ));
            }
        }
    }
    Ok(events)
}

/// Chaos/test helper: appends an `Epoch` record to a journal *without*
/// taking the flock or checking the fence — simulating a rival primary
/// that claimed the journal behind the holder's back. The holder's next
/// [`JobJournal::append`] is then refused with a fenced error, which is
/// exactly the property the double-primary chaos archetype exercises.
pub fn append_rival_epoch(path: impl AsRef<Path>, epoch: u64) -> Result<(), String> {
    let path = path.as_ref();
    let payload = serde_json::to_string(&JobEvent::Epoch {
        epoch,
        pid: std::process::id(),
    })
    .map_err(|e| format!("encode journal record: {e}"))?;
    let mut f = OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    f.write_all(encode_line(&payload).as_bytes())
        .map_err(|e| format!("{}: append: {e}", path.display()))?;
    f.sync_data()
        .map_err(|e| format!("{}: sync: {e}", path.display()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::{JobKind, JobState};

    fn spec() -> JobSpec {
        JobSpec::new(
            JobKind::Lint,
            vec![("a.pmc".to_string(), "fn main() {}".to_string())],
        )
    }

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hippod-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("jobs.journal")
    }

    fn submitted(id: &str) -> JobEvent {
        JobEvent::Submitted {
            id: id.to_string(),
            spec: spec(),
        }
    }

    fn finished(id: &str) -> JobEvent {
        JobEvent::Finished {
            view: JobView {
                id: id.to_string(),
                kind: JobKind::Lint,
                state: JobState::Done,
                error: None,
                result: None,
            },
        }
    }

    #[test]
    fn events_replay_in_append_order() {
        let path = tmp("replay");
        {
            let (mut j, replayed) = JobJournal::open(&path).unwrap();
            assert!(replayed.is_empty());
            j.append(&submitted("job-1")).unwrap();
            j.append(&submitted("job-2")).unwrap();
            j.append(&finished("job-1")).unwrap();
        }
        let (_j, replayed) = JobJournal::open(&path).unwrap();
        assert_eq!(
            replayed,
            vec![submitted("job-1"), submitted("job-2"), finished("job-1")]
        );
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let path = tmp("torn");
        {
            let (mut j, _) = JobJournal::open(&path).unwrap();
            j.append(&submitted("job-1")).unwrap();
        }
        // Simulate a SIGKILL mid-append: half a line, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"Finished\":{\"view\":{\"id\":\"job")
            .unwrap();
        drop(f);
        let before = std::fs::metadata(&path).unwrap().len();
        let (_j, replayed) = JobJournal::open(&path).unwrap();
        assert_eq!(replayed, vec![submitted("job-1")]);
        assert!(
            std::fs::metadata(&path).unwrap().len() < before,
            "the torn tail must be truncated away"
        );
    }

    #[test]
    fn interior_corruption_is_refused() {
        let path = tmp("interior");
        {
            let (mut j, _) = JobJournal::open(&path).unwrap();
            j.append(&submitted("job-1")).unwrap();
            j.append(&finished("job-1")).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let flipped = text.replacen("job-1", "job-X", 1);
        std::fs::write(&path, flipped).unwrap();
        let err = JobJournal::open(&path).unwrap_err();
        assert!(err.contains("corrupted journal line"), "{err}");
    }

    fn shard_finished(id: &str, shard: u64) -> JobEvent {
        JobEvent::ShardFinished {
            job: id.to_string(),
            shard,
            result: ShardDone {
                output: format!("report for {id} shard {shard}\n"),
                summary: format!("shard {shard}/4: clean"),
                clean: true,
            },
        }
    }

    #[test]
    fn election_epochs_are_monotonic_across_reopens() {
        let path = tmp("elect");
        {
            let (mut j, _) = JobJournal::open(&path).unwrap();
            assert_eq!(j.epoch(), 0);
            assert_eq!(j.elect().unwrap(), 1);
            assert_eq!(j.elect().unwrap(), 2);
        }
        let (mut j, events) = JobJournal::open(&path).unwrap();
        assert_eq!(j.epoch(), 2, "replay must recover the highest epoch");
        assert_eq!(j.elect().unwrap(), 3);
        assert!(events
            .iter()
            .any(|e| matches!(e, JobEvent::Epoch { epoch: 2, .. })));
    }

    #[test]
    fn rival_epoch_append_fences_the_holder() {
        let path = tmp("fence");
        let (mut j, _) = JobJournal::open(&path).unwrap();
        j.elect().unwrap();
        j.append(&submitted("job-1")).unwrap();
        // A rival primary sneaks an epoch record past the flock.
        append_rival_epoch(&path, 7).unwrap();
        let err = j.append(&finished("job-1")).unwrap_err();
        assert!(is_fenced(&err), "{err}");
        assert!(err.contains("epoch 7"), "the fence names the rival: {err}");
        // The stale write was refused, not performed: the journal holds the
        // rival's record and nothing after it.
        let events = read_events(&path).unwrap();
        assert_eq!(
            events.last(),
            Some(&JobEvent::Epoch {
                epoch: 7,
                pid: std::process::id()
            })
        );
        assert!(!events.iter().any(|e| e == &finished("job-1")));
        // Fencing is sticky: the deposed handle stays fenced.
        assert!(is_fenced(&j.append(&submitted("job-2")).unwrap_err()));
    }

    #[test]
    fn compaction_preserves_replay_state_and_accepts_new_appends() {
        let path = tmp("compact");
        let before;
        {
            let (mut j, _) = JobJournal::open(&path).unwrap();
            j.elect().unwrap();
            j.append(&submitted("job-1")).unwrap();
            j.append(&finished("job-1")).unwrap();
            j.append(&submitted("job-2")).unwrap();
            j.append(&JobEvent::LeaseAcquired {
                job: "job-2".to_string(),
                shard: 0,
                epoch: 1,
                owner: "worker-0".to_string(),
                attempt: 0,
            })
            .unwrap();
            j.append(&shard_finished("job-2", 0)).unwrap();
            j.append(&JobEvent::LeaseReclaimed {
                job: "job-2".to_string(),
                shard: 1,
                epoch: 1,
                owner: "worker-1".to_string(),
                attempt: 1,
                reason: "lease expired".to_string(),
            })
            .unwrap();
            j.elect().unwrap();
            before = std::fs::metadata(&path).unwrap().len();
        }
        // Reopen cleanly, compact, then verify the replayed state matches.
        let dropped = {
            let (mut j, events) = JobJournal::open(&path).unwrap();
            let dropped = j.compact(&events).unwrap();
            // The compacted journal still accepts appends (fence re-armed at
            // the new length).
            j.append(&submitted("job-3")).unwrap();
            dropped
        };
        assert!(dropped >= 3, "epochs + lease records collapse: {dropped}");
        assert!(
            std::fs::metadata(&path).unwrap().len() < before,
            "compaction must shrink the journal"
        );
        let (j, events) = JobJournal::open(&path).unwrap();
        assert_eq!(j.epoch(), 2, "the latest epoch survives compaction");
        assert!(events.iter().any(|e| e == &submitted("job-1")));
        assert!(events.iter().any(|e| e == &finished("job-1")));
        assert!(events.iter().any(|e| e == &submitted("job-2")));
        assert!(events.iter().any(|e| e == &shard_finished("job-2", 0)));
        assert!(events.iter().any(|e| e == &submitted("job-3")));
        assert!(
            !events.iter().any(|e| matches!(
                e,
                JobEvent::LeaseAcquired { .. } | JobEvent::LeaseReclaimed { .. }
            )),
            "lease history is dropped"
        );
        assert!(events
            .iter()
            .any(|e| matches!(e, JobEvent::Compacted { .. })));
    }

    #[test]
    fn compact_events_keeps_first_commit_and_drops_terminal_shards() {
        let mut second = shard_finished("job-2", 0);
        if let JobEvent::ShardFinished { result, .. } = &mut second {
            result.output = "a LOSING duplicate commit".to_string();
        }
        let events = vec![
            JobEvent::Epoch { epoch: 1, pid: 1 },
            submitted("job-1"),
            shard_finished("job-1", 0),
            finished("job-1"),
            submitted("job-2"),
            shard_finished("job-2", 0),
            second,
            JobEvent::ShardQuarantined {
                job: "job-2".to_string(),
                shard: 3,
                attempts: 4,
                reason: "injected worker kill".to_string(),
            },
            JobEvent::Epoch { epoch: 2, pid: 2 },
        ];
        let (kept, dropped) = compact_events(&events);
        assert_eq!(
            kept[0],
            JobEvent::Epoch {
                epoch: 2,
                pid: std::process::id()
            },
            "the latest epoch leads"
        );
        // job-1 is terminal: its shard commits are superseded by Finished.
        assert!(!kept.iter().any(|e| e == &shard_finished("job-1", 0)));
        // job-2 is pending: its FIRST shard-0 commit survives, not the dup.
        assert!(kept.iter().any(|e| e == &shard_finished("job-2", 0)));
        assert_eq!(
            kept.iter()
                .filter(|e| matches!(e, JobEvent::ShardFinished { job, shard, .. } if job == "job-2" && *shard == 0))
                .count(),
            1
        );
        assert!(kept.iter().any(
            |e| matches!(e, JobEvent::ShardQuarantined { job, shard: 3, .. } if job == "job-2")
        ));
        // Dropped: the two epochs collapse into one, job-1's superseded
        // shard commit goes, and so does the losing duplicate.
        assert_eq!(dropped, 3);
    }

    #[test]
    fn read_events_audits_without_taking_the_lock() {
        let path = tmp("audit");
        let (mut j, _) = JobJournal::open(&path).unwrap();
        j.elect().unwrap();
        j.append(&submitted("job-1")).unwrap();
        // The holder is still alive and locked; the audit reads anyway.
        let events = read_events(&path).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1], submitted("job-1"));
    }

    #[test]
    fn second_open_is_refused_with_holder_pid() {
        let path = tmp("locked");
        let (_j, _) = JobJournal::open(&path).unwrap();
        let err = JobJournal::open(&path).unwrap_err();
        assert!(err.contains("held by pid"), "{err}");
        assert!(
            err.contains(&std::process::id().to_string()),
            "the message must name the holder: {err}"
        );
    }
}
