//! Shard-archetype chaos campaign: one seed, one in-process daemon, one
//! sharded explore campaign, and the self-healing contract asserted end
//! to end.
//!
//! The `shard.*` faults (`shard.worker`, `shard.renew`, `shard.election`,
//! `shard.commit`) land inside the campaign scheduler — worker kills
//! mid-shard, lease-expiry storms, a double-primary epoch contest, the
//! reaper-vs-finisher commit race — so exercising them means standing up
//! a daemon with the plan armed, submitting a sharded campaign, and
//! letting the lease table, the reaper, and (for the contest) a hot
//! standby heal it. Both `hippoctl faultcampaign` and the chaos gate run
//! shard seeds through this helper, enforcing one contract:
//!
//! 1. **Byte identity.** The merged artifact of the faulted multi-worker
//!    campaign equals the sequential single-worker run
//!    ([`crate::shard::run_local`]) byte for byte.
//! 2. **Structured degradation.** Every absorbed failure leaves a journal
//!    record (`LeaseReclaimed`, `Epoch`) — the trail is auditable, never
//!    silent.
//! 3. **No harm.** Single-shot faults heal through retries: nothing is
//!    quarantined, every accepted job reaches a journaled terminal state,
//!    and the daemons drain within a bound (a failure to drain is the
//!    hang this gate exists to catch).

use crate::jobs::{JobKind, JobSpec, JobState, JobView};
use crate::journal::{read_events, JobEvent};
use crate::{Client, ServerConfig};
use std::time::{Duration, Instant};

/// Shard fan-out every chaos campaign runs with. The seeded shard plans
/// ([`pmfault::FaultPlan::from_seed`]) pick their target shards inside
/// this range.
pub const CAMPAIGN_SHARDS: u64 = 4;

/// Runs one shard-archetype seed end to end. `source` is the explore
/// workload the campaign shards; the caller picks it so the CLI gate and
/// the benchmark share one reference shape.
///
/// # Errors
///
/// Any broken contract: a diverged artifact, a missing degradation
/// trail, a quarantined shard, an unfinished accepted job, or a daemon
/// that fails to drain.
pub fn campaign_seed(
    seed: u64,
    source_name: &str,
    source: &str,
    obs: &pmobs::Obs,
) -> Result<String, String> {
    let plan = pmfault::FaultPlan::from_seed(seed);
    if !plan.targets_shard() {
        return Err(format!(
            "seed {seed} plans no shard faults; route it to the matching campaign runner"
        ));
    }
    let contested = plan.targets(pmfault::FaultSite::ShardElection);
    let dir = std::env::temp_dir().join(format!("hippo-chaos-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let journal = dir.join("jobs.journal");
    let socket = dir.join("hippod.sock");
    let standby_socket = dir.join("standby.sock");

    let mut spec = JobSpec::new(
        JobKind::Explore,
        vec![(source_name.to_string(), source.to_string())],
    );
    spec.shards = CAMPAIGN_SHARDS;

    // The byte-identity reference: the same campaign, sequential, one
    // worker, no daemon, no faults.
    let reference = crate::shard::run_local(
        &spec,
        &hippocrates::WarmCache::enabled(),
        &pmobs::Obs::default(),
    )?;

    // A short lease TTL makes every injected death heal in milliseconds
    // instead of the production default's seconds.
    let server = {
        let config = ServerConfig {
            socket: socket.clone(),
            journal: Some(journal.clone()),
            workers: 3,
            lease_ttl_ms: 100,
            shard_watchdog_ms: 10_000,
            io_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(10),
            fault: Some(plan.clone()),
            obs: obs.clone(),
            ..ServerConfig::default()
        };
        std::thread::spawn(move || crate::serve(config))
    };
    // The double-primary contest needs a rival that can actually win:
    // run a fault-free hot standby on its own socket, sharing the
    // journal. (For the other archetypes the single daemon heals alone.)
    let standby = contested.then(|| {
        let config = ServerConfig {
            socket: standby_socket.clone(),
            journal: Some(journal.clone()),
            standby: true,
            workers: 3,
            lease_ttl_ms: 100,
            shard_watchdog_ms: 10_000,
            io_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(10),
            obs: obs.clone(),
            ..ServerConfig::default()
        };
        std::thread::spawn(move || crate::serve(config))
    });

    let id = {
        let mut c = Client::connect_retry(&socket, Duration::from_secs(5))?;
        c.set_io_timeout(Some(Duration::from_secs(10)))?;
        c.submit_retry(spec.clone(), Duration::from_secs(5))?
    };

    // Poll to terminal across every socket that might hold the
    // primaryship by now, reconnecting each pass: the epoch contest
    // deposes the original primary mid-campaign, and a poll must follow
    // the job to whoever won, not wedge on the loser.
    let mut sockets = vec![socket.clone()];
    if contested {
        sockets.push(standby_socket.clone());
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    let view: JobView = 'done: loop {
        if Instant::now() > deadline {
            return Err(format!(
                "campaign `{id}` did not settle within 120s — that is a hang"
            ));
        }
        for s in &sockets {
            let polled = (|| -> Result<JobView, String> {
                let mut c = Client::connect(s)?;
                c.set_io_timeout(Some(Duration::from_secs(5)))?;
                c.status(&id)
            })();
            if let Ok(v) = polled {
                match v.state {
                    JobState::Queued | JobState::Running => {}
                    _ => break 'done v,
                }
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    if view.state != JobState::Done {
        return Err(format!(
            "campaign ended {:?} instead of healing: {:?}",
            view.state, view.error
        ));
    }
    let result = view.result.ok_or("done campaign carried no result")?;
    if result.output != reference.output || result.clean != reference.clean {
        return Err(
            "faulted campaign artifact diverged from the sequential single-worker run".to_string(),
        );
    }

    // Drain everything, bounded.
    for s in &sockets {
        if let Ok(mut c) = Client::connect(s) {
            let _ = c.set_io_timeout(Some(Duration::from_secs(5)));
            let _ = c.shutdown();
        }
    }
    join_bounded(server, "primary")?;
    if let Some(standby) = standby {
        join_bounded(standby, "standby")?;
    }

    // The journal is the structured degradation trail: audit it.
    let events = read_events(&journal)?;
    let mut reclaims = 0u64;
    let mut quarantined = 0u64;
    let mut epochs = 0u64;
    let mut submitted: Vec<String> = vec![];
    let mut finished: Vec<String> = vec![];
    for ev in &events {
        match ev {
            JobEvent::Submitted { id, .. } => submitted.push(id.clone()),
            JobEvent::Finished { view } => finished.push(view.id.clone()),
            JobEvent::LeaseReclaimed { .. } => reclaims += 1,
            JobEvent::ShardQuarantined { .. } => quarantined += 1,
            JobEvent::Epoch { .. } => epochs += 1,
            _ => {}
        }
    }
    for id in &submitted {
        if !finished.contains(id) {
            return Err(format!(
                "journal audit: `{id}` was accepted but never reached a journaled terminal state"
            ));
        }
    }
    if quarantined != 0 {
        return Err(format!(
            "single-shot faults must heal through retries, yet {quarantined} shard(s) were quarantined"
        ));
    }
    // Every archetype but the epoch contest degrades through the lease
    // table, so the journal must show the reclaim trail; the contest's
    // trail is its epoch records (primary, rival, winner).
    if !contested && reclaims == 0 {
        return Err(
            "the fault fired but the journal shows no degradation trail (no lease reclaims)"
                .to_string(),
        );
    }
    if contested && epochs < 3 {
        return Err(format!(
            "epoch contest must leave >= 3 epoch records (primary, rival, winner); journal has {epochs}"
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(format!(
        "healed: {reclaims} lease reclaim(s), {epochs} epoch record(s), 0 quarantined, \
         artifact byte-identical to the sequential run"
    ))
}

/// Joins a daemon thread with a deadline: a daemon that cannot drain is
/// a hang, the exact failure mode the chaos gate exists to catch.
fn join_bounded(
    handle: std::thread::JoinHandle<Result<crate::ServeReport, String>>,
    who: &'static str,
) -> Result<(), String> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(handle.join());
    });
    match rx.recv_timeout(Duration::from_secs(30)) {
        Ok(Ok(Ok(_))) => Ok(()),
        Ok(Ok(Err(e))) => Err(format!("{who} daemon exited with error: {e}")),
        Ok(Err(_)) => Err(format!("{who} daemon thread panicked")),
        Err(_) => Err(format!(
            "{who} daemon failed to drain within 30s — that is a hang"
        )),
    }
}
