//! In-process end-to-end tests: a real daemon on a real socket.

use hippod::proto::{read_frame, ResponseFrame};
use hippod::{Client, JobKind, JobSpec, JobState, Response, ServerConfig, Submitted};
use std::io::Read as _;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const BUGGY: &str = "fn main() {\n    var p: ptr = pmem_map(0, 4096);\n    store8(p, 0, 7);\n    print(load8(p, 0));\n}\n";

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hippod-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn spec(kind: JobKind) -> JobSpec {
    JobSpec::new(kind, vec![("buggy.pmc".to_string(), BUGGY.to_string())])
}

fn start(config: ServerConfig) -> std::thread::JoinHandle<Result<hippod::ServeReport, String>> {
    std::thread::spawn(move || hippod::serve(config))
}

#[test]
fn daemon_serves_jobs_health_metrics_and_drains_on_shutdown() {
    let dir = tmp("basic");
    let socket = dir.join("hippod.sock");
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: Some(dir.join("jobs.journal")),
        workers: 2,
        obs: pmobs::Obs::enabled(),
        ..ServerConfig::default()
    });
    let mut c = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();

    // Submit a fix and a lint; both settle.
    let fix_id = c
        .submit_retry(spec(JobKind::Fix), Duration::from_secs(5))
        .unwrap();
    let lint_id = c
        .submit_retry(spec(JobKind::Lint), Duration::from_secs(5))
        .unwrap();
    let fix = c.wait(&fix_id, Duration::from_secs(30)).unwrap();
    assert_eq!(fix.state, JobState::Done);
    let fix_result = fix.result.expect("done job carries its result");
    assert!(fix_result.clean);
    assert!(fix_result.output.contains("clwb"), "fix inserts a flush");
    let lint = c.wait(&lint_id, Duration::from_secs(30)).unwrap();
    assert_eq!(lint.state, JobState::Done);
    assert!(!lint.result.unwrap().clean, "unflushed store lints dirty");

    // A resubmission of the same spec is served warm and byte-identical.
    let again_id = c
        .submit_retry(spec(JobKind::Fix), Duration::from_secs(5))
        .unwrap();
    let again = c.wait(&again_id, Duration::from_secs(30)).unwrap();
    let again_result = again.result.unwrap();
    assert!(
        again_result.cached,
        "identical spec must hit the result cache"
    );
    assert_eq!(again_result.output, fix_result.output);

    // Health and live metrics answer mid-flight.
    let h = c.health().unwrap();
    assert!(h.ok && !h.draining);
    assert_eq!(h.done, 3);
    assert!(h.cache_hits > 0);
    let metrics = c.metrics().unwrap();
    assert!(metrics.contains("serve.jobs.submitted"), "{metrics}");

    // Unknown ids are structured errors, not hangs.
    let err = c.status("job-999").unwrap_err();
    assert!(err.contains("unknown job"), "{err}");

    // Graceful shutdown: drain, then the socket disappears.
    c.shutdown().unwrap();
    let report = server.join().unwrap().unwrap();
    assert_eq!(report.done, 3);
    assert_eq!(report.failed, 0);
    assert!(!socket.exists(), "a drained daemon removes its socket");
}

#[test]
fn full_queue_answers_busy_and_canceled_jobs_never_run() {
    let dir = tmp("backpressure");
    let socket = dir.join("hippod.sock");
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: None,
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });
    let mut c = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();

    // One slow-ish job occupies the worker; the queue holds one more; the
    // third gets explicit backpressure.
    let first = c
        .submit_retry(spec(JobKind::Fix), Duration::from_secs(5))
        .unwrap();
    let mut queued = None;
    let mut saw_busy = false;
    for _ in 0..200 {
        match c.submit(spec(JobKind::Explore)).unwrap() {
            Submitted::Accepted(id) if queued.is_none() => queued = Some(id),
            Submitted::Accepted(id) => {
                // Worker already drained the queue; cancel and keep probing.
                let _ = c.cancel(&id);
            }
            Submitted::Busy(ms) => {
                assert!(ms > 0, "retry hint must be positive");
                saw_busy = true;
                break;
            }
        }
    }
    assert!(saw_busy, "a full queue must answer Busy with a retry hint");

    // Cancel the queued job: it goes terminal without running.
    if let Some(id) = &queued {
        let view = c.cancel(id).unwrap();
        if view.state == JobState::Canceled {
            assert!(view.result.is_none());
        } // else the worker won the race and ran it — also legal.
    }
    c.wait(&first, Duration::from_secs(30)).unwrap();
    c.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn injected_worker_fault_fails_one_job_and_spares_its_siblings() {
    let dir = tmp("fault");
    let socket = dir.join("hippod.sock");
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: Some(dir.join("jobs.journal")),
        workers: 2,
        fault: Some(pmfault::FaultPlan::single(
            pmfault::FaultSite::DaemonWorker,
            pmfault::Trigger::Nth(0),
            pmfault::FaultKind::WorkerPanic,
        )),
        ..ServerConfig::default()
    });
    let mut c = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
    let ids: Vec<String> = (0..3)
        .map(|i| {
            let mut s = spec(JobKind::Fix);
            s.seed = i; // distinct specs so results are not cache-shared
            c.submit_retry(s, Duration::from_secs(5)).unwrap()
        })
        .collect();
    let views: Vec<_> = ids
        .iter()
        .map(|id| c.wait(id, Duration::from_secs(60)).unwrap())
        .collect();
    let failed: Vec<_> = views
        .iter()
        .filter(|v| v.state == JobState::Failed)
        .collect();
    let done: Vec<_> = views.iter().filter(|v| v.state == JobState::Done).collect();
    assert_eq!(failed.len(), 1, "exactly the injected occurrence fails");
    assert!(
        failed[0]
            .error
            .as_deref()
            .unwrap_or("")
            .contains("injected"),
        "{:?}",
        failed[0].error
    );
    assert_eq!(done.len(), 2, "sibling jobs are unharmed");
    let h = c.health().unwrap();
    assert!(h.ok, "the daemon itself stays healthy");
    c.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn second_daemon_on_the_same_journal_is_refused_with_the_holder_pid() {
    let dir = tmp("second");
    let socket = dir.join("hippod.sock");
    let journal = dir.join("jobs.journal");
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: Some(journal.clone()),
        ..ServerConfig::default()
    });
    let mut c = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
    let err = hippod::serve(ServerConfig {
        socket: dir.join("other.sock"),
        journal: Some(journal),
        ..ServerConfig::default()
    })
    .unwrap_err();
    assert!(err.contains("held by pid"), "{err}");
    assert!(err.contains(&std::process::id().to_string()), "{err}");
    c.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn draining_daemon_refuses_new_submissions_but_finishes_queued_work() {
    let dir = tmp("drain");
    let socket = dir.join("hippod.sock");
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: Some(dir.join("jobs.journal")),
        workers: 1,
        ..ServerConfig::default()
    });
    let mut c = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
    let id = c
        .submit_retry(spec(JobKind::Fix), Duration::from_secs(5))
        .unwrap();
    c.shutdown().unwrap();
    let err = c.submit(spec(JobKind::Lint)).unwrap_err();
    assert!(err.contains("draining"), "{err}");
    // The in-flight job still runs to its journaled conclusion.
    let view = c.wait(&id, Duration::from_secs(30));
    // The daemon may exit between polls once the job settles; both a clean
    // wait and a dropped connection after Done are acceptable here. The
    // authoritative check is the server's exit report.
    drop(view);
    let report = server.join().unwrap().unwrap();
    assert_eq!(report.done, 1);
    assert_eq!(report.failed, 0);
}

#[test]
fn tcp_endpoint_serves_jobs_end_to_end() {
    let dir = tmp("tcp");
    let (tx, rx) = std::sync::mpsc::channel();
    let server = start(ServerConfig {
        socket: dir.join("unused.sock"),
        listen: Some("127.0.0.1:0".to_string()),
        journal: Some(dir.join("jobs.journal")),
        workers: 2,
        ready: Some(tx),
        ..ServerConfig::default()
    });
    // `host:0` picks an ephemeral port; the ready channel reports it.
    let addr = rx.recv_timeout(Duration::from_secs(10)).unwrap();
    let mut c = Client::dial_retry(&addr, Duration::from_secs(5)).unwrap();
    c.set_io_timeout(Some(Duration::from_secs(10))).unwrap();
    c.ping().unwrap();
    let id = c
        .submit_retry(spec(JobKind::Fix), Duration::from_secs(5))
        .unwrap();
    let view = c.wait(&id, Duration::from_secs(30)).unwrap();
    assert_eq!(view.state, JobState::Done);
    assert!(view.result.unwrap().clean);
    let h = c.health().unwrap();
    assert!(h.ok && !h.standby);
    c.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn connections_past_the_cap_are_shed_with_busy() {
    let dir = tmp("shed");
    let socket = dir.join("hippod.sock");
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: None,
        max_conns: 1,
        ..ServerConfig::default()
    });
    let mut keeper = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
    keeper.ping().unwrap();
    // The connection past the cap is told Busy and closed before it sends
    // a single byte.
    let mut raw = UnixStream::connect(&socket).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let frame: ResponseFrame = read_frame(&mut raw).unwrap().expect("shed sends a frame");
    match frame.response {
        Response::Busy { retry_after_ms } => assert!(retry_after_ms > 0),
        other => panic!("expected Busy, got {other:?}"),
    }
    let mut buf = [0u8; 16];
    assert_eq!(raw.read(&mut buf).unwrap_or(0), 0, "shed then close");
    drop(raw);
    // The connection inside the cap is unaffected.
    keeper.ping().unwrap();
    keeper.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn idle_connections_are_closed_quietly() {
    let dir = tmp("idle");
    let socket = dir.join("hippod.sock");
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: None,
        io_timeout: Duration::from_millis(100),
        idle_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let mut c = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
    c.ping().unwrap();
    // A connection that never speaks is closed after the idle window —
    // with silence, not an error frame.
    let mut raw = UnixStream::connect(&socket).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let started = Instant::now();
    let mut buf = [0u8; 16];
    let n = raw.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "an idle close carries no bytes");
    assert!(
        started.elapsed() >= Duration::from_millis(250),
        "closed before the idle window elapsed"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "idle close took too long"
    );
    // `c` sat out the same window and was idle-closed too; a fresh
    // connection shows the daemon is still serving.
    let mut fresh = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
    fresh.ping().unwrap();
    fresh.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn standby_takes_over_and_serves_journaled_results_byte_identically() {
    let dir = tmp("standby");
    let journal = dir.join("jobs.journal");
    let primary_sock = dir.join("primary.sock");
    let standby_sock = dir.join("standby.sock");
    let primary = start(ServerConfig {
        socket: primary_sock.clone(),
        journal: Some(journal.clone()),
        workers: 2,
        io_timeout: Duration::from_millis(200),
        idle_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    });
    let standby = start(ServerConfig {
        socket: standby_sock.clone(),
        journal: Some(journal.clone()),
        standby: true,
        workers: 2,
        ..ServerConfig::default()
    });
    let mut c = Client::connect_retry(&primary_sock, Duration::from_secs(5)).unwrap();
    let id = c
        .submit_retry(spec(JobKind::Fix), Duration::from_secs(5))
        .unwrap();
    let reference = c
        .wait(&id, Duration::from_secs(30))
        .unwrap()
        .result
        .expect("primary finishes the job");

    assert_eq!(
        c.health().unwrap().epoch,
        1,
        "the first primary serves at election epoch 1"
    );

    // While the primary holds the flock, the standby answers health but
    // refuses job traffic.
    let mut s = Client::connect_retry(&standby_sock, Duration::from_secs(5)).unwrap();
    let h = s.health().unwrap();
    assert!(h.ok && h.standby);
    assert_eq!(h.epoch, 0, "a standby has won no election yet");
    let err = s.submit(spec(JobKind::Fix)).unwrap_err();
    assert!(err.contains("standby"), "{err}");

    // The primary exits; the standby wins the flock, replays the journal,
    // and starts serving.
    c.shutdown().unwrap();
    drop(c);
    primary.join().unwrap().unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let h = s.health().unwrap();
        if !h.standby {
            assert_eq!(h.epoch, 2, "the takeover wins the next monotonic epoch");
            break;
        }
        assert!(Instant::now() < deadline, "standby never took over");
        std::thread::sleep(Duration::from_millis(50));
    }

    // The journaled result is served warm and byte-identical.
    let id2 = s
        .submit_retry(spec(JobKind::Fix), Duration::from_secs(5))
        .unwrap();
    let view = s.wait(&id2, Duration::from_secs(30)).unwrap();
    assert_eq!(view.state, JobState::Done);
    let result = view.result.unwrap();
    assert!(result.cached, "takeover must seed the result cache");
    assert_eq!(result.output, reference.output);
    s.shutdown().unwrap();
    standby.join().unwrap().unwrap();
}

#[test]
fn cache_budget_bounds_warm_memory_and_reports_evictions() {
    let dir = tmp("budget");
    let socket = dir.join("hippod.sock");
    let budget = 4 * 1024u64;
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: None,
        workers: 1,
        cache_budget: Some(budget),
        obs: pmobs::Obs::enabled(),
        ..ServerConfig::default()
    });
    let mut c = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
    for i in 0..12 {
        let mut s = spec(JobKind::Fix);
        s.seed = i; // distinct digests: every job caches a fresh result
        let id = c.submit_retry(s, Duration::from_secs(5)).unwrap();
        c.wait(&id, Duration::from_secs(30)).unwrap();
        let h = c.health().unwrap();
        assert!(
            h.cache_bytes <= budget,
            "accounted bytes {} exceed the {budget}-byte budget",
            h.cache_bytes
        );
    }
    let h = c.health().unwrap();
    assert!(
        h.cache_evictions > 0,
        "12 distinct results must overflow a 4 KiB budget"
    );
    c.shutdown().unwrap();
    server.join().unwrap().unwrap();
}
