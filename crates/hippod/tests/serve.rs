//! In-process end-to-end tests: a real daemon on a real socket.

use hippod::{Client, JobKind, JobSpec, JobState, ServerConfig, Submitted};
use std::path::PathBuf;
use std::time::Duration;

const BUGGY: &str = "fn main() {\n    var p: ptr = pmem_map(0, 4096);\n    store8(p, 0, 7);\n    print(load8(p, 0));\n}\n";

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hippod-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn spec(kind: JobKind) -> JobSpec {
    JobSpec::new(kind, vec![("buggy.pmc".to_string(), BUGGY.to_string())])
}

fn start(config: ServerConfig) -> std::thread::JoinHandle<Result<hippod::ServeReport, String>> {
    std::thread::spawn(move || hippod::serve(config))
}

#[test]
fn daemon_serves_jobs_health_metrics_and_drains_on_shutdown() {
    let dir = tmp("basic");
    let socket = dir.join("hippod.sock");
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: Some(dir.join("jobs.journal")),
        workers: 2,
        obs: pmobs::Obs::enabled(),
        ..ServerConfig::default()
    });
    let mut c = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();

    // Submit a fix and a lint; both settle.
    let fix_id = c
        .submit_retry(spec(JobKind::Fix), Duration::from_secs(5))
        .unwrap();
    let lint_id = c
        .submit_retry(spec(JobKind::Lint), Duration::from_secs(5))
        .unwrap();
    let fix = c.wait(&fix_id, Duration::from_secs(30)).unwrap();
    assert_eq!(fix.state, JobState::Done);
    let fix_result = fix.result.expect("done job carries its result");
    assert!(fix_result.clean);
    assert!(fix_result.output.contains("clwb"), "fix inserts a flush");
    let lint = c.wait(&lint_id, Duration::from_secs(30)).unwrap();
    assert_eq!(lint.state, JobState::Done);
    assert!(!lint.result.unwrap().clean, "unflushed store lints dirty");

    // A resubmission of the same spec is served warm and byte-identical.
    let again_id = c
        .submit_retry(spec(JobKind::Fix), Duration::from_secs(5))
        .unwrap();
    let again = c.wait(&again_id, Duration::from_secs(30)).unwrap();
    let again_result = again.result.unwrap();
    assert!(
        again_result.cached,
        "identical spec must hit the result cache"
    );
    assert_eq!(again_result.output, fix_result.output);

    // Health and live metrics answer mid-flight.
    let h = c.health().unwrap();
    assert!(h.ok && !h.draining);
    assert_eq!(h.done, 3);
    assert!(h.cache_hits > 0);
    let metrics = c.metrics().unwrap();
    assert!(metrics.contains("serve.jobs.submitted"), "{metrics}");

    // Unknown ids are structured errors, not hangs.
    let err = c.status("job-999").unwrap_err();
    assert!(err.contains("unknown job"), "{err}");

    // Graceful shutdown: drain, then the socket disappears.
    c.shutdown().unwrap();
    let report = server.join().unwrap().unwrap();
    assert_eq!(report.done, 3);
    assert_eq!(report.failed, 0);
    assert!(!socket.exists(), "a drained daemon removes its socket");
}

#[test]
fn full_queue_answers_busy_and_canceled_jobs_never_run() {
    let dir = tmp("backpressure");
    let socket = dir.join("hippod.sock");
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: None,
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });
    let mut c = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();

    // One slow-ish job occupies the worker; the queue holds one more; the
    // third gets explicit backpressure.
    let first = c
        .submit_retry(spec(JobKind::Fix), Duration::from_secs(5))
        .unwrap();
    let mut queued = None;
    let mut saw_busy = false;
    for _ in 0..200 {
        match c.submit(spec(JobKind::Explore)).unwrap() {
            Submitted::Accepted(id) if queued.is_none() => queued = Some(id),
            Submitted::Accepted(id) => {
                // Worker already drained the queue; cancel and keep probing.
                let _ = c.cancel(&id);
            }
            Submitted::Busy(ms) => {
                assert!(ms > 0, "retry hint must be positive");
                saw_busy = true;
                break;
            }
        }
    }
    assert!(saw_busy, "a full queue must answer Busy with a retry hint");

    // Cancel the queued job: it goes terminal without running.
    if let Some(id) = &queued {
        let view = c.cancel(id).unwrap();
        if view.state == JobState::Canceled {
            assert!(view.result.is_none());
        } // else the worker won the race and ran it — also legal.
    }
    c.wait(&first, Duration::from_secs(30)).unwrap();
    c.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn injected_worker_fault_fails_one_job_and_spares_its_siblings() {
    let dir = tmp("fault");
    let socket = dir.join("hippod.sock");
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: Some(dir.join("jobs.journal")),
        workers: 2,
        fault: Some(pmfault::FaultPlan::single(
            pmfault::FaultSite::DaemonWorker,
            pmfault::Trigger::Nth(0),
            pmfault::FaultKind::WorkerPanic,
        )),
        ..ServerConfig::default()
    });
    let mut c = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
    let ids: Vec<String> = (0..3)
        .map(|i| {
            let mut s = spec(JobKind::Fix);
            s.seed = i; // distinct specs so results are not cache-shared
            c.submit_retry(s, Duration::from_secs(5)).unwrap()
        })
        .collect();
    let views: Vec<_> = ids
        .iter()
        .map(|id| c.wait(id, Duration::from_secs(60)).unwrap())
        .collect();
    let failed: Vec<_> = views
        .iter()
        .filter(|v| v.state == JobState::Failed)
        .collect();
    let done: Vec<_> = views.iter().filter(|v| v.state == JobState::Done).collect();
    assert_eq!(failed.len(), 1, "exactly the injected occurrence fails");
    assert!(
        failed[0]
            .error
            .as_deref()
            .unwrap_or("")
            .contains("injected"),
        "{:?}",
        failed[0].error
    );
    assert_eq!(done.len(), 2, "sibling jobs are unharmed");
    let h = c.health().unwrap();
    assert!(h.ok, "the daemon itself stays healthy");
    c.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn second_daemon_on_the_same_journal_is_refused_with_the_holder_pid() {
    let dir = tmp("second");
    let socket = dir.join("hippod.sock");
    let journal = dir.join("jobs.journal");
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: Some(journal.clone()),
        ..ServerConfig::default()
    });
    let mut c = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
    let err = hippod::serve(ServerConfig {
        socket: dir.join("other.sock"),
        journal: Some(journal),
        ..ServerConfig::default()
    })
    .unwrap_err();
    assert!(err.contains("held by pid"), "{err}");
    assert!(err.contains(&std::process::id().to_string()), "{err}");
    c.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn draining_daemon_refuses_new_submissions_but_finishes_queued_work() {
    let dir = tmp("drain");
    let socket = dir.join("hippod.sock");
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: Some(dir.join("jobs.journal")),
        workers: 1,
        ..ServerConfig::default()
    });
    let mut c = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
    let id = c
        .submit_retry(spec(JobKind::Fix), Duration::from_secs(5))
        .unwrap();
    c.shutdown().unwrap();
    let err = c.submit(spec(JobKind::Lint)).unwrap_err();
    assert!(err.contains("draining"), "{err}");
    // The in-flight job still runs to its journaled conclusion.
    let view = c.wait(&id, Duration::from_secs(30));
    // The daemon may exit between polls once the job settles; both a clean
    // wait and a dropped connection after Done are acceptable here. The
    // authoritative check is the server's exit report.
    drop(view);
    let report = server.join().unwrap().unwrap();
    assert_eq!(report.done, 1);
    assert_eq!(report.failed, 0);
}
