//! Campaign-scheduler end-to-end tests: lease-based shard execution on a
//! real daemon, chaos archetypes, poison-shard quarantine, journal
//! compaction, and the fenced-submit backpressure contract.

use hippod::journal::{append_rival_epoch, read_events, JobEvent};
use hippod::proto::{Request, Response};
use hippod::{Client, JobKind, JobSpec, JobState, ServerConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// An explore workload with several independent persist points, so a
/// 4-shard campaign gives every shard real frontiers to check.
const MULTI: &str = r#"
    fn main() {
        var p: ptr = pmem_map(9, 4096);
        store8(p, 0, 1);
        clwb(p + 0);
        sfence();
        store8(p, 64, 2);
        clwb(p + 64);
        sfence();
        store8(p, 128, 3);
        clwb(p + 128);
        store8(p, 192, 4);
        print(load8(p, 0) + load8(p, 64));
        print(load8(p, 128) + load8(p, 192));
    }
"#;

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hippod-shard-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn sharded_spec(shards: u64) -> JobSpec {
    let mut s = JobSpec::new(
        JobKind::Explore,
        vec![("multi.pmc".to_string(), MULTI.to_string())],
    );
    s.shards = shards;
    s
}

fn start(config: ServerConfig) -> std::thread::JoinHandle<Result<hippod::ServeReport, String>> {
    std::thread::spawn(move || hippod::serve(config))
}

fn run_local_reference(shards: u64) -> hippod::JobResult {
    hippod::shard::run_local(
        &sharded_spec(shards),
        &hippocrates::WarmCache::enabled(),
        &pmobs::Obs::default(),
    )
    .unwrap()
}

#[test]
fn fault_free_campaign_is_byte_identical_to_sequential_run() {
    let reference = run_local_reference(4);
    assert!(
        reference.output.contains("== shard 0/4 =="),
        "{}",
        reference.output
    );
    let dir = tmp("faultfree");
    let socket = dir.join("hippod.sock");
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: Some(dir.join("jobs.journal")),
        workers: 3,
        obs: pmobs::Obs::enabled(),
        ..ServerConfig::default()
    });
    let mut c = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
    let id = c
        .submit_retry(sharded_spec(4), Duration::from_secs(5))
        .unwrap();
    let view = c.wait(&id, Duration::from_secs(60)).unwrap();
    assert_eq!(view.state, JobState::Done);
    let result = view.result.unwrap();
    assert_eq!(
        result.output, reference.output,
        "a 3-worker campaign must merge the exact bytes of the sequential run"
    );
    assert_eq!(result.clean, reference.clean);
    assert!(result.summary.starts_with("campaign: 4 shard(s) merged"));

    // An identical resubmission hits the whole-result cache.
    let again = c
        .submit_retry(sharded_spec(4), Duration::from_secs(5))
        .unwrap();
    let again = c.wait(&again, Duration::from_secs(60)).unwrap();
    let again = again.result.unwrap();
    assert!(again.cached, "settled campaigns are cached by digest");
    assert_eq!(again.output, reference.output);

    c.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

// The four chaos archetypes, driven through the same runner the CLI
// chaos gate uses: worker kills mid-shard (two of them), the
// lease-expiry storm, the double-primary epoch contest, and the
// reaper-vs-finisher commit race. Each must heal to byte identity with
// a journaled degradation trail.

#[test]
fn chaos_double_worker_kill_heals_byte_identically() {
    let line = hippod::chaos::campaign_seed(14, "multi.pmc", MULTI, &pmobs::Obs::enabled())
        .expect("worker-kill archetype must heal");
    assert!(line.contains("byte-identical"), "{line}");
}

#[test]
fn chaos_lease_expiry_storm_heals_byte_identically() {
    let line = hippod::chaos::campaign_seed(15, "multi.pmc", MULTI, &pmobs::Obs::enabled())
        .expect("lease-storm archetype must heal");
    assert!(line.contains("byte-identical"), "{line}");
}

#[test]
fn chaos_epoch_contest_fails_over_byte_identically() {
    let line = hippod::chaos::campaign_seed(16, "multi.pmc", MULTI, &pmobs::Obs::enabled())
        .expect("epoch-contest archetype must heal");
    assert!(line.contains("byte-identical"), "{line}");
}

#[test]
fn chaos_commit_race_heals_byte_identically() {
    let line = hippod::chaos::campaign_seed(17, "multi.pmc", MULTI, &pmobs::Obs::enabled())
        .expect("commit-race archetype must heal");
    assert!(line.contains("byte-identical"), "{line}");
}

#[test]
fn poison_shard_is_quarantined_with_a_structured_trail() {
    let dir = tmp("poison");
    let socket = dir.join("hippod.sock");
    let journal = dir.join("jobs.journal");
    // Every attempt of every shard dies right after taking its lease: the
    // retry budget runs dry and the scheduler must quarantine, finish the
    // campaign degraded, and leave the whole story in the journal.
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: Some(journal.clone()),
        workers: 2,
        lease_ttl_ms: 50,
        lease_retries: 1,
        fault: Some(pmfault::FaultPlan::single(
            pmfault::FaultSite::ShardWorker,
            pmfault::Trigger::Always,
            pmfault::FaultKind::WorkerKill,
        )),
        obs: pmobs::Obs::enabled(),
        ..ServerConfig::default()
    });
    let mut c = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
    let id = c
        .submit_retry(sharded_spec(2), Duration::from_secs(5))
        .unwrap();
    let view = c.wait(&id, Duration::from_secs(60)).unwrap();
    assert_eq!(
        view.state,
        JobState::Done,
        "a fully poisoned campaign still settles (degraded), it does not hang: {:?}",
        view.error
    );
    let result = view.result.unwrap();
    assert!(!result.clean, "quarantine dirties the campaign");
    assert_eq!(
        result.output, "== shard 0/2 quarantined ==\n== shard 1/2 quarantined ==\n",
        "quarantined shards leave deterministic placeholders"
    );
    assert!(
        result.summary.contains("2 quarantined (degraded)"),
        "{}",
        result.summary
    );
    c.shutdown().unwrap();
    server.join().unwrap().unwrap();

    // The journal carries the structured degradation trail: one reclaim
    // per failed attempt (2 shards x 2 attempts), one quarantine per
    // shard, and the terminal Finished record.
    let events = read_events(&journal).unwrap();
    let reclaims = events
        .iter()
        .filter(|e| matches!(e, JobEvent::LeaseReclaimed { .. }))
        .count();
    let quarantines = events
        .iter()
        .filter(|e| matches!(e, JobEvent::ShardQuarantined { .. }))
        .count();
    assert_eq!(reclaims, 4, "every failed attempt is journaled");
    assert_eq!(quarantines, 2, "every exhausted shard is journaled");
    assert!(events
        .iter()
        .any(|e| matches!(e, JobEvent::Finished { view } if view.id == id)));
}

#[test]
fn startup_compaction_preserves_results_byte_identically() {
    let dir = tmp("compact");
    let socket = dir.join("hippod.sock");
    let journal = dir.join("jobs.journal");

    // Round 1: run a campaign to completion and drain cleanly.
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: Some(journal.clone()),
        workers: 3,
        obs: pmobs::Obs::enabled(),
        ..ServerConfig::default()
    });
    let mut c = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
    let id = c
        .submit_retry(sharded_spec(4), Duration::from_secs(5))
        .unwrap();
    let first = c
        .wait(&id, Duration::from_secs(60))
        .unwrap()
        .result
        .unwrap();
    c.shutdown().unwrap();
    server.join().unwrap().unwrap();
    let before = read_events(&journal).unwrap().len();
    assert!(before > 3, "the campaign journaled its shard history");

    // Round 2: a low compaction threshold forces startup compaction; the
    // replayed daemon must serve the same job byte-identically.
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: Some(journal.clone()),
        workers: 2,
        compact_threshold: 2,
        obs: pmobs::Obs::enabled(),
        ..ServerConfig::default()
    });
    let mut c = match Client::connect_retry(&socket, Duration::from_secs(5)) {
        Ok(c) => c,
        Err(e) => panic!("reconnect failed ({e}); serve said: {:?}", server.join()),
    };
    let view = c.status(&id).unwrap();
    assert_eq!(view.state, JobState::Done);
    assert_eq!(
        view.result.unwrap().output,
        first.output,
        "compaction must not change a byte of any replayed result"
    );
    c.shutdown().unwrap();
    server.join().unwrap().unwrap();

    let events = read_events(&journal).unwrap();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, JobEvent::Compacted { .. })),
        "the compaction checkpoint is journaled"
    );
    assert!(
        events.iter().all(|e| !matches!(
            e,
            JobEvent::LeaseAcquired { .. } | JobEvent::LeaseRenewed { .. }
        )),
        "lease history does not survive compaction"
    );
}

#[test]
fn fenced_submit_answers_busy_then_reelection_completes_it() {
    let dir = tmp("fenced-submit");
    let socket = dir.join("hippod.sock");
    let journal = dir.join("jobs.journal");
    let server = start(ServerConfig {
        socket: socket.clone(),
        journal: Some(journal.clone()),
        workers: 2,
        obs: pmobs::Obs::enabled(),
        ..ServerConfig::default()
    });
    let mut c = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap();
    assert_eq!(c.health().unwrap().epoch, 1, "first election is epoch 1");

    // A rival primary claims the journal behind the daemon's back. The
    // next submit's write-ahead append is fenced: the client must get a
    // retryable Busy — never an Accepted that silently went nowhere.
    append_rival_epoch(&journal, 99).unwrap();
    let spec = JobSpec::new(
        JobKind::Lint,
        vec![("multi.pmc".to_string(), MULTI.to_string())],
    );
    match c.request(Request::Submit { spec: spec.clone() }).unwrap() {
        Response::Busy { retry_after_ms } => assert!(retry_after_ms > 0),
        other => panic!("fenced submit must answer Busy, got {other:?}"),
    }

    // The deposed daemon demotes, re-contends, and (as the only
    // contender) wins a fresh epoch above the rival's; a retried submit
    // then completes normally.
    let deadline = Instant::now() + Duration::from_secs(30);
    let id = loop {
        assert!(Instant::now() < deadline, "re-election never happened");
        match c.request(Request::Submit { spec: spec.clone() }) {
            Ok(Response::Accepted { id }) => break id,
            // Busy (fenced window), standby refusal, or a dropped
            // connection while demoting: reconnect and retry.
            Ok(_) => {}
            Err(_) => c = Client::connect_retry(&socket, Duration::from_secs(5)).unwrap(),
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    let view = c.wait(&id, Duration::from_secs(60)).unwrap();
    assert_eq!(view.state, JobState::Done);
    assert!(
        c.health().unwrap().epoch >= 100,
        "the re-elected epoch fences the rival's 99"
    );
    c.shutdown().unwrap();
    server.join().unwrap().unwrap();

    // Audit: nothing was silently dropped — every journaled Submitted
    // reached a terminal state, and the fenced submit journaled nothing.
    let events = read_events(&journal).unwrap();
    let submitted: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            JobEvent::Submitted { id, .. } => Some(id.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(
        submitted,
        vec![id.clone()],
        "only the accepted submit landed"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e, JobEvent::Finished { view } if view.id == id)));
}
