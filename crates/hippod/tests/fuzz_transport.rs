//! Transport fuzzing against a live daemon.
//!
//! The contract under fuzz: a connection feeding the daemon torn,
//! oversized, or garbage frames gets a structured error reply or a clean
//! close — never a panic, a wedged handler, or a poisoned daemon — and
//! chunked uploads reassemble byte-identically at every chunk size and
//! every UTF-8 boundary.

use hippod::proto::{write_frame, RequestFrame};
use hippod::{Client, JobKind, JobSpec, JobState, Request, ServerConfig, MAX_FRAME};
use proptest::prelude::*;
use std::io::{Read, Write as _};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

/// One shared daemon for every fuzz case. Short I/O and idle deadlines so
/// hostile connections resolve fast; a generous connection cap so cases
/// are never shed.
fn daemon() -> &'static PathBuf {
    static SOCKET: OnceLock<PathBuf> = OnceLock::new();
    SOCKET.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("hippod-fuzz-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("hippod.sock");
        let config = ServerConfig {
            socket: socket.clone(),
            workers: 2,
            max_conns: 256,
            io_timeout: Duration::from_millis(250),
            idle_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        };
        std::thread::spawn(move || hippod::serve(config));
        let mut c = Client::connect_retry(&socket, Duration::from_secs(10)).unwrap();
        c.ping().unwrap();
        socket
    })
}

/// A hostile byte stream: what a broken or adversarial peer might write.
#[derive(Debug, Clone)]
enum Attack {
    /// Raw random bytes — whatever length prefix they happen to spell.
    Garbage(Vec<u8>),
    /// A length prefix past `MAX_FRAME`, then some bytes.
    Oversized(u32, Vec<u8>),
    /// An honest prefix declaring more payload than is ever sent.
    Torn(u32, Vec<u8>),
    /// A well-formed `Ping`, then garbage on the same connection.
    ValidThenGarbage(Vec<u8>),
}

fn attack_strategy() -> impl Strategy<Value = Attack> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 1..128).prop_map(Attack::Garbage),
        (
            (MAX_FRAME + 1)..u32::MAX,
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(len, body)| Attack::Oversized(len, body)),
        (1u32..4096, proptest::collection::vec(any::<u8>(), 0..32)).prop_map(
            |(declared, mut body)| {
                body.truncate(declared as usize - 1);
                Attack::Torn(declared, body)
            }
        ),
        proptest::collection::vec(any::<u8>(), 1..64).prop_map(Attack::ValidThenGarbage),
    ]
}

/// Feeds one attack to the daemon raw and insists the connection resolves:
/// the daemon may reply (an error frame, or `Pong` then an error) and must
/// then close. A read timeout here is a wedged handler — the exact failure
/// this suite exists to catch.
fn run_attack(attack: &Attack) -> Result<(), String> {
    let mut s = UnixStream::connect(daemon()).map_err(|e| e.to_string())?;
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
    // The daemon may error-and-close mid-write; a clean close surfaces as
    // a write error here, which is exactly the contract — ignore it.
    let write = (|| -> std::io::Result<()> {
        match attack {
            Attack::Garbage(bytes) => s.write_all(bytes),
            Attack::Oversized(len, body) => {
                s.write_all(&len.to_be_bytes())?;
                s.write_all(body)
            }
            Attack::Torn(declared, body) => {
                s.write_all(&declared.to_be_bytes())?;
                s.write_all(body)
            }
            Attack::ValidThenGarbage(bytes) => {
                let mut frame = vec![];
                write_frame(&mut frame, &RequestFrame::new(Request::Ping)).unwrap();
                s.write_all(&frame)?;
                s.write_all(bytes)
            }
        }
    })();
    let _ = write;
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut total = 0usize;
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                total += n;
                if total > MAX_FRAME as usize {
                    return Err("daemon streamed absurd bytes at an attacker".to_string());
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err("handler wedged: no reply and no close within 10s".to_string());
            }
            // A reset is still a close.
            Err(_) => break,
        }
    }
    Ok(())
}

/// A valid module padded with a line comment of arbitrary (multi-byte)
/// UTF-8, so chunk splits land on every kind of character boundary.
fn padded_source(pad: &str) -> String {
    format!(
        "fn main() {{\n    var p: ptr = pmem_map(0, 4096);\n    store8(p, 0, 7);\n    print(load8(p, 0));\n}}\n// {pad}\n"
    )
}

const PALETTE: [char; 8] = ['a', 'é', 'ß', '→', '中', '𝛼', ' ', '~'];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Torn, oversized, and garbage byte streams never panic the daemon,
    /// never wedge a handler, and never poison service for the next
    /// well-formed connection.
    fn hostile_byte_streams_never_break_the_daemon(attack in attack_strategy()) {
        run_attack(&attack).unwrap_or_else(|why| panic!("{why} (attack: {attack:?})"));
        // The daemon still serves a fresh, polite connection.
        let mut c = Client::connect_retry(daemon(), Duration::from_secs(5)).unwrap();
        c.set_io_timeout(Some(Duration::from_secs(10))).unwrap();
        c.ping().unwrap();
        let h = c.health().unwrap();
        prop_assert!(h.ok, "daemon unhealthy after {attack:?}");
    }
}

/// One well-formed `SourceChunk` frame, checksummed the way an honest
/// client would.
fn chunk_frame(name: &str, seq: u64, data: &str, last: bool) -> Vec<u8> {
    let mut frame = vec![];
    write_frame(
        &mut frame,
        &RequestFrame::new(Request::SourceChunk {
            name: name.to_string(),
            seq,
            data: data.to_string(),
            checksum: pmir::snapshot::fnv1a(data.as_bytes()),
            last,
        }),
    )
    .unwrap();
    frame
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A peer that starts an honest chunked upload and dies mid-stream —
    /// after any number of staged chunks, optionally mid-frame — leaks
    /// neither its connection slot nor its staged upload budget: the
    /// daemon still serves a polite chunked upload afterwards.
    fn mid_chunk_connection_drops_leak_no_budget_or_slots(
        staged in 1u64..6,
        torn_tail in proptest::option::of(1usize..32),
    ) {
        {
            let mut s = UnixStream::connect(daemon()).unwrap();
            s.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
            for seq in 0..staged {
                // Never `last`: the file stays staged, charged against the
                // connection's upload budget, when the peer dies.
                let _ = s.write_all(&chunk_frame("doomed.pmc", seq, "store8(p, 0, 7);\n", false));
            }
            if let Some(cut) = torn_tail {
                // Die mid-frame: a declared length with `cut` bytes missing.
                let frame = chunk_frame("doomed.pmc", staged, "store8(p, 8, 9);\n", false);
                let _ = s.write_all(&frame[..frame.len().saturating_sub(cut)]);
            }
            // Dropped without Submit: the daemon must discard the staging.
        }

        // The staged-but-abandoned bytes are freed with the connection: a
        // fresh chunked submission still fits the budget and completes.
        let timeout = Duration::from_secs(30);
        let mut c = Client::connect_retry(daemon(), Duration::from_secs(5)).unwrap();
        c.set_io_timeout(Some(timeout)).unwrap();
        c.set_chunk_threshold(16);
        let spec = JobSpec::new(
            JobKind::Lint,
            vec![("fine.pmc".to_string(), padded_source("after a mid-chunk death"))],
        );
        let id = c.submit_retry(spec, timeout).unwrap();
        let view = c.wait(&id, timeout).unwrap();
        prop_assert_eq!(view.state, JobState::Done, "daemon degraded after a mid-chunk drop");
        prop_assert!(c.health().unwrap().ok);
    }
}

/// Heartbeat loss: connections that go silent mid-frame are reaped by the
/// I/O deadline and give their slots back — the live-connection gauge
/// returns to its baseline instead of ratcheting up.
#[test]
fn silent_connections_are_reaped_and_free_their_slots() {
    let mut c = Client::connect_retry(daemon(), Duration::from_secs(5)).unwrap();
    c.set_io_timeout(Some(Duration::from_secs(10))).unwrap();
    let baseline = c.health().unwrap().connections;

    let silent: Vec<UnixStream> = (0..8)
        .map(|_| {
            let mut s = UnixStream::connect(daemon()).unwrap();
            // Half a length prefix, then silence: the handler is stuck
            // mid-read until its I/O deadline fires.
            s.write_all(&[0x00, 0x00]).unwrap();
            s
        })
        .collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let live = c.health().unwrap().connections;
        if live <= baseline {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "silent connections still hold {live} slot(s) (baseline {baseline})"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    drop(silent);
    c.ping().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chunked upload round-trip: at any chunk size and any UTF-8 padding,
    /// the reassembled server-side spec is byte-identical to the sender's —
    /// proven end-to-end by the follow-up inline submission of the same
    /// spec hitting the result cache with identical output.
    fn chunked_upload_reassembles_byte_identically(
        picks in proptest::collection::vec(0usize..PALETTE.len(), 1..512),
        threshold in 1usize..96,
    ) {
        let pad: String = picks.iter().map(|&i| PALETTE[i]).collect();
        let spec = JobSpec::new(
            JobKind::Lint,
            vec![("padded.pmc".to_string(), padded_source(&pad))],
        );
        let timeout = Duration::from_secs(30);

        let mut chunked = Client::connect_retry(daemon(), Duration::from_secs(5)).unwrap();
        chunked.set_io_timeout(Some(timeout)).unwrap();
        chunked.set_chunk_threshold(threshold);
        let id = chunked.submit_retry(spec.clone(), timeout).unwrap();
        let first = chunked.wait(&id, timeout).unwrap();
        prop_assert_eq!(first.state, JobState::Done, "chunked job failed");
        let first = first.result.unwrap();

        let mut inline = Client::connect_retry(daemon(), Duration::from_secs(5)).unwrap();
        inline.set_io_timeout(Some(timeout)).unwrap();
        let id2 = inline.submit_retry(spec, timeout).unwrap();
        let second = inline.wait(&id2, timeout).unwrap();
        prop_assert_eq!(second.state, JobState::Done, "inline job failed");
        let second = second.result.unwrap();
        prop_assert!(
            second.cached,
            "inline resubmission missed the cache: the reassembled sources differ"
        );
        prop_assert_eq!(&first.output, &second.output);
    }
}
