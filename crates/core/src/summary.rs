//! Repair reporting: what was fixed and how (feeds the paper's Fig. 3
//! accuracy comparison and §6.3 fix-mix statistics).

use pmcheck::CheckReport;
use pmtrace::TraceLoc;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of an applied fix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FixKind {
    /// Intraprocedural flush insertion (§4.2.2).
    IntraFlush,
    /// Intraprocedural fence insertion (§4.2.1).
    IntraFence,
    /// Intraprocedural flush + fence (§4.2.3).
    IntraFlushFence,
    /// Persistent-subprogram transformation (§4.2.4).
    Interproc {
        /// Frames above the store the fix landed.
        levels: usize,
        /// Name of the persistent clone rooting the subprogram.
        root_clone: String,
    },
}

impl FixKind {
    /// Whether the fix is interprocedural.
    pub fn is_interprocedural(&self) -> bool {
        matches!(self, FixKind::Interproc { .. })
    }
}

impl fmt::Display for FixKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixKind::IntraFlush => write!(f, "intraprocedural flush"),
            FixKind::IntraFence => write!(f, "intraprocedural fence"),
            FixKind::IntraFlushFence => write!(f, "intraprocedural flush+fence"),
            FixKind::Interproc { levels, root_clone } => {
                write!(
                    f,
                    "interprocedural flush+fence ({levels} level(s) up, via {root_clone})"
                )
            }
        }
    }
}

/// One applied fix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppliedFix {
    /// The fix shape.
    pub kind: FixKind,
    /// Function containing the offending store.
    pub store_function: String,
    /// Source location of the store, when known.
    pub store_loc: Option<TraceLoc>,
    /// The bug kinds this fix addresses (post-reduction, possibly several).
    pub bug_kinds: Vec<String>,
}

impl fmt::Display for AppliedFix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} for store in `{}`", self.kind, self.store_function)?;
        if let Some(l) = &self.store_loc {
            write!(f, " ({l})")?;
        }
        Ok(())
    }
}

/// The result of one repair pass ([`crate::Hippocrates::repair_once`]).
#[derive(Debug, Clone, Default)]
pub struct RepairSummary {
    /// Applied fixes, in application order.
    pub fixes: Vec<AppliedFix>,
    /// Persistent clones created during this pass.
    pub clones_created: usize,
}

impl RepairSummary {
    /// Count of interprocedural fixes.
    pub fn interprocedural_count(&self) -> usize {
        self.fixes
            .iter()
            .filter(|f| f.kind.is_interprocedural())
            .count()
    }
}

/// A bug source (or the trace ingest path) that failed detection and was
/// given up on after retries: the engine proceeded without it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Degradation {
    /// Which source degraded: `"dynamic"`, `"static"`, `"exploration"`, or
    /// `"trace"` (the serialize→parse roundtrip).
    pub source: String,
    /// The last structured failure observed before giving up.
    pub reason: String,
    /// How many retries were spent before degrading.
    pub retries: u32,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} source degraded after {} retr{}: {}",
            self.source,
            self.retries,
            if self.retries == 1 { "y" } else { "ies" },
            self.reason
        )
    }
}

/// A fix that was applied inside a round, failed the round's commit
/// criterion, and was rolled back — the quarantine ledger's unit. The round
/// is the blame granularity: every fix of a failing round is quarantined
/// together (the engine does not bisect), and quarantined target sites are
/// excluded from planning in later rounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedFix {
    /// The fix as it was applied (and then rolled back).
    pub fix: AppliedFix,
    /// The target instruction, as `function#inst` site keys — the planning
    /// exclusion keys for later rounds.
    pub targets: Vec<String>,
    /// Why the round was rejected.
    pub reason: String,
    /// Deduped bug count before the round.
    pub bugs_before: usize,
    /// Deduped bug count at the failed re-verification.
    pub bugs_after: usize,
    /// Bugs present after the round that were absent before — the "harm"
    /// the rollback undid.
    pub new_bugs: usize,
}

impl fmt::Display for QuarantinedFix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} — quarantined: {} (bugs {} -> {}, {} new)",
            self.fix, self.reason, self.bugs_before, self.bugs_after, self.new_bugs
        )
    }
}

/// What the post-repair optimizer pass did, when
/// [`crate::RepairOptions::optimize_after`] is set: committed removals and
/// the rounds it rolled back. The full per-finding detail (witnesses,
/// patches) lives in `pmredund::OptimizeOutcome`; this is the summary the
/// repair outcome carries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OptimizeStats {
    /// Redundant/coalescable flushes removed.
    pub flushes_removed: u64,
    /// Sinkable fences removed.
    pub fences_sunk: u64,
    /// Transactional optimizer rounds committed.
    pub rounds_committed: u64,
    /// Rounds rolled back byte-identically (including bisection steps).
    pub rounds_rolled_back: u64,
    /// Findings that failed re-verification and were quarantined.
    pub quarantined: u64,
    /// Estimated cycles saved per pass, under the calibrated cost model.
    pub est_cycles_saved: u64,
}

impl OptimizeStats {
    /// Summarizes a full optimizer outcome.
    pub fn from_outcome(out: &pmredund::OptimizeOutcome) -> Self {
        OptimizeStats {
            flushes_removed: out.flushes_removed(),
            fences_sunk: out.fences_sunk(),
            rounds_committed: out.rounds_committed,
            rounds_rolled_back: out.rounds_rolled_back,
            quarantined: out.quarantined.len() as u64,
            est_cycles_saved: out.est_cycles_saved,
        }
    }
}

impl fmt::Display for OptimizeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "removed {} flush(es), sank {} fence(s), ~{} cycles/pass saved              ({} round(s) committed, {} rolled back, {} quarantined)",
            self.flushes_removed,
            self.fences_sunk,
            self.est_cycles_saved,
            self.rounds_committed,
            self.rounds_rolled_back,
            self.quarantined
        )
    }
}

/// The result of the full detect→fix→verify loop
/// ([`crate::Hippocrates::repair_until_clean`]).
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// Whether the final verification pass was clean.
    pub clean: bool,
    /// All fixes applied across iterations.
    pub fixes: Vec<AppliedFix>,
    /// Number of detect→fix iterations executed.
    pub iterations: u32,
    /// The final durability report.
    pub final_report: CheckReport,
    /// Total persistent clones created.
    pub clones_created: usize,
    /// Sources that failed and were proceeded without. Empty means every
    /// configured source contributed to every iteration.
    pub degraded: Vec<Degradation>,
    /// Structured diagnostics collected along the way: injected faults
    /// observed by the simulator, faulted exploration candidates, retries
    /// that eventually succeeded. Empty on a healthy run.
    pub diagnostics: Vec<String>,
    /// The quarantine ledger: fixes applied in rounds that failed the
    /// commit criterion and were rolled back byte-identically. None of
    /// these appear in the committed module.
    pub quarantined: Vec<QuarantinedFix>,
    /// Rounds committed across the run, including replayed ones.
    pub committed_rounds: u32,
    /// Rounds replayed idempotently from the write-ahead journal (always
    /// `<= committed_rounds`; 0 unless `--resume` found committed work).
    pub replayed_rounds: u32,
    /// What the post-repair optimizer did (`None` unless
    /// [`crate::RepairOptions::optimize_after`] ran).
    pub optimized: Option<OptimizeStats>,
}

impl RepairOutcome {
    /// Whether any configured bug source had to be abandoned.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }

    /// Count of interprocedural fixes across all iterations.
    pub fn interprocedural_count(&self) -> usize {
        self.fixes
            .iter()
            .filter(|f| f.kind.is_interprocedural())
            .count()
    }

    /// Distribution of interprocedural hoist levels (level → count), for the
    /// §6.3 statistic ("10 are implemented 1 function above … 2 are 2
    /// functions above").
    pub fn hoist_level_histogram(&self) -> std::collections::BTreeMap<usize, usize> {
        let mut h = std::collections::BTreeMap::new();
        for f in &self.fixes {
            if let FixKind::Interproc { levels, .. } = &f.kind {
                *h.entry(*levels).or_insert(0) += 1;
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_counts() {
        let fix = AppliedFix {
            kind: FixKind::Interproc {
                levels: 2,
                root_clone: "modify_PM".into(),
            },
            store_function: "update".into(),
            store_loc: None,
            bug_kinds: vec!["missing-flush&fence".into()],
        };
        assert!(fix.to_string().contains("modify_PM"));
        let summary = RepairSummary {
            fixes: vec![
                fix.clone(),
                AppliedFix {
                    kind: FixKind::IntraFlush,
                    store_function: "f".into(),
                    store_loc: None,
                    bug_kinds: vec![],
                },
            ],
            clones_created: 2,
        };
        assert_eq!(summary.interprocedural_count(), 1);
        let outcome = RepairOutcome {
            clean: true,
            fixes: summary.fixes,
            iterations: 1,
            final_report: CheckReport::default(),
            clones_created: 2,
            degraded: vec![],
            diagnostics: vec![],
            quarantined: vec![],
            committed_rounds: 1,
            replayed_rounds: 0,
            optimized: None,
        };
        assert_eq!(outcome.hoist_level_histogram().get(&2), Some(&1));
        assert!(!outcome.is_degraded());
    }

    #[test]
    fn quarantine_display_names_reason_and_delta() {
        let q = QuarantinedFix {
            fix: AppliedFix {
                kind: FixKind::IntraFlush,
                store_function: "update".into(),
                store_loc: None,
                bug_kinds: vec!["missing-flush".into()],
            },
            targets: vec!["update#3".into()],
            reason: "re-verification reported a new bug".into(),
            bugs_before: 2,
            bugs_after: 3,
            new_bugs: 1,
        };
        let text = q.to_string();
        assert!(text.contains("quarantined"), "{text}");
        assert!(text.contains("2 -> 3"), "{text}");
        assert!(text.contains("1 new"), "{text}");
    }

    #[test]
    fn degradation_display_names_source_and_retries() {
        let d = Degradation {
            source: "dynamic".into(),
            reason: "verification run failed: fuel exhausted".into(),
            retries: 2,
        };
        let text = d.to_string();
        assert!(text.contains("dynamic"), "{text}");
        assert!(text.contains("2 retries"), "{text}");
        assert!(text.contains("fuel exhausted"), "{text}");
    }
}
