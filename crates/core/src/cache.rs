//! Shared warm caches keyed by module snapshot digest.
//!
//! A long-running server (`hippod`) sees the same modules over and over:
//! repeat submissions of an unchanged app, and — inside a single repair —
//! detection rounds that revisit a module state the previous iteration
//! already analyzed. The cold work worth skipping is exactly the pure
//! functions of the module text:
//!
//! - **compiled modules** — pmlang/pmir decoding, keyed by a digest of the
//!   submitted source set ([`WarmCache::module`]);
//! - **alias analysis** — [`pmalias::AliasAnalysis::analyze`] fixpoints,
//!   keyed by [`pmir::snapshot::digest`] ([`WarmCache::alias`]);
//! - **static function-summary reports** — `pmstatic` whole-module checks,
//!   keyed by module digest plus entry ([`WarmCache::static_report`]).
//!
//! All three are deterministic in their key, so a hit is *exactly* the
//! result the cold path would produce — warm jobs stay byte-identical to
//! cold ones. The handle follows the [`pmobs::Obs`] idiom: the default is
//! disabled and costs one `Option` branch per call site (the closure runs
//! directly, nothing is keyed or stored); [`WarmCache::enabled`] carries a
//! shared, thread-safe store that clones into every worker for free.

use pmalias::AliasAnalysis;
use pmcheck::CheckReport;
use pmir::Module;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct Inner {
    modules: Mutex<HashMap<u64, Arc<Module>>>,
    alias: Mutex<HashMap<u64, Arc<AliasAnalysis>>>,
    statics: Mutex<HashMap<(u64, String), Arc<CheckReport>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A shared warm cache. Cloning is an `Arc` bump; clones share one store.
/// `WarmCache::default()` is the disabled handle: every lookup computes
/// directly and stores nothing.
#[derive(Debug, Clone, Default)]
pub struct WarmCache(Option<Arc<Inner>>);

impl WarmCache {
    /// A handle backed by a fresh shared store.
    pub fn enabled() -> WarmCache {
        WarmCache(Some(Arc::new(Inner::default())))
    }

    /// The explicit spelling of `WarmCache::default()`.
    pub fn disabled() -> WarmCache {
        WarmCache(None)
    }

    /// Whether this handle stores anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Digest for a submitted source set — the module-cache key. Order
    /// matters (sources link in order), so it is part of the key.
    pub fn source_key(sources: &[(String, String)]) -> u64 {
        let mut text = String::new();
        for (name, body) in sources {
            text.push_str(name);
            text.push('\0');
            text.push_str(body);
            text.push('\0');
        }
        pmir::snapshot::fnv1a(text.as_bytes())
    }

    /// The decoded module for `key`, compiling on a miss.
    ///
    /// # Errors
    ///
    /// Propagates `compile`'s error; failures are never cached (the next
    /// submission with the same sources retries the compile).
    pub fn module(
        &self,
        key: u64,
        obs: &pmobs::Obs,
        compile: impl FnOnce() -> Result<Module, String>,
    ) -> Result<Arc<Module>, String> {
        let Some(inner) = &self.0 else {
            return compile().map(Arc::new);
        };
        if let Some(m) = inner
            .modules
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            inner.hits.fetch_add(1, Ordering::Relaxed);
            obs.add("cache.module.hit", 1);
            return Ok(m.clone());
        }
        inner.misses.fetch_add(1, Ordering::Relaxed);
        obs.add("cache.module.miss", 1);
        let m = Arc::new(compile()?);
        inner
            .modules
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, m.clone());
        Ok(m)
    }

    /// The alias analysis of `m`, keyed by its snapshot digest.
    pub fn alias(&self, m: &Module, obs: &pmobs::Obs) -> Arc<AliasAnalysis> {
        let Some(inner) = &self.0 else {
            return Arc::new(AliasAnalysis::analyze(m));
        };
        let key = pmir::snapshot::digest(m);
        if let Some(aa) = inner
            .alias
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            inner.hits.fetch_add(1, Ordering::Relaxed);
            obs.add("cache.alias.hit", 1);
            return aa.clone();
        }
        inner.misses.fetch_add(1, Ordering::Relaxed);
        obs.add("cache.alias.miss", 1);
        let aa = Arc::new(AliasAnalysis::analyze(m));
        inner
            .alias
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, aa.clone());
        aa
    }

    /// The static persistency report for `(m, entry)`, keyed by the module
    /// snapshot digest. Only successful checks are cached: a budget-tripped
    /// or faulted attempt must not poison later runs.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error unchanged.
    pub fn static_report<E>(
        &self,
        m: &Module,
        entry: &str,
        obs: &pmobs::Obs,
        compute: impl FnOnce() -> Result<CheckReport, E>,
    ) -> Result<CheckReport, E> {
        let Some(inner) = &self.0 else {
            return compute();
        };
        let key = (pmir::snapshot::digest(m), entry.to_string());
        if let Some(r) = inner
            .statics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            inner.hits.fetch_add(1, Ordering::Relaxed);
            obs.add("cache.static.hit", 1);
            return Ok(CheckReport::clone(r));
        }
        inner.misses.fetch_add(1, Ordering::Relaxed);
        obs.add("cache.static.miss", 1);
        let r = compute()?;
        inner
            .statics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, Arc::new(r.clone()));
        Ok(r)
    }

    /// Lifetime `(hits, misses)` across all three caches. `(0, 0)` when
    /// disabled.
    pub fn stats(&self) -> (u64, u64) {
        match &self.0 {
            None => (0, 0),
            Some(inner) => (
                inner.hits.load(Ordering::Relaxed),
                inner.misses.load(Ordering::Relaxed),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "fn main() {\n    var p: ptr = pmem_map(0, 4096);\n    store8(p, 0, 7);\n    clwb(p);\n    sfence();\n}\n";

    fn module() -> Module {
        pmlang::compile_one("cache_test.pmc", SRC).unwrap()
    }

    #[test]
    fn disabled_cache_computes_every_time() {
        let cache = WarmCache::default();
        assert!(!cache.is_enabled());
        let obs = pmobs::Obs::default();
        let m = module();
        let mut calls = 0;
        for _ in 0..2 {
            cache
                .static_report(&m, "main", &obs, || {
                    calls += 1;
                    Ok::<_, String>(CheckReport::default())
                })
                .unwrap();
        }
        assert_eq!(calls, 2);
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn alias_is_cached_by_module_digest() {
        let cache = WarmCache::enabled();
        let obs = pmobs::Obs::enabled();
        let m = module();
        let a = cache.alias(&m, &obs);
        let b = cache.alias(&m, &obs);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit");
        let snap = obs.snapshot();
        assert_eq!(snap.counters["cache.alias.hit"], 1);
        assert_eq!(snap.counters["cache.alias.miss"], 1);
        // A different module state is a different key.
        let other = pmlang::compile_one(
            "cache_test.pmc",
            "fn main() {\n    var p: ptr = pmem_map(1, 4096);\n    store8(p, 0, 9);\n}\n",
        )
        .unwrap();
        let c = cache.alias(&other, &obs);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn static_reports_hit_per_entry_and_skip_recompute() {
        let cache = WarmCache::enabled();
        let obs = pmobs::Obs::default();
        let m = module();
        let mut calls = 0;
        for _ in 0..3 {
            let r = cache
                .static_report(&m, "main", &obs, || {
                    calls += 1;
                    pmstatic::check_module(&m, "main").map_err(|e| e.to_string())
                })
                .unwrap();
            assert!(r.is_clean());
        }
        assert_eq!(calls, 1, "two of three lookups must hit");
        // A different entry point is a different key.
        cache
            .static_report(&m, "other", &obs, || {
                calls += 1;
                Ok::<_, String>(CheckReport::default())
            })
            .unwrap();
        assert_eq!(calls, 2);
    }

    #[test]
    fn failed_computations_are_not_cached() {
        let cache = WarmCache::enabled();
        let obs = pmobs::Obs::default();
        let m = module();
        let mut calls = 0;
        for _ in 0..2 {
            let _ = cache.static_report(&m, "main", &obs, || {
                calls += 1;
                Err::<CheckReport, _>("budget tripped".to_string())
            });
        }
        assert_eq!(calls, 2, "errors must never be cached");
    }

    #[test]
    fn module_cache_hits_on_identical_source_sets() {
        let cache = WarmCache::enabled();
        let obs = pmobs::Obs::default();
        let sources = vec![("a.pmc".to_string(), SRC.to_string())];
        let key = WarmCache::source_key(&sources);
        let mut compiles = 0;
        for _ in 0..2 {
            cache
                .module(key, &obs, || {
                    compiles += 1;
                    pmlang::compile_one("a.pmc", SRC).map_err(|e| e.to_string())
                })
                .unwrap();
        }
        assert_eq!(compiles, 1);
        // Source order is part of the key.
        let swapped = vec![
            ("b.pmc".to_string(), "x".to_string()),
            ("a.pmc".to_string(), "y".to_string()),
        ];
        let forward = vec![
            ("a.pmc".to_string(), "y".to_string()),
            ("b.pmc".to_string(), "x".to_string()),
        ];
        assert_ne!(
            WarmCache::source_key(&swapped),
            WarmCache::source_key(&forward)
        );
    }
}
