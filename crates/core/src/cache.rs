//! Shared warm caches keyed by module snapshot digest, with an optional
//! byte-accounted LRU budget.
//!
//! A long-running server (`hippod`) sees the same modules over and over:
//! repeat submissions of an unchanged app, and — inside a single repair —
//! detection rounds that revisit a module state the previous iteration
//! already analyzed. The cold work worth skipping is exactly the pure
//! functions of the module text:
//!
//! - **compiled modules** — pmlang/pmir decoding, keyed by a digest of the
//!   submitted source set ([`WarmCache::module`]);
//! - **alias analysis** — [`pmalias::AliasAnalysis::analyze`] fixpoints,
//!   keyed by [`pmir::snapshot::digest`] ([`WarmCache::alias`]);
//! - **static function-summary reports** — `pmstatic` whole-module checks,
//!   keyed by module digest plus entry ([`WarmCache::static_report`]);
//! - **opaque result blobs** — serialized whole-job results a daemon wants
//!   bounded alongside everything else ([`WarmCache::blob`]).
//!
//! All four are deterministic in their key, so a hit is *exactly* the
//! result the cold path would produce — warm jobs stay byte-identical to
//! cold ones. The handle follows the [`pmobs::Obs`] idiom: the default is
//! disabled and costs one `Option` branch per call site (the closure runs
//! directly, nothing is keyed or stored); [`WarmCache::enabled`] carries a
//! shared, thread-safe store that clones into every worker for free.
//!
//! # The byte budget
//!
//! [`WarmCache::with_budget`] caps the store. Every entry is charged an
//! estimated footprint at insert (rendered-text length for modules and
//! reports, an object-count model for alias fixpoints, byte length for
//! blobs). Inserts go through a budget gate that evicts least-recently-used
//! entries — globally, across all four maps — until the newcomer fits, so
//! the accounted total **never** exceeds the budget, even transiently. An
//! entry that alone exceeds the whole budget is computed, returned, and not
//! stored. Evictions only ever forget — the next miss recomputes the same
//! bytes — so the do-no-harm story is untouched. `cache.bytes` (gauge) and
//! `cache.evictions` (counter) record the churn.

use pmalias::AliasAnalysis;
use pmcheck::CheckReport;
use pmir::Module;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A stored value plus its accounting: estimated footprint and the global
/// LRU tick of its last touch.
#[derive(Debug)]
struct Entry<T> {
    value: Arc<T>,
    bytes: u64,
    tick: u64,
}

/// Which map holds the current LRU victim.
enum Victim {
    Module(u64),
    Alias(u64),
    Static(u64, String),
    Blob(u64),
}

#[derive(Debug, Default)]
struct Inner {
    modules: Mutex<HashMap<u64, Entry<Module>>>,
    alias: Mutex<HashMap<u64, Entry<AliasAnalysis>>>,
    statics: Mutex<HashMap<(u64, String), Entry<CheckReport>>>,
    blobs: Mutex<HashMap<u64, Entry<String>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Accounted bytes across all maps. Only moves under `budget_gate`
    /// when a budget is set, so it can never overshoot the budget.
    bytes: AtomicU64,
    evictions: AtomicU64,
    /// Global LRU clock; every hit and insert takes a fresh tick.
    clock: AtomicU64,
    /// Serializes evict-then-insert so concurrent inserts cannot race the
    /// accounting past the budget.
    budget_gate: Mutex<()>,
    budget: Option<u64>,
}

impl Inner {
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    fn hit(&self, obs: &pmobs::Obs, counter: &str) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        obs.add(counter, 1);
    }

    fn miss(&self, obs: &pmobs::Obs, counter: &str) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs.add(counter, 1);
    }

    /// The least-recently-touched entry across every map, if any.
    fn lru_victim(&self) -> Option<(Victim, u64, u64)> {
        let mut best: Option<(Victim, u64, u64)> = None;
        let mut consider = |victim: Victim, tick: u64, bytes: u64| match &best {
            Some((_, t, _)) if *t <= tick => {}
            _ => best = Some((victim, tick, bytes)),
        };
        for (k, e) in self
            .modules
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            consider(Victim::Module(*k), e.tick, e.bytes);
        }
        for (k, e) in self.alias.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            consider(Victim::Alias(*k), e.tick, e.bytes);
        }
        for (k, e) in self
            .statics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            consider(Victim::Static(k.0, k.1.clone()), e.tick, e.bytes);
        }
        for (k, e) in self.blobs.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            consider(Victim::Blob(*k), e.tick, e.bytes);
        }
        best
    }

    fn evict(&self, victim: Victim) -> u64 {
        let freed = match victim {
            Victim::Module(k) => self
                .modules
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&k)
                .map(|e| e.bytes),
            Victim::Alias(k) => self
                .alias
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&k)
                .map(|e| e.bytes),
            Victim::Static(k, entry) => self
                .statics
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&(k, entry))
                .map(|e| e.bytes),
            Victim::Blob(k) => self
                .blobs
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&k)
                .map(|e| e.bytes),
        };
        freed.unwrap_or(0)
    }

    /// Charges `cost` bytes, evicting LRU entries first so the accounted
    /// total stays within budget. Returns false when the entry must not be
    /// stored (it alone exceeds the whole budget).
    fn admit(&self, cost: u64, obs: &pmobs::Obs) -> bool {
        let Some(budget) = self.budget else {
            self.bytes.fetch_add(cost, Ordering::Relaxed);
            obs.gauge("cache.bytes", self.bytes.load(Ordering::Relaxed) as f64);
            return true;
        };
        if cost > budget {
            // Oversized loner: computing it was the point; caching it
            // would immediately evict everything else for nothing.
            self.evictions.fetch_add(1, Ordering::Relaxed);
            obs.add("cache.evictions", 1);
            obs.add("cache.refused", 1);
            return false;
        }
        let _gate = self.budget_gate.lock().unwrap_or_else(|e| e.into_inner());
        while self.bytes.load(Ordering::Relaxed) + cost > budget {
            let Some((victim, _, _)) = self.lru_victim() else {
                break;
            };
            let freed = self.evict(victim);
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            obs.add("cache.evictions", 1);
        }
        self.bytes.fetch_add(cost, Ordering::Relaxed);
        obs.gauge("cache.bytes", self.bytes.load(Ordering::Relaxed) as f64);
        true
    }
}

/// Estimated footprint of a cached module: its rendered text plus map
/// overhead.
fn module_cost(m: &Module) -> u64 {
    pmir::display::print_module(m).len() as u64 + 64
}

/// Estimated footprint of an alias fixpoint. The fields are private to
/// pmalias, so the model is per-object: each abstract object carries a
/// points-to row, an index slot, and a signature share.
fn alias_cost(aa: &AliasAnalysis) -> u64 {
    96 * aa.object_count() as u64 + 256
}

fn report_cost(r: &CheckReport) -> u64 {
    r.render().len() as u64 + 64
}

/// A shared warm cache. Cloning is an `Arc` bump; clones share one store.
/// `WarmCache::default()` is the disabled handle: every lookup computes
/// directly and stores nothing.
#[derive(Debug, Clone, Default)]
pub struct WarmCache(Option<Arc<Inner>>);

impl WarmCache {
    /// A handle backed by a fresh shared store with no byte budget.
    pub fn enabled() -> WarmCache {
        WarmCache(Some(Arc::new(Inner::default())))
    }

    /// A handle backed by a fresh shared store that evicts least-recently
    /// used entries to keep its accounted bytes at or below `max_bytes`.
    pub fn with_budget(max_bytes: u64) -> WarmCache {
        WarmCache(Some(Arc::new(Inner {
            budget: Some(max_bytes),
            ..Inner::default()
        })))
    }

    /// The explicit spelling of `WarmCache::default()`.
    pub fn disabled() -> WarmCache {
        WarmCache(None)
    }

    /// Whether this handle stores anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The configured byte budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.0.as_ref().and_then(|i| i.budget)
    }

    /// Currently accounted bytes across all maps. `0` when disabled.
    pub fn bytes(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |i| i.bytes.load(Ordering::Relaxed))
    }

    /// Lifetime evictions (including oversized refusals). `0` when
    /// disabled or unbounded.
    pub fn evictions(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |i| i.evictions.load(Ordering::Relaxed))
    }

    /// Digest for a submitted source set — the module-cache key. Order
    /// matters (sources link in order), so it is part of the key.
    pub fn source_key(sources: &[(String, String)]) -> u64 {
        let mut text = String::new();
        for (name, body) in sources {
            text.push_str(name);
            text.push('\0');
            text.push_str(body);
            text.push('\0');
        }
        pmir::snapshot::fnv1a(text.as_bytes())
    }

    /// The decoded module for `key`, compiling on a miss.
    ///
    /// # Errors
    ///
    /// Propagates `compile`'s error; failures are never cached (the next
    /// submission with the same sources retries the compile).
    pub fn module(
        &self,
        key: u64,
        obs: &pmobs::Obs,
        compile: impl FnOnce() -> Result<Module, String>,
    ) -> Result<Arc<Module>, String> {
        let Some(inner) = &self.0 else {
            return compile().map(Arc::new);
        };
        if let Some(e) = inner
            .modules
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_mut(&key)
        {
            e.tick = inner.tick();
            inner.hit(obs, "cache.module.hit");
            return Ok(e.value.clone());
        }
        inner.miss(obs, "cache.module.miss");
        let m = Arc::new(compile()?);
        if inner.admit(module_cost(&m), obs) {
            inner
                .modules
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(
                    key,
                    Entry {
                        value: m.clone(),
                        bytes: module_cost(&m),
                        tick: inner.tick(),
                    },
                );
        }
        Ok(m)
    }

    /// The alias analysis of `m`, keyed by its snapshot digest.
    pub fn alias(&self, m: &Module, obs: &pmobs::Obs) -> Arc<AliasAnalysis> {
        let Some(inner) = &self.0 else {
            return Arc::new(AliasAnalysis::analyze(m));
        };
        let key = pmir::snapshot::digest(m);
        if let Some(e) = inner
            .alias
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_mut(&key)
        {
            e.tick = inner.tick();
            inner.hit(obs, "cache.alias.hit");
            return e.value.clone();
        }
        inner.miss(obs, "cache.alias.miss");
        let aa = Arc::new(AliasAnalysis::analyze(m));
        if inner.admit(alias_cost(&aa), obs) {
            inner
                .alias
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(
                    key,
                    Entry {
                        value: aa.clone(),
                        bytes: alias_cost(&aa),
                        tick: inner.tick(),
                    },
                );
        }
        aa
    }

    /// The static persistency report for `(m, entry)`, keyed by the module
    /// snapshot digest. Only successful checks are cached: a budget-tripped
    /// or faulted attempt must not poison later runs.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error unchanged.
    pub fn static_report<E>(
        &self,
        m: &Module,
        entry: &str,
        obs: &pmobs::Obs,
        compute: impl FnOnce() -> Result<CheckReport, E>,
    ) -> Result<CheckReport, E> {
        let Some(inner) = &self.0 else {
            return compute();
        };
        let key = (pmir::snapshot::digest(m), entry.to_string());
        if let Some(e) = inner
            .statics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_mut(&key)
        {
            e.tick = inner.tick();
            inner.hit(obs, "cache.static.hit");
            return Ok(CheckReport::clone(&e.value));
        }
        inner.miss(obs, "cache.static.miss");
        let r = compute()?;
        if inner.admit(report_cost(&r), obs) {
            inner
                .statics
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(
                    key,
                    Entry {
                        bytes: report_cost(&r),
                        value: Arc::new(r.clone()),
                        tick: inner.tick(),
                    },
                );
        }
        Ok(r)
    }

    /// A cached opaque blob (e.g. a serialized whole-job result), touching
    /// its LRU tick. Does **not** count toward `stats()` hits — callers
    /// account blob hits under their own counters.
    pub fn blob(&self, key: u64) -> Option<Arc<String>> {
        let inner = self.0.as_ref()?;
        let mut blobs = inner.blobs.lock().unwrap_or_else(|e| e.into_inner());
        let e = blobs.get_mut(&key)?;
        e.tick = inner.tick();
        Some(e.value.clone())
    }

    /// Stores an opaque blob under the shared byte budget. A no-op when
    /// disabled; an oversized blob is silently not stored.
    pub fn store_blob(&self, key: u64, value: String, obs: &pmobs::Obs) {
        let Some(inner) = &self.0 else { return };
        let cost = value.len() as u64 + 64;
        if inner.admit(cost, obs) {
            inner
                .blobs
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(
                    key,
                    Entry {
                        value: Arc::new(value),
                        bytes: cost,
                        tick: inner.tick(),
                    },
                );
        }
    }

    /// Lifetime `(hits, misses)` across the keyed caches. `(0, 0)` when
    /// disabled.
    pub fn stats(&self) -> (u64, u64) {
        match &self.0 {
            None => (0, 0),
            Some(inner) => (
                inner.hits.load(Ordering::Relaxed),
                inner.misses.load(Ordering::Relaxed),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "fn main() {\n    var p: ptr = pmem_map(0, 4096);\n    store8(p, 0, 7);\n    clwb(p);\n    sfence();\n}\n";

    fn module() -> Module {
        pmlang::compile_one("cache_test.pmc", SRC).unwrap()
    }

    #[test]
    fn disabled_cache_computes_every_time() {
        let cache = WarmCache::default();
        assert!(!cache.is_enabled());
        let obs = pmobs::Obs::default();
        let m = module();
        let mut calls = 0;
        for _ in 0..2 {
            cache
                .static_report(&m, "main", &obs, || {
                    calls += 1;
                    Ok::<_, String>(CheckReport::default())
                })
                .unwrap();
        }
        assert_eq!(calls, 2);
        assert_eq!(cache.stats(), (0, 0));
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn alias_is_cached_by_module_digest() {
        let cache = WarmCache::enabled();
        let obs = pmobs::Obs::enabled();
        let m = module();
        let a = cache.alias(&m, &obs);
        let b = cache.alias(&m, &obs);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit");
        let snap = obs.snapshot();
        assert_eq!(snap.counters["cache.alias.hit"], 1);
        assert_eq!(snap.counters["cache.alias.miss"], 1);
        // A different module state is a different key.
        let other = pmlang::compile_one(
            "cache_test.pmc",
            "fn main() {\n    var p: ptr = pmem_map(1, 4096);\n    store8(p, 0, 9);\n}\n",
        )
        .unwrap();
        let c = cache.alias(&other, &obs);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn static_reports_hit_per_entry_and_skip_recompute() {
        let cache = WarmCache::enabled();
        let obs = pmobs::Obs::default();
        let m = module();
        let mut calls = 0;
        for _ in 0..3 {
            let r = cache
                .static_report(&m, "main", &obs, || {
                    calls += 1;
                    pmstatic::check_module(&m, "main").map_err(|e| e.to_string())
                })
                .unwrap();
            assert!(r.is_clean());
        }
        assert_eq!(calls, 1, "two of three lookups must hit");
        // A different entry point is a different key.
        cache
            .static_report(&m, "other", &obs, || {
                calls += 1;
                Ok::<_, String>(CheckReport::default())
            })
            .unwrap();
        assert_eq!(calls, 2);
    }

    #[test]
    fn failed_computations_are_not_cached() {
        let cache = WarmCache::enabled();
        let obs = pmobs::Obs::default();
        let m = module();
        let mut calls = 0;
        for _ in 0..2 {
            let _ = cache.static_report(&m, "main", &obs, || {
                calls += 1;
                Err::<CheckReport, _>("budget tripped".to_string())
            });
        }
        assert_eq!(calls, 2, "errors must never be cached");
    }

    #[test]
    fn module_cache_hits_on_identical_source_sets() {
        let cache = WarmCache::enabled();
        let obs = pmobs::Obs::default();
        let sources = vec![("a.pmc".to_string(), SRC.to_string())];
        let key = WarmCache::source_key(&sources);
        let mut compiles = 0;
        for _ in 0..2 {
            cache
                .module(key, &obs, || {
                    compiles += 1;
                    pmlang::compile_one("a.pmc", SRC).map_err(|e| e.to_string())
                })
                .unwrap();
        }
        assert_eq!(compiles, 1);
        // Source order is part of the key.
        let swapped = vec![
            ("b.pmc".to_string(), "x".to_string()),
            ("a.pmc".to_string(), "y".to_string()),
        ];
        let forward = vec![
            ("a.pmc".to_string(), "y".to_string()),
            ("b.pmc".to_string(), "x".to_string()),
        ];
        assert_ne!(
            WarmCache::source_key(&swapped),
            WarmCache::source_key(&forward)
        );
    }

    #[test]
    fn budget_evicts_lru_and_never_overshoots() {
        let obs = pmobs::Obs::enabled();
        let cache = WarmCache::with_budget(400);
        assert_eq!(cache.budget(), Some(400));
        // Three ~164-byte blobs against a 400-byte budget: the third
        // insert must evict the least recently used.
        cache.store_blob(1, "a".repeat(100), &obs);
        cache.store_blob(2, "b".repeat(100), &obs);
        assert!(cache.blob(1).is_some(), "touch 1 so 2 is the LRU");
        cache.store_blob(3, "c".repeat(100), &obs);
        assert!(cache.bytes() <= 400, "accounted {} bytes", cache.bytes());
        assert!(cache.blob(2).is_none(), "LRU entry 2 was evicted");
        assert!(cache.blob(1).is_some() && cache.blob(3).is_some());
        assert_eq!(cache.evictions(), 1);
        assert_eq!(obs.snapshot().counters["cache.evictions"], 1);
    }

    #[test]
    fn oversized_entry_is_returned_but_not_stored() {
        let obs = pmobs::Obs::enabled();
        let cache = WarmCache::with_budget(64);
        cache.store_blob(7, "x".repeat(1000), &obs);
        assert!(cache.blob(7).is_none(), "an oversized blob is not cached");
        assert_eq!(cache.bytes(), 0);
        assert!(cache.evictions() >= 1);
        assert_eq!(obs.snapshot().counters["cache.refused"], 1);
    }

    #[test]
    fn eviction_crosses_cache_kinds_globally() {
        let obs = pmobs::Obs::enabled();
        let m = module();
        let m_cost = super::module_cost(&m);
        // Budget holds the module plus one small blob, not two.
        let cache = WarmCache::with_budget(m_cost + 200);
        let key = WarmCache::source_key(&[("a.pmc".to_string(), SRC.to_string())]);
        cache
            .module(key, &obs, || Ok(pmlang::compile_one("a.pmc", SRC).unwrap()))
            .unwrap();
        cache.store_blob(1, "y".repeat(100), &obs);
        // Touch the blob so the *module* is the global LRU victim.
        assert!(cache.blob(1).is_some());
        cache.store_blob(2, "z".repeat(100), &obs);
        assert!(cache.bytes() <= m_cost + 200);
        let mut compiles = 0;
        cache
            .module(key, &obs, || {
                compiles += 1;
                Ok(pmlang::compile_one("a.pmc", SRC).unwrap())
            })
            .unwrap();
        assert_eq!(compiles, 1, "the module was evicted to admit the blob");
    }

    #[test]
    fn unbudgeted_cache_accounts_bytes_without_evicting() {
        let obs = pmobs::Obs::default();
        let cache = WarmCache::enabled();
        cache.store_blob(1, "a".repeat(10_000), &obs);
        cache.store_blob(2, "b".repeat(10_000), &obs);
        assert!(cache.bytes() >= 20_000);
        assert_eq!(cache.evictions(), 0);
        assert!(cache.blob(1).is_some() && cache.blob(2).is_some());
    }
}
