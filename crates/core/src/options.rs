//! Repair-engine configuration.

use pmir::{FenceKind, FlushKind};

/// Which PM-marking mode feeds the hoisting heuristic (paper §6.1 compares
/// the two and finds they produce identical fixes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MarkingMode {
    /// Whole-program alias analysis: every static `pmemmap` site is PM.
    #[default]
    FullAa,
    /// Trace-seeded: only pools observed by the bug finder are PM.
    TraceAa,
}

/// Which bug finder drives the detect→fix→verify loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BugSource {
    /// The dynamic checker: replay the program and check the trace. Finds
    /// only bugs on the executed path, with exact addresses.
    #[default]
    Dynamic,
    /// The static checker (`pmstatic`): abstract interpretation over the
    /// CFG, covering every path — no execution required. Repair converges
    /// against the *static* verdict.
    Static,
    /// Both: the union of the two reports each iteration, and the loop is
    /// only done when *both* checkers come back clean.
    Both,
    /// The crash-state exploration engine (`pmexplore`) *plus* the dynamic
    /// checker: every iteration replays the program, unions the checkpoint
    /// report with the bugs blamed by recovery-oracle failures on explored
    /// crash states, and the loop is only done when both come back clean.
    /// Catches ordering bugs (flushed-but-unfenced reordering) that no
    /// checkpoint ever samples.
    Exploration,
}

/// Options for [`crate::Hippocrates`].
#[derive(Debug, Clone)]
pub struct RepairOptions {
    /// Enable the interprocedural hoisting heuristic. Disabling it yields
    /// intraprocedural-only repair — the paper's RedisH-intra ablation.
    pub hoisting: bool,
    /// PM-marking mode for the heuristic.
    pub marking: MarkingMode,
    /// Flush instruction inserted by fixes (the paper's artifact inserts
    /// `CLWB`).
    pub flush_kind: FlushKind,
    /// Fence instruction inserted by fixes.
    pub fence_kind: FenceKind,
    /// Reuse persistent subprograms across fixes (§4.2.4). Disabling this is
    /// the code-bloat ablation for §6.4.
    pub reuse_subprograms: bool,
    /// Insert machine-portable range-flush *calls* instead of raw `CLWB`
    /// instructions — the §6.2 extension the paper suggests ("Hippocrates
    /// could be modified to insert more generic fixes"), matching the PMDK
    /// developers' runtime-dispatched flush style.
    pub portable_fixes: bool,
    /// Which bug finder drives [`crate::Hippocrates::repair_until_clean`].
    pub bug_source: BugSource,
    /// Maximum detect→fix→re-verify iterations in
    /// [`crate::Hippocrates::repair_until_clean`].
    pub max_iterations: u32,
    /// VM step budget per verification run.
    pub max_steps: u64,
    /// Crash-state budget per exploration pass ([`BugSource::Exploration`]).
    pub explore_budget: usize,
    /// Sampler seed for exploration (results are deterministic in it).
    pub explore_seed: u64,
    /// Worker threads for exploration. Never changes the findings.
    pub explore_jobs: usize,
    /// Fault plan armed on every detection/verification run (`pmfault`).
    /// `None` (the default) leaves the injection layer disabled at zero
    /// cost. When set, sim/vm faults reach the interpreter via `VmOptions`,
    /// explore faults reach `pmexplore`, and trace faults corrupt the
    /// serialize→parse roundtrip inside detection.
    pub fault: Option<pmfault::FaultPlan>,
    /// Wall-clock watchdog for detection/verification runs, in
    /// milliseconds. `None` arms no watchdog — unless the fault plan
    /// injects a diverging loop, in which case a 250ms default is armed
    /// automatically (a stuck-loop plan without a watchdog is rejected by
    /// the VM up front).
    pub watchdog_ms: Option<u64>,
    /// Retries per failed bug source before the engine degrades (proceeds
    /// on the surviving sources and stamps the outcome).
    pub source_retries: u32,
    /// Base delay for the seeded exponential backoff between source
    /// retries.
    pub retry_base_ms: u64,
    /// Backoff cap. Kept small by default so degraded runs stay fast.
    pub retry_cap_ms: u64,
    /// Observability handle ([`pmobs::Obs`]). When attached to a registry
    /// the engine records `repair.*` spans and counters for every stage of
    /// the detect→fix→re-verify loop and threads the handle into the VM,
    /// the checkers, exploration, and fault injection. The disabled default
    /// costs one branch per recording site.
    pub obs: pmobs::Obs,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            hoisting: true,
            marking: MarkingMode::FullAa,
            flush_kind: FlushKind::Clwb,
            fence_kind: FenceKind::Sfence,
            reuse_subprograms: true,
            portable_fixes: false,
            bug_source: BugSource::Dynamic,
            max_iterations: 8,
            max_steps: 200_000_000,
            explore_budget: 256,
            explore_seed: 0,
            explore_jobs: 1,
            fault: None,
            watchdog_ms: None,
            source_retries: 2,
            retry_base_ms: 1,
            retry_cap_ms: 8,
            obs: pmobs::Obs::default(),
        }
    }
}

impl RepairOptions {
    /// The intraprocedural-only configuration (RedisH-intra).
    pub fn intraprocedural_only() -> Self {
        RepairOptions {
            hoisting: false,
            ..RepairOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = RepairOptions::default();
        assert!(o.hoisting);
        assert!(!o.portable_fixes);
        assert_eq!(o.marking, MarkingMode::FullAa);
        assert_eq!(o.flush_kind, FlushKind::Clwb);
        assert!(!RepairOptions::intraprocedural_only().hoisting);
    }
}
