//! Repair-engine configuration.

use pmir::{FenceKind, FlushKind};

/// Which PM-marking mode feeds the hoisting heuristic (paper §6.1 compares
/// the two and finds they produce identical fixes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MarkingMode {
    /// Whole-program alias analysis: every static `pmemmap` site is PM.
    #[default]
    FullAa,
    /// Trace-seeded: only pools observed by the bug finder are PM.
    TraceAa,
}

/// Which bug finder drives the detect→fix→verify loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BugSource {
    /// The dynamic checker: replay the program and check the trace. Finds
    /// only bugs on the executed path, with exact addresses.
    #[default]
    Dynamic,
    /// The static checker (`pmstatic`): abstract interpretation over the
    /// CFG, covering every path — no execution required. Repair converges
    /// against the *static* verdict.
    Static,
    /// Both: the union of the two reports each iteration, and the loop is
    /// only done when *both* checkers come back clean.
    Both,
    /// The crash-state exploration engine (`pmexplore`) *plus* the dynamic
    /// checker: every iteration replays the program, unions the checkpoint
    /// report with the bugs blamed by recovery-oracle failures on explored
    /// crash states, and the loop is only done when both come back clean.
    /// Catches ordering bugs (flushed-but-unfenced reordering) that no
    /// checkpoint ever samples.
    Exploration,
}

/// Options for [`crate::Hippocrates`].
#[derive(Debug, Clone)]
pub struct RepairOptions {
    /// Enable the interprocedural hoisting heuristic. Disabling it yields
    /// intraprocedural-only repair — the paper's RedisH-intra ablation.
    pub hoisting: bool,
    /// PM-marking mode for the heuristic.
    pub marking: MarkingMode,
    /// Flush instruction inserted by fixes (the paper's artifact inserts
    /// `CLWB`).
    pub flush_kind: FlushKind,
    /// Fence instruction inserted by fixes.
    pub fence_kind: FenceKind,
    /// Reuse persistent subprograms across fixes (§4.2.4). Disabling this is
    /// the code-bloat ablation for §6.4.
    pub reuse_subprograms: bool,
    /// Insert machine-portable range-flush *calls* instead of raw `CLWB`
    /// instructions — the §6.2 extension the paper suggests ("Hippocrates
    /// could be modified to insert more generic fixes"), matching the PMDK
    /// developers' runtime-dispatched flush style.
    pub portable_fixes: bool,
    /// Which bug finder drives [`crate::Hippocrates::repair_until_clean`].
    pub bug_source: BugSource,
    /// Maximum detect→fix→re-verify iterations in
    /// [`crate::Hippocrates::repair_until_clean`].
    pub max_iterations: u32,
    /// VM step budget per verification run.
    pub max_steps: u64,
    /// Crash-state budget per exploration pass ([`BugSource::Exploration`]).
    pub explore_budget: usize,
    /// Sampler seed for exploration (results are deterministic in it).
    pub explore_seed: u64,
    /// Worker threads for exploration. Never changes the findings.
    pub explore_jobs: usize,
    /// Fault plan armed on every detection/verification run (`pmfault`).
    /// `None` (the default) leaves the injection layer disabled at zero
    /// cost. When set, sim/vm faults reach the interpreter via `VmOptions`,
    /// explore faults reach `pmexplore`, and trace faults corrupt the
    /// serialize→parse roundtrip inside detection.
    pub fault: Option<pmfault::FaultPlan>,
    /// Wall-clock watchdog for detection/verification runs, in
    /// milliseconds. `None` arms no watchdog — unless the fault plan
    /// injects a diverging loop, in which case a 250ms default is armed
    /// automatically (a stuck-loop plan without a watchdog is rejected by
    /// the VM up front).
    pub watchdog_ms: Option<u64>,
    /// Retries per failed bug source before the engine degrades (proceeds
    /// on the surviving sources and stamps the outcome).
    pub source_retries: u32,
    /// Base delay for the seeded exponential backoff between source
    /// retries.
    pub retry_base_ms: u64,
    /// Backoff cap. Kept small by default so degraded runs stay fast.
    pub retry_cap_ms: u64,
    /// Observability handle ([`pmobs::Obs`]). When attached to a registry
    /// the engine records `repair.*` spans and counters for every stage of
    /// the detect→fix→re-verify loop and threads the handle into the VM,
    /// the checkers, exploration, and fault injection. The disabled default
    /// costs one branch per recording site.
    pub obs: pmobs::Obs,
    /// Write-ahead repair journal (`hippo.journal.v1`). When set, every
    /// committed round is made durable at this path before the loop moves
    /// on, so a SIGKILLed run can be resumed.
    pub journal_path: Option<std::path::PathBuf>,
    /// Replay committed rounds from an existing journal at
    /// [`RepairOptions::journal_path`] before detecting. Refuses (with a
    /// clear diagnostic) when the journal's module or options digest does
    /// not match the current run. Without this flag an existing journal is
    /// truncated and started fresh.
    pub resume: bool,
    /// Wall-clock deadline for the whole repair run, in milliseconds. The
    /// cooperative [`pmtx::Budget`] built from this is threaded through the
    /// detect/explore/static/repair stages; when it trips, the run returns a
    /// partial-but-committed outcome instead of hanging.
    pub deadline_ms: Option<u64>,
    /// Step quota for the cooperative budget: each repair round (and each
    /// detection attempt) costs one step. `None` is unlimited.
    pub step_quota: Option<u64>,
    /// After the loop converges clean, run the `pmredund` optimizer: strip
    /// provably-redundant flushes and sinkable fences in transactional
    /// rounds, each re-verified (dynamic checker + crash-state exploration,
    /// byte-identical output) and rolled back on any regression. The
    /// inverse pass can therefore never undo the repair. Off by default.
    pub optimize_after: bool,
    /// Shared warm cache ([`crate::WarmCache`]) for the pure per-module
    /// work: alias-analysis fixpoints and static check reports keyed by
    /// module snapshot digest. The disabled default computes everything
    /// directly; a long-running server attaches one shared cache across
    /// jobs. Hits reproduce the cold path's results exactly, so this is a
    /// presentation knob (excluded from [`RepairOptions::digest_hex`]).
    pub cache: crate::WarmCache,
    /// Crash-injection hook for the kill-and-resume machinery: abort the
    /// process (as a deterministic stand-in for SIGKILL) immediately after
    /// the n-th round committed *in this process*. Only ever set by tests
    /// and the CI kill-and-resume gate.
    pub crash_after_commit: Option<u32>,
    /// Execution tier for every VM run the engine performs (detection
    /// replays, exploration recovery boots, verification). Tiers are
    /// result-identical by construction — the differential tier gate holds
    /// them to byte-equal traces, findings, and fixes — so this is an
    /// execution-speed knob like [`RepairOptions::cache`], excluded from
    /// [`RepairOptions::digest_hex`] and never able to block a resume.
    pub tier: pmvm::ExecTier,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            hoisting: true,
            marking: MarkingMode::FullAa,
            flush_kind: FlushKind::Clwb,
            fence_kind: FenceKind::Sfence,
            reuse_subprograms: true,
            portable_fixes: false,
            bug_source: BugSource::Dynamic,
            max_iterations: 8,
            max_steps: 200_000_000,
            explore_budget: 256,
            explore_seed: 0,
            explore_jobs: 1,
            fault: None,
            watchdog_ms: None,
            source_retries: 2,
            retry_base_ms: 1,
            retry_cap_ms: 8,
            obs: pmobs::Obs::default(),
            journal_path: None,
            resume: false,
            deadline_ms: None,
            step_quota: None,
            cache: crate::WarmCache::default(),
            crash_after_commit: None,
            optimize_after: false,
            tier: pmvm::ExecTier::default(),
        }
    }
}

impl RepairOptions {
    /// The intraprocedural-only configuration (RedisH-intra).
    pub fn intraprocedural_only() -> Self {
        RepairOptions {
            hoisting: false,
            ..RepairOptions::default()
        }
    }

    /// Validates the configuration before the engine runs. Each rejected
    /// combination comes with an actionable message.
    ///
    /// # Errors
    ///
    /// Returns the human-readable reason the options are unusable.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_iterations == 0 {
            return Err(
                "max_iterations is 0: the repair loop would never detect or fix anything; \
                 set it to at least 1 (the default is 8)"
                    .to_string(),
            );
        }
        if self.resume && self.journal_path.is_none() {
            return Err(
                "resume is set but no journal path is configured: resuming replays committed \
                 rounds from a journal, so pass one (e.g. `--journal repair.journal --resume`)"
                    .to_string(),
            );
        }
        if self.deadline_ms == Some(0) {
            return Err(
                "deadline_ms is 0: the budget would trip before the first detection; \
                 use a positive deadline or leave it unset"
                    .to_string(),
            );
        }
        if self.step_quota == Some(0) {
            return Err(
                "step_quota is 0: the budget would trip before the first detection; \
                 use a positive quota or leave it unset"
                    .to_string(),
            );
        }
        Ok(())
    }

    /// Digest (16 hex digits) of the options that shape fix planning and
    /// detection — the `options_digest` recorded in journal headers. Two
    /// runs with equal digests plan identical fixes for identical modules;
    /// presentation-only knobs (observability, retries, deadlines, the
    /// journal itself) are deliberately excluded so they never block a
    /// resume. `optimize_after` is excluded too: it runs only after the
    /// loop converges, so journaled repair rounds replay unchanged.
    pub fn digest_hex(&self) -> String {
        let canon = format!(
            "hoisting={} marking={:?} flush={:?} fence={:?} reuse={} portable={} \
             source={:?} max_steps={} explore_budget={} explore_seed={} fault={:?}",
            self.hoisting,
            self.marking,
            self.flush_kind,
            self.fence_kind,
            self.reuse_subprograms,
            self.portable_fixes,
            self.bug_source,
            self.max_steps,
            self.explore_budget,
            self.explore_seed,
            self.fault,
        );
        format!("{:016x}", pmir::snapshot::fnv1a(canon.as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = RepairOptions::default();
        assert!(o.hoisting);
        assert!(!o.portable_fixes);
        assert_eq!(o.marking, MarkingMode::FullAa);
        assert_eq!(o.flush_kind, FlushKind::Clwb);
        assert!(!RepairOptions::intraprocedural_only().hoisting);
        assert!(o.journal_path.is_none() && !o.resume);
        assert!(!o.optimize_after);
        assert!(o.validate().is_ok());
    }

    #[test]
    fn zero_iteration_budget_is_rejected_with_actionable_message() {
        let o = RepairOptions {
            max_iterations: 0,
            ..RepairOptions::default()
        };
        let msg = o.validate().unwrap_err();
        assert!(msg.contains("max_iterations"), "{msg}");
        assert!(msg.contains("at least 1"), "{msg}");
    }

    #[test]
    fn resume_without_journal_is_rejected() {
        let o = RepairOptions {
            resume: true,
            ..RepairOptions::default()
        };
        let msg = o.validate().unwrap_err();
        assert!(msg.contains("--journal"), "{msg}");
    }

    #[test]
    fn zero_budgets_are_rejected() {
        for o in [
            RepairOptions {
                deadline_ms: Some(0),
                ..RepairOptions::default()
            },
            RepairOptions {
                step_quota: Some(0),
                ..RepairOptions::default()
            },
        ] {
            assert!(o.validate().is_err());
        }
    }

    #[test]
    fn options_digest_tracks_planning_knobs_only() {
        let base = RepairOptions::default();
        let planning = RepairOptions {
            hoisting: false,
            ..RepairOptions::default()
        };
        assert_ne!(base.digest_hex(), planning.digest_hex());
        let presentation = RepairOptions {
            source_retries: 9,
            deadline_ms: Some(1234),
            journal_path: Some("x.journal".into()),
            resume: true,
            cache: crate::WarmCache::enabled(),
            tier: pmvm::ExecTier::Interp,
            ..RepairOptions::default()
        };
        assert_eq!(
            base.digest_hex(),
            presentation.digest_hex(),
            "presentation knobs never block a resume"
        );
    }
}
