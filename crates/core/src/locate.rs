//! Bug localization: mapping trace/report entries back to IR instructions
//! (paper Fig. 2, step 2).

use pmcheck::Bug;
use pmir::{FuncId, InstId, Module, Op};
use pmtrace::{Frame, IrRef, TraceLoc};
use std::fmt;

/// A localized bug: the offending store and the observed call path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BugSite {
    /// Function containing the store.
    pub func: FuncId,
    /// The store-like instruction.
    pub store: InstId,
    /// The call path from the store outward: `path[k]` is the call site (in
    /// its containing function) that entered the `k`-th inner frame;
    /// `path[0]` sits in the store's direct caller.
    pub call_path: Vec<(FuncId, InstId)>,
    /// The function containing the durability requirement `I` (innermost
    /// frame of the checkpoint), when known.
    pub i_func: Option<FuncId>,
}

/// A localization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocateError {
    /// Description of what could not be resolved.
    pub message: String,
}

impl fmt::Display for LocateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bug localization failed: {}", self.message)
    }
}

impl std::error::Error for LocateError {}

/// Resolves an [`IrRef`] against the module, checking that it names a real
/// instruction.
pub fn resolve_ir_ref(m: &Module, at: &IrRef) -> Option<(FuncId, InstId)> {
    let f = m.function_by_name(&at.function)?;
    let func = m.function(f);
    ((at.inst as usize) < func.inst_count()).then_some((f, InstId(at.inst)))
}

/// Finds a store-like instruction in `function` at the given source
/// location — the fallback path used when a trace lacks structural refs
/// (e.g. traces from foreign bug finders carrying only source lines).
pub fn find_store_by_loc(m: &Module, function: &str, loc: &TraceLoc) -> Option<(FuncId, InstId)> {
    let fid = m.function_by_name(function)?;
    let f = m.function(fid);
    let file_id = (0..m.files().len() as u32)
        .map(pmir::FileId)
        .find(|&fi| m.file_name(fi) == loc.file)?;
    for (_, i) in f.linked_insts() {
        let inst = f.inst(i);
        if !inst.op.is_pm_storeish() {
            continue;
        }
        if let Some(l) = inst.loc {
            if l.file == file_id && l.line == loc.line {
                return Some((fid, i));
            }
        }
    }
    None
}

/// Localizes one bug: resolves the store (preferring the structural
/// [`IrRef`], falling back to the source location) and the call path from
/// the recorded stack.
///
/// # Errors
///
/// Fails when neither the structural reference nor the source location
/// resolves, or the stack is inconsistent with the module.
pub fn locate(m: &Module, bug: &Bug) -> Result<BugSite, LocateError> {
    let (func, store) = bug
        .store_at
        .as_ref()
        .and_then(|at| resolve_ir_ref(m, at))
        .or_else(|| {
            let loc = bug.store_loc.as_ref()?;
            let f = bug.stack.first().map(|f| f.function.as_str())?;
            find_store_by_loc(m, f, loc)
        })
        .ok_or_else(|| LocateError {
            message: format!(
                "cannot resolve store for bug at {:?} / {:?}",
                bug.store_at, bug.store_loc
            ),
        })?;
    // Validate the resolved instruction is store-like.
    if !m.function(func).inst(store).op.is_pm_storeish() {
        return Err(LocateError {
            message: format!(
                "resolved instruction {:?} in `{}` is not a store",
                store,
                m.function(func).name()
            ),
        });
    }
    let call_path = call_path_of(m, &bug.stack)?;
    Ok(BugSite {
        func,
        store,
        call_path,
        i_func: None,
    })
}

/// Extracts the call path `(caller function, call instruction)` for each
/// non-innermost frame of a stack.
///
/// # Errors
///
/// Fails if a frame references an unknown function or instruction.
pub fn call_path_of(m: &Module, stack: &[Frame]) -> Result<Vec<(FuncId, InstId)>, LocateError> {
    let mut path = vec![];
    for fr in stack.iter().skip(1) {
        let f = m
            .function_by_name(&fr.function)
            .ok_or_else(|| LocateError {
                message: format!("stack frame names unknown function `{}`", fr.function),
            })?;
        let Some(ci) = fr.call_inst else {
            return Err(LocateError {
                message: format!("frame `{}` lacks a call instruction", fr.function),
            });
        };
        if ci as usize >= m.function(f).inst_count() {
            return Err(LocateError {
                message: format!("frame `{}` call inst {ci} out of range", fr.function),
            });
        }
        if !matches!(m.function(f).inst(InstId(ci)).op, Op::Call { .. }) {
            return Err(LocateError {
                message: format!("frame `{}` inst {ci} is not a call", fr.function),
            });
        }
        path.push((f, InstId(ci)));
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcheck::run_and_check;
    use pmvm::VmOptions;

    fn buggy_module() -> Module {
        let src = r#"
            fn write(p: ptr) {
                store8(p, 0, 1);
            }
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                write(p);
            }
        "#;
        pmlang::compile_one("t.pmc", src).unwrap()
    }

    #[test]
    fn locates_via_ir_ref() {
        let m = buggy_module();
        let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert_eq!(checked.report.bugs.len(), 1);
        let site = locate(&m, &checked.report.bugs[0]).unwrap();
        assert_eq!(m.function(site.func).name(), "write");
        assert!(m.function(site.func).inst(site.store).op.is_pm_storeish());
        assert_eq!(site.call_path.len(), 1);
        assert_eq!(m.function(site.call_path[0].0).name(), "main");
    }

    #[test]
    fn locates_via_source_loc_fallback() {
        let m = buggy_module();
        let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
        let mut bug = checked.report.bugs[0].clone();
        bug.store_at = None; // wipe the structural ref: force the fallback
        let site = locate(&m, &bug).unwrap();
        assert_eq!(m.function(site.func).name(), "write");
    }

    #[test]
    fn unresolvable_bug_errors() {
        let m = buggy_module();
        let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
        let mut bug = checked.report.bugs[0].clone();
        bug.store_at = Some(IrRef {
            function: "nonexistent".into(),
            inst: 0,
        });
        bug.store_loc = None;
        assert!(locate(&m, &bug).is_err());
    }

    #[test]
    fn non_store_ref_rejected() {
        let m = buggy_module();
        let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
        let mut bug = checked.report.bugs[0].clone();
        // Point the ref at instruction 0 of main (the pmem_map, not a store).
        let pm_inst = {
            let f = m.function_by_name("main").unwrap();
            let func = m.function(f);
            func.linked_insts()
                .find(|&(_, i)| matches!(func.inst(i).op, Op::PmemMap { .. }))
                .unwrap()
                .1
        };
        bug.store_at = Some(IrRef {
            function: "main".into(),
            inst: pm_inst.0,
        });
        bug.store_loc = None;
        let err = locate(&m, &bug).unwrap_err();
        assert!(err.message.contains("not a store"), "{err}");
    }
}
