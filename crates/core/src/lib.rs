//! `hippocrates` — automated repair of persistent-memory durability bugs,
//! guaranteed to "do no harm" (ASPLOS '21).
//!
//! Given a bug-finder trace ([`pmtrace::Trace`]) and a durability report
//! ([`pmcheck::CheckReport`]), the engine:
//!
//! 1. **locates** the IR store behind every bug (paper Fig. 2, step 2);
//! 2. computes the simplest safe **intraprocedural fixes** — flush
//!    insertion, fence insertion, or both (§4.2);
//! 3. performs **fix reduction**, merging fixes that would create redundant
//!    flushes or fences (§4.3, phase 2);
//! 4. runs the **hoisting heuristic**: an alias-analysis score decides
//!    whether a fix should become an interprocedural *persistent subprogram
//!    transformation* (§4.2.4, §4.3, phase 3);
//! 5. **applies** the fixes and re-verifies by re-running the bug finder,
//!    iterating until the report is clean.
//!
//! All fixes only add flushes, fences, and duplicated subprograms — the
//! operations proved safe by the paper's Lemmas 1–2 and Theorems 1–4. The
//! do-no-harm property (program output is unchanged; no new bugs appear) is
//! enforced by this repository's property-based tests.
//!
//! # Example
//!
//! ```
//! use hippocrates::{Hippocrates, RepairOptions};
//!
//! let src = r#"
//!     fn main() {
//!         var p: ptr = pmem_map(0, 4096);
//!         store8(p, 0, 7); // never flushed: a missing-flush&fence bug
//!     }
//! "#;
//! let mut module = pmlang::compile_one("buggy.pmc", src).unwrap();
//! let outcome = Hippocrates::new(RepairOptions::default())
//!     .repair_until_clean(&mut module, "main")
//!     .unwrap();
//! assert!(outcome.clean);
//! assert_eq!(outcome.fixes.len(), 1);
//! ```

pub mod cache;
pub mod engine;
pub mod heuristic;
pub mod locate;
pub mod options;
pub mod perf;
pub mod plan;
pub mod summary;

pub use cache::WarmCache;
pub use engine::{provide_durability, Hippocrates, RepairError};
pub use options::{BugSource, MarkingMode, RepairOptions};
pub use summary::{
    AppliedFix, Degradation, FixKind, OptimizeStats, QuarantinedFix, RepairOutcome, RepairSummary,
};
