//! The repair engine: one pass (`repair_once`) and the detect→fix→verify
//! loop (`repair_until_clean`).

use crate::heuristic::{apply_hoist, choose_fix_site, CloneState};
use crate::locate::{locate, BugSite, LocateError};
use crate::options::{BugSource, MarkingMode, RepairOptions};
use crate::plan::{apply_intra_fix, plan_intra_fixes, pm_store_refs};
use crate::summary::{AppliedFix, FixKind, RepairOutcome, RepairSummary};
use pmalias::{AliasAnalysis, PmMarking};
use pmcheck::{run_and_check, Bug, CheckReport, Checkpoint};
use pmir::Module;
use pmtrace::{EventKind, Trace};
use pmvm::{VmError, VmOptions};
use std::fmt;

/// The Hippocrates repair engine. See the [crate docs](crate) for the
/// pipeline description.
#[derive(Debug, Clone)]
pub struct Hippocrates {
    opts: RepairOptions,
}

/// A repair failure.
#[derive(Debug)]
pub enum RepairError {
    /// A bug could not be mapped back to the IR.
    Locate(LocateError),
    /// The program trapped during a verification run.
    Vm(VmError),
    /// The static checker failed (e.g. an unknown entry function).
    Static(pmstatic::StaticError),
    /// The module failed verification after a rewrite (an engine bug).
    Verify(pmir::verify::VerifyError),
    /// A repair pass applied no fixes while bugs remain.
    NoProgress {
        /// Bugs still outstanding.
        remaining: usize,
    },
    /// The iteration budget was exhausted before the report came back clean.
    IterationBudget {
        /// The configured maximum.
        max: u32,
    },
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::Locate(e) => write!(f, "{e}"),
            RepairError::Vm(e) => write!(f, "verification run failed: {e}"),
            RepairError::Static(e) => write!(f, "static check failed: {e}"),
            RepairError::Verify(e) => write!(f, "rewritten module is malformed: {e}"),
            RepairError::NoProgress { remaining } => {
                write!(f, "no fixes applied with {remaining} bug(s) remaining")
            }
            RepairError::IterationBudget { max } => {
                write!(f, "not clean after {max} repair iteration(s)")
            }
        }
    }
}

impl std::error::Error for RepairError {}

impl From<LocateError> for RepairError {
    fn from(e: LocateError) -> Self {
        RepairError::Locate(e)
    }
}

impl From<VmError> for RepairError {
    fn from(e: VmError) -> Self {
        RepairError::Vm(e)
    }
}

impl Hippocrates {
    /// Creates an engine.
    pub fn new(opts: RepairOptions) -> Self {
        Hippocrates { opts }
    }

    /// The options in effect.
    pub fn options(&self) -> &RepairOptions {
        &self.opts
    }

    /// One repair pass over an existing bug report: locate → plan intra →
    /// reduce → hoist → apply. The module is modified in place and
    /// re-verified structurally.
    ///
    /// # Errors
    ///
    /// Fails if localization fails or (which would indicate an engine bug)
    /// the rewritten module does not verify.
    pub fn repair_once(
        &self,
        m: &mut Module,
        trace: &Trace,
        report: &CheckReport,
    ) -> Result<RepairSummary, RepairError> {
        // Locate deduped bugs, tagging each site with I's function.
        let mut located: Vec<(Bug, BugSite)> = vec![];
        for bug in report.deduped_bugs() {
            let mut site = locate(m, bug)?;
            site.i_func = i_function(m, trace, bug);
            located.push((bug.clone(), site));
        }

        // Phase 1+2: plan intraprocedural fixes with reduction.
        let fixes = plan_intra_fixes(m, trace, &located);

        // Phase 3: hoisting decisions (only for flush-bearing fixes).
        let analysis = self.opts.hoisting.then(|| {
            let aa = AliasAnalysis::analyze(m);
            let marking = match self.opts.marking {
                MarkingMode::FullAa => PmMarking::full(&aa),
                MarkingMode::TraceAa => PmMarking::from_trace(m, &aa, trace),
            };
            (aa, marking)
        });
        let pm_stores = pm_store_refs(m, trace);
        // Reuse persistent clones created by earlier iterations (§4.2.4).
        let mut state = if self.opts.reuse_subprograms {
            CloneState::discover(m)
        } else {
            CloneState::default()
        };
        let mut summary = RepairSummary::default();

        for fix in &fixes {
            let store_function = m.function(fix.func).name().to_string();
            let store_loc = fix
                .sites
                .first()
                .and_then(|s| m.function(s.func).inst(s.store).loc)
                .map(|l| pmtrace::TraceLoc {
                    file: m.file_name(l.file).to_string(),
                    line: l.line,
                    col: l.col,
                });
            let bug_kinds: Vec<String> = fix.kinds.iter().map(|k| k.to_string()).collect();

            // A fix is hoistable when it inserts a flush and has a caller.
            let decision = match (&analysis, fix.insert_flush) {
                (Some((aa, marking)), true) => fix
                    .sites
                    .iter()
                    .find(|s| !s.call_path.is_empty())
                    .map(|site| (site, choose_fix_site(m, aa, marking, site))),
                _ => None,
            };

            match decision {
                Some((site, d)) if d.depth > 0 => {
                    let site = site.clone();
                    let applied =
                        apply_hoist(m, &site, d.depth, &pm_stores, &mut state, &self.opts);
                    summary.clones_created += applied.clones_created;
                    summary.fixes.push(AppliedFix {
                        kind: FixKind::Interproc {
                            levels: applied.levels,
                            root_clone: applied.root_clone,
                        },
                        store_function,
                        store_loc,
                        bug_kinds,
                    });
                }
                _ => {
                    apply_intra_fix(m, fix, &self.opts);
                    let kind = match (fix.insert_flush, fix.insert_fence) {
                        (true, true) => FixKind::IntraFlushFence,
                        (true, false) => FixKind::IntraFlush,
                        _ => FixKind::IntraFence,
                    };
                    summary.fixes.push(AppliedFix {
                        kind,
                        store_function,
                        store_loc,
                        bug_kinds,
                    });
                }
            }
        }

        pmir::verify::verify_module(m).map_err(RepairError::Verify)?;
        Ok(summary)
    }

    /// Runs the configured bug finder(s) once: the dynamic checker, the
    /// static checker, both, or the dynamic checker plus crash-state
    /// exploration (the union of their reports, deduplicated by store). The
    /// trace is empty when only the static checker ran —
    /// downstream consumers (fence anchoring, `I`-function lookup, trace
    /// PM-marking) all degrade gracefully to their conservative fallbacks.
    fn detect(
        &self,
        m: &Module,
        entry: &str,
        vm_opts: &VmOptions,
    ) -> Result<(CheckReport, Trace), RepairError> {
        match self.opts.bug_source {
            BugSource::Dynamic => {
                let c = run_and_check(m, entry, vm_opts.clone())?;
                Ok((c.report, c.trace))
            }
            BugSource::Static => {
                let report = pmstatic::check_module(m, entry).map_err(RepairError::Static)?;
                Ok((report, Trace::default()))
            }
            BugSource::Both => {
                let c = run_and_check(m, entry, vm_opts.clone())?;
                let stat = pmstatic::check_module(m, entry).map_err(RepairError::Static)?;
                Ok((merge_reports(c.report, stat), c.trace))
            }
            BugSource::Exploration => {
                let x = pmexplore::run_and_explore(
                    m,
                    entry,
                    &pmexplore::ExploreOptions {
                        budget: self.opts.explore_budget,
                        seed: self.opts.explore_seed,
                        jobs: self.opts.explore_jobs,
                        max_recovery_steps: self.opts.max_steps,
                        ..pmexplore::ExploreOptions::default()
                    },
                )?;
                let dynamic = pmcheck::check_trace(&x.trace);
                let explored = x.report.to_check_report(&x.trace);
                let mut merged = merge_reports(dynamic, explored);
                merged.provenance = pmcheck::Provenance::Exploration;
                Ok((merged, x.trace))
            }
        }
    }

    /// The full loop: run the bug finder, repair, and re-verify until the
    /// report is clean (paper Fig. 2 plus the §6.1 validation step). With
    /// [`BugSource::Static`] the loop converges against the static verdict
    /// without ever executing the program; with [`BugSource::Both`] it is
    /// only done when both checkers come back clean.
    ///
    /// # Errors
    ///
    /// Propagates [`RepairError`]; notably [`RepairError::IterationBudget`]
    /// when the program is still buggy after `max_iterations`.
    pub fn repair_until_clean(
        &self,
        m: &mut Module,
        entry: &str,
    ) -> Result<RepairOutcome, RepairError> {
        let vm_opts = VmOptions {
            max_steps: self.opts.max_steps,
            ..VmOptions::default()
        };
        let mut fixes = vec![];
        let mut clones = 0usize;
        for iter in 0..self.opts.max_iterations {
            let (report, trace) = self.detect(m, entry, &vm_opts)?;
            if report.is_clean() {
                return Ok(RepairOutcome {
                    clean: true,
                    fixes,
                    iterations: iter,
                    final_report: report,
                    clones_created: clones,
                });
            }
            let summary = self.repair_once(m, &trace, &report)?;
            if summary.fixes.is_empty() {
                return Err(RepairError::NoProgress {
                    remaining: report.deduped_bugs().len(),
                });
            }
            fixes.extend(summary.fixes);
            clones += summary.clones_created;
        }
        Err(RepairError::IterationBudget {
            max: self.opts.max_iterations,
        })
    }
}

/// Unions a dynamic and a static report for [`BugSource::Both`]: static
/// bugs at stores the dynamic checker already flagged are dropped (the
/// dynamic entry carries the richer trace context), and the rest — the
/// static checker's unexecuted-path findings — are appended. Counters stay
/// the dynamic run's.
fn merge_reports(mut dynamic: CheckReport, stat: CheckReport) -> CheckReport {
    let seen: std::collections::HashSet<_> =
        dynamic.bugs.iter().filter_map(|b| b.store_at.clone()).collect();
    for b in stat.bugs {
        if b.store_at.as_ref().is_none_or(|at| !seen.contains(at)) {
            dynamic.bugs.push(b);
        }
    }
    dynamic
}

/// The paper's §7 "automatically providing durability": given a program in
/// which the developer wrote *only* the ordering points (memory fences) and
/// no flushes at all, Hippocrates regenerates every flush — this is exactly
/// how the §6.3 Redis port was produced. A thin, intention-revealing
/// wrapper over [`Hippocrates::repair_until_clean`].
///
/// # Errors
///
/// Propagates [`RepairError`] from the underlying loop.
pub fn provide_durability(
    module: &mut Module,
    entry: &str,
) -> Result<RepairOutcome, RepairError> {
    Hippocrates::new(RepairOptions::default()).repair_until_clean(module, entry)
}

/// Determines the function containing the durability requirement `I` for a
/// bug: the innermost frame of the matching crash point, or the outermost
/// frame of the store's stack for program-end checkpoints.
fn i_function(m: &Module, trace: &Trace, bug: &Bug) -> Option<pmir::FuncId> {
    match bug.checkpoint {
        Checkpoint::CrashPoint(n) => {
            let mut seen = 0u64;
            for e in &trace.events {
                if matches!(e.kind, EventKind::CrashPoint) {
                    seen += 1;
                    if seen == n {
                        return e
                            .stack
                            .first()
                            .and_then(|f| m.function_by_name(&f.function));
                    }
                }
            }
            None
        }
        Checkpoint::ProgramEnd => bug
            .stack
            .last()
            .and_then(|f| m.function_by_name(&f.function)),
        // Exploration checkpoints are hypothetical crashes at a trace
        // position; the durability requirement is rooted where that event
        // executed.
        Checkpoint::Event(seq) => trace
            .events
            .iter()
            .find(|e| e.seq == seq)
            .and_then(|e| e.stack.first())
            .and_then(|f| m.function_by_name(&f.function))
            .or_else(|| bug.stack.last().and_then(|f| m.function_by_name(&f.function))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repair(src: &str) -> (Module, RepairOutcome) {
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions::default())
            .repair_until_clean(&mut m, "main")
            .unwrap();
        (m, outcome)
    }

    #[test]
    fn fixes_missing_flush_fence() {
        let (_, outcome) =
            repair("fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); }");
        assert!(outcome.clean);
        assert_eq!(outcome.fixes.len(), 1);
        assert_eq!(outcome.fixes[0].kind, FixKind::IntraFlushFence);
    }

    #[test]
    fn fixes_missing_fence_at_flush() {
        let (_, outcome) = repair(
            "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); clwb(p); }",
        );
        assert!(outcome.clean);
        assert_eq!(outcome.fixes.len(), 1);
        assert_eq!(outcome.fixes[0].kind, FixKind::IntraFence);
    }

    #[test]
    fn fixes_missing_flush_before_existing_fence() {
        let (_, outcome) = repair(
            "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); sfence(); }",
        );
        assert!(outcome.clean);
        // An intra flush suffices: the downstream fence orders it. The
        // engine may still add its own fence if the checker classifies the
        // final store state conservatively; what matters is cleanliness and
        // that a flush was added.
        assert!(outcome.fixes.iter().any(|f| matches!(
            f.kind,
            FixKind::IntraFlush | FixKind::IntraFlushFence
        )));
    }

    #[test]
    fn hoists_shared_helper() {
        let src = r#"
            fn update(addr: ptr, idx: int, val: int) { store1(addr, idx, val); }
            fn modify(addr: ptr) { update(addr, 0, 1); }
            fn main() {
                var vol: ptr = alloc(4096);
                var pm: ptr = pmem_map(0, 4096);
                var i: int = 0;
                while (i < 20) { modify(vol); i = i + 1; }
                modify(pm);
            }
        "#;
        let (m, outcome) = repair(src);
        assert!(outcome.clean);
        assert_eq!(outcome.interprocedural_count(), 1);
        assert!(m.function_by_name("modify_PM").is_some());
        assert!(m.function_by_name("update_PM").is_some());
        assert_eq!(outcome.hoist_level_histogram().get(&2), Some(&1));
    }

    #[test]
    fn intra_only_mode_never_hoists() {
        let src = r#"
            fn update(addr: ptr, idx: int, val: int) { store1(addr, idx, val); }
            fn main() {
                var pm: ptr = pmem_map(0, 4096);
                update(pm, 0, 1);
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions::intraprocedural_only())
            .repair_until_clean(&mut m, "main")
            .unwrap();
        assert!(outcome.clean);
        assert_eq!(outcome.interprocedural_count(), 0);
        assert!(m.function_by_name("update_PM").is_none());
    }

    #[test]
    fn trace_aa_gives_same_fixes_as_full_aa() {
        let src = r#"
            fn update(addr: ptr, idx: int, val: int) { store1(addr, idx, val); }
            fn modify(addr: ptr) { update(addr, 0, 1); }
            fn main() {
                var vol: ptr = alloc(4096);
                var pm: ptr = pmem_map(0, 4096);
                modify(vol);
                modify(pm);
            }
        "#;
        let mut m1 = pmlang::compile_one("t.pmc", src).unwrap();
        let o1 = Hippocrates::new(RepairOptions::default())
            .repair_until_clean(&mut m1, "main")
            .unwrap();
        let mut m2 = pmlang::compile_one("t.pmc", src).unwrap();
        let o2 = Hippocrates::new(RepairOptions {
            marking: MarkingMode::TraceAa,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m2, "main")
        .unwrap();
        assert!(o1.clean && o2.clean);
        let kinds1: Vec<_> = o1.fixes.iter().map(|f| f.kind.clone()).collect();
        let kinds2: Vec<_> = o2.fixes.iter().map(|f| f.kind.clone()).collect();
        assert_eq!(kinds1, kinds2);
        assert_eq!(
            pmir::display::print_module(&m1),
            pmir::display::print_module(&m2),
            "identical end binaries (§6.1)"
        );
    }

    #[test]
    fn do_no_harm_output_equivalence() {
        let src = r#"
            fn update(addr: ptr, idx: int, val: int) { store1(addr, idx, val); }
            fn main() {
                var vol: ptr = alloc(64);
                var pm: ptr = pmem_map(0, 4096);
                update(vol, 0, 3);
                update(pm, 0, 5);
                print(load1(vol, 0));
                print(load1(pm, 0));
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let before = pmvm::Vm::new(VmOptions::default()).run(&m, "main").unwrap();
        Hippocrates::new(RepairOptions::default())
            .repair_until_clean(&mut m, "main")
            .unwrap();
        let after = pmvm::Vm::new(VmOptions::default()).run(&m, "main").unwrap();
        assert_eq!(before.output, after.output, "fixes do not change behavior");
    }

    #[test]
    fn already_clean_program_untouched() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                sfence();
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let text_before = pmir::display::print_module(&m);
        let outcome = Hippocrates::new(RepairOptions::default())
            .repair_until_clean(&mut m, "main")
            .unwrap();
        assert!(outcome.clean);
        assert!(outcome.fixes.is_empty());
        assert_eq!(outcome.iterations, 0);
        assert_eq!(pmir::display::print_module(&m), text_before);
    }

    #[test]
    fn crash_point_bugs_fixed() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                crashpoint();
                store8(p, 8, 2);
            }
        "#;
        let (_, outcome) = repair(src);
        assert!(outcome.clean);
        assert!(outcome.fixes.len() >= 2);
    }

    #[test]
    fn provide_durability_regenerates_all_flushes() {
        // Fences only — the developer marked ordering points; Hippocrates
        // supplies every flush (§7).
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                store8(p, 64, 2);
                sfence();
                store8(p, 128, 3);
                sfence();
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = crate::engine::provide_durability(&mut m, "main").unwrap();
        assert!(outcome.clean);
        let run = pmvm::Vm::new(VmOptions::default()).run(&m, "main").unwrap();
        assert_eq!(run.stats.pm_flushes, 3);
        // No extra fences were needed: the developer's ordering points
        // suffice.
        assert_eq!(run.stats.fences, 2);
    }

    #[test]
    fn static_source_heals_unexecuted_branch() {
        // The acceptance scenario: the store sits on a branch the input
        // never takes, so the dynamic checker reports clean — only the
        // static checker sees the bug, and repair must converge against the
        // static verdict without ever needing an execution that reaches it.
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                var mode: int = load8(p, 128);
                if (mode) { store8(p, 0, 7); }
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let dynamic = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert!(dynamic.report.is_clean(), "dynamic misses the branch");
        assert_eq!(
            pmstatic::check_module(&m, "main").unwrap().bugs[0].kind,
            pmcheck::BugKind::MissingFlushFence
        );

        let outcome = Hippocrates::new(RepairOptions {
            bug_source: BugSource::Static,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert!(outcome.clean);
        assert!(!outcome.fixes.is_empty());
        assert_eq!(
            outcome.final_report.provenance,
            pmcheck::Provenance::Static
        );

        // Verified by re-running both checkers on the healed module.
        assert!(pmstatic::check_module(&m, "main").unwrap().is_clean());
        let redo = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert!(redo.report.is_clean());
    }

    #[test]
    fn both_sources_fix_executed_and_unexecuted_bugs() {
        // One bug on the executed path, one on the untaken branch: with
        // `BugSource::Both` a single loop heals them all, and the result
        // satisfies both checkers.
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                var mode: int = load8(p, 128);
                store8(p, 64, 1);
                if (mode) { store8(p, 0, 7); }
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions {
            bug_source: BugSource::Both,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert!(outcome.clean);
        assert!(outcome.fixes.len() >= 2, "{:?}", outcome.fixes);
        assert!(pmstatic::check_module(&m, "main").unwrap().is_clean());
        assert!(run_and_check(&m, "main", VmOptions::default())
            .unwrap()
            .report
            .is_clean());
    }

    #[test]
    fn static_source_never_executes_the_program() {
        // `print` output is observable: a static-only repair must not run
        // the program at all (detection is the only phase that could).
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                print(7);
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions {
            bug_source: BugSource::Static,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert!(outcome.clean);
        // The only evidence of execution the engine could leave is in the
        // outcome's final report: a static report carries no addresses.
        assert_eq!(outcome.final_report.provenance, pmcheck::Provenance::Static);
    }

    #[test]
    fn exploration_source_heals_unfenced_flush_reordering() {
        // The acceptance scenario for crash-state exploration: `data` is
        // flushed but not fenced before the `flag` store. Every line is
        // durable by the crashpoint, so the dynamic checker — including
        // crash-point sampling — reports clean. Only exploring partial
        // crash states (flag persisted via eviction, data write-back still
        // in flight) exposes the reordering; repair must fence the data
        // flush and re-exploration must come back clean.
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(11, 4096);
                store8(p, 64, 4242);
                clwb(p + 64);
                store8(p, 0, 1);
                clwb(p);
                sfence();
                crashpoint();
            }
            fn recover() -> int {
                var p: ptr = pmem_map(11, 4096);
                if (load8(p, 0) == 1) {
                    if (load8(p, 64) != 4242) { return 1; }
                }
                return 0;
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();

        // Blind spot: the checkpoint-based dynamic checker sees nothing,
        // and booting recovery at the declared crashpoint is consistent.
        let dynamic = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert!(dynamic.report.is_clean(), "lint-clean by construction");
        let at_crashpoint = pmvm::Vm::new(VmOptions::default().stop_at(1))
            .run(&m, "main")
            .unwrap();
        let img = at_crashpoint.machine.crash_image();
        let recov = pmvm::Vm::new(VmOptions::default().with_media(img.into_media()))
            .run(&m, "recover")
            .unwrap();
        assert_eq!(recov.return_value, Some(0), "crash-point sampling misses it");

        // Exploration-driven repair finds and heals it.
        let outcome = Hippocrates::new(RepairOptions {
            bug_source: BugSource::Exploration,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert!(outcome.clean);
        assert!(!outcome.fixes.is_empty());
        assert_eq!(
            outcome.final_report.provenance,
            pmcheck::Provenance::Exploration
        );

        // Re-exploration of the healed module is clean.
        let x = pmexplore::run_and_explore(&m, "main", &pmexplore::ExploreOptions::default())
            .unwrap();
        assert!(x.report.is_clean(), "{}", x.report.render());
    }

    #[test]
    fn exploration_matches_dynamic_on_plain_durability_bugs() {
        // Exploration subsumes, not replaces, the dynamic checker: a plain
        // missing-flush&fence bug is still found and healed under
        // `BugSource::Exploration`.
        let src = "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); }";
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions {
            bug_source: BugSource::Exploration,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert!(outcome.clean);
        assert!(!outcome.fixes.is_empty());
    }

    #[test]
    fn multiple_paths_fixed_over_iterations() {
        // The same helper reached from two call sites on PM paths: the
        // engine may need more than one iteration to cover both.
        let src = r#"
            fn update(addr: ptr, v: int) { store8(addr, 0, v); }
            fn path_a(p: ptr) { update(p, 1); }
            fn path_b(p: ptr) { update(p + 64, 2); }
            fn main() {
                var pm: ptr = pmem_map(0, 4096);
                path_a(pm);
                path_b(pm);
            }
        "#;
        let (m, outcome) = repair(src);
        assert!(outcome.clean, "{}", outcome.final_report.render());
        let run = pmvm::Vm::new(VmOptions::default()).run(&m, "main").unwrap();
        assert_eq!(run.stats.pm_stores, 2);
    }
}
