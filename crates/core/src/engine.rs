//! The repair engine: one pass (`repair_once`) and the detect→fix→verify
//! loop (`repair_until_clean`).

use crate::heuristic::{apply_hoist, choose_fix_site, CloneState};
use crate::locate::{locate, BugSite, LocateError};
use crate::options::{BugSource, MarkingMode, RepairOptions};
use crate::plan::{apply_intra_fix, plan_intra_fixes, pm_store_refs};
use crate::summary::{
    AppliedFix, Degradation, FixKind, QuarantinedFix, RepairOutcome, RepairSummary,
};
use pmalias::PmMarking;
use pmcheck::{run_and_check, Bug, CheckReport, CheckedRun, Checkpoint};
use pmir::snapshot::ModuleSnapshot;
use pmir::Module;
use pmtrace::{EventKind, Trace};
use pmvm::{VmError, VmOptions};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// The Hippocrates repair engine. See the [crate docs](crate) for the
/// pipeline description.
#[derive(Debug, Clone)]
pub struct Hippocrates {
    opts: RepairOptions,
}

/// A repair failure.
#[derive(Debug)]
pub enum RepairError {
    /// A bug could not be mapped back to the IR.
    Locate(LocateError),
    /// The program trapped during a verification run.
    Vm(VmError),
    /// The static checker failed (e.g. an unknown entry function).
    Static(pmstatic::StaticError),
    /// The module failed verification after a rewrite (an engine bug).
    Verify(pmir::verify::VerifyError),
    /// A repair pass applied no fixes while bugs remain (possibly because
    /// every remaining planned fix is quarantined).
    NoProgress {
        /// Bugs still outstanding.
        remaining: usize,
        /// What the run had committed before stalling.
        partial: Box<RepairOutcome>,
    },
    /// The iteration budget was exhausted before the report came back clean.
    IterationBudget {
        /// The configured maximum.
        max: u32,
        /// What the run had committed before stopping.
        partial: Box<RepairOutcome>,
    },
    /// The cooperative deadline/step budget tripped; everything committed so
    /// far is durable and carried in `partial`.
    BudgetExceeded {
        /// Which budget axis tripped.
        exceeded: pmtx::BudgetExceeded,
        /// What the run had committed before stopping.
        partial: Box<RepairOutcome>,
    },
    /// The options were rejected by [`RepairOptions::validate`].
    BadOptions {
        /// The human-readable reason.
        reason: String,
    },
    /// The write-ahead repair journal failed or refused to resume.
    Journal(pmtx::JournalError),
    /// Every configured bug source failed detection even after retries —
    /// there is nothing left to degrade to.
    AllSourcesFailed {
        /// Per-source failures, in configuration order.
        failures: Vec<Degradation>,
    },
}

impl RepairError {
    /// The partial [`RepairOutcome`] carried by progress/budget failures:
    /// what was committed (and quarantined) before the run stopped. Rounds
    /// already committed — including journaled ones — are never lost to
    /// these errors.
    pub fn partial_outcome(&self) -> Option<&RepairOutcome> {
        match self {
            RepairError::NoProgress { partial, .. }
            | RepairError::IterationBudget { partial, .. }
            | RepairError::BudgetExceeded { partial, .. } => Some(partial),
            _ => None,
        }
    }
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::Locate(e) => write!(f, "{e}"),
            RepairError::Vm(e) => write!(f, "verification run failed: {e}"),
            RepairError::Static(e) => write!(f, "static check failed: {e}"),
            RepairError::Verify(e) => write!(f, "rewritten module is malformed: {e}"),
            RepairError::NoProgress { remaining, partial } => {
                write!(f, "no fixes applied with {remaining} bug(s) remaining")?;
                if !partial.quarantined.is_empty() {
                    write!(f, " ({} fix(es) quarantined)", partial.quarantined.len())?;
                }
                Ok(())
            }
            RepairError::IterationBudget { max, .. } => {
                write!(f, "not clean after {max} repair iteration(s)")
            }
            RepairError::BudgetExceeded { exceeded, partial } => write!(
                f,
                "repair budget exhausted ({exceeded}); {} round(s) committed before stopping",
                partial.committed_rounds
            ),
            RepairError::BadOptions { reason } => write!(f, "invalid repair options: {reason}"),
            RepairError::Journal(e) => write!(f, "{e}"),
            RepairError::AllSourcesFailed { failures } => {
                let parts: Vec<String> = failures.iter().map(|d| d.to_string()).collect();
                write!(f, "every bug source failed: {}", parts.join("; "))
            }
        }
    }
}

impl std::error::Error for RepairError {}

impl From<LocateError> for RepairError {
    fn from(e: LocateError) -> Self {
        RepairError::Locate(e)
    }
}

impl From<VmError> for RepairError {
    fn from(e: VmError) -> Self {
        RepairError::Vm(e)
    }
}

impl From<pmtx::JournalError> for RepairError {
    fn from(e: pmtx::JournalError) -> Self {
        RepairError::Journal(e)
    }
}

/// One round's application: the fixes applied plus, parallel to them, the
/// `function#inst` site keys they target (the quarantine exclusion keys).
struct RoundApplication {
    summary: RepairSummary,
    fix_targets: Vec<Vec<String>>,
    skipped_quarantined: usize,
}

/// The quarantine/planning key of a bug site: the store instruction, named
/// stably across rounds as `function#inst`.
fn site_key(m: &Module, s: &BugSite) -> String {
    format!("{}#{}", m.function(s.func).name(), s.store.0)
}

impl Hippocrates {
    /// Creates an engine.
    pub fn new(opts: RepairOptions) -> Self {
        Hippocrates { opts }
    }

    /// The options in effect.
    pub fn options(&self) -> &RepairOptions {
        &self.opts
    }

    /// One repair pass over an existing bug report: locate → plan intra →
    /// reduce → hoist → apply. The module is modified in place and
    /// re-verified structurally. This is the non-transactional primitive —
    /// [`Hippocrates::repair_until_clean`] wraps it in snapshot/rollback
    /// rounds with quarantine filtering.
    ///
    /// # Errors
    ///
    /// Fails if localization fails or (which would indicate an engine bug)
    /// the rewritten module does not verify.
    pub fn repair_once(
        &self,
        m: &mut Module,
        trace: &Trace,
        report: &CheckReport,
    ) -> Result<RepairSummary, RepairError> {
        Ok(self.apply_round(m, trace, report, &HashSet::new())?.summary)
    }

    /// [`Hippocrates::repair_once`] with a quarantine filter: a planned fix
    /// any of whose target sites is quarantined is skipped (counted, never
    /// applied), and each applied fix reports its target site keys so a
    /// failed round can quarantine them.
    fn apply_round(
        &self,
        m: &mut Module,
        trace: &Trace,
        report: &CheckReport,
        quarantine: &HashSet<String>,
    ) -> Result<RoundApplication, RepairError> {
        let obs = &self.opts.obs;
        // Locate deduped bugs, tagging each site with I's function.
        let mut located: Vec<(Bug, BugSite)> = vec![];
        {
            let _span = obs.span("repair.locate");
            for bug in report.deduped_bugs() {
                let mut site = locate(m, bug)?;
                site.i_func = i_function(m, trace, bug);
                located.push((bug.clone(), site));
            }
        }

        // Phase 1+2: plan intraprocedural fixes with reduction, dropping
        // fixes whose targets a previously rolled-back round quarantined.
        let plan_span = obs.span("repair.plan");
        let mut skipped_quarantined = 0usize;
        let fixes: Vec<_> = plan_intra_fixes(m, trace, &located)
            .into_iter()
            .filter(|fix| {
                let hit = fix
                    .sites
                    .iter()
                    .any(|s| quarantine.contains(&site_key(m, s)));
                if hit {
                    skipped_quarantined += 1;
                }
                !hit
            })
            .collect();

        // Phase 3: hoisting decisions (only for flush-bearing fixes).
        let analysis = self.opts.hoisting.then(|| {
            let aa = self.opts.cache.alias(m, &self.opts.obs);
            let marking = match self.opts.marking {
                MarkingMode::FullAa => PmMarking::full(&aa),
                MarkingMode::TraceAa => PmMarking::from_trace(m, &aa, trace),
            };
            (aa, marking)
        });
        let pm_stores = pm_store_refs(m, trace);
        // Reuse persistent clones created by earlier iterations (§4.2.4).
        let mut state = if self.opts.reuse_subprograms {
            CloneState::discover(m)
        } else {
            CloneState::default()
        };
        let mut summary = RepairSummary::default();
        let mut fix_targets = Vec::with_capacity(fixes.len());
        drop(plan_span);

        let apply_span = obs.span("repair.apply");
        for fix in &fixes {
            fix_targets.push(fix.sites.iter().map(|s| site_key(m, s)).collect());
            let store_function = m.function(fix.func).name().to_string();
            let store_loc = fix
                .sites
                .first()
                .and_then(|s| m.function(s.func).inst(s.store).loc)
                .map(|l| pmtrace::TraceLoc {
                    file: m.file_name(l.file).to_string(),
                    line: l.line,
                    col: l.col,
                });
            let bug_kinds: Vec<String> = fix.kinds.iter().map(|k| k.to_string()).collect();

            // A fix is hoistable when it inserts a flush and has a caller.
            let decision = match (&analysis, fix.insert_flush) {
                (Some((aa, marking)), true) => fix
                    .sites
                    .iter()
                    .find(|s| !s.call_path.is_empty())
                    .map(|site| (site, choose_fix_site(m, aa, marking, site))),
                _ => None,
            };

            match decision {
                Some((site, d)) if d.depth > 0 => {
                    let site = site.clone();
                    let applied =
                        apply_hoist(m, &site, d.depth, &pm_stores, &mut state, &self.opts);
                    summary.clones_created += applied.clones_created;
                    obs.add("repair.fixes.subprogram", 1);
                    obs.add("repair.inserted.flushes", 1);
                    obs.add("repair.clones_created", applied.clones_created as u64);
                    summary.fixes.push(AppliedFix {
                        kind: FixKind::Interproc {
                            levels: applied.levels,
                            root_clone: applied.root_clone,
                        },
                        store_function,
                        store_loc,
                        bug_kinds,
                    });
                }
                _ => {
                    apply_intra_fix(m, fix, &self.opts);
                    if fix.insert_flush {
                        obs.add("repair.inserted.flushes", 1);
                    }
                    if fix.insert_fence {
                        obs.add("repair.inserted.fences", 1);
                    }
                    let kind = match (fix.insert_flush, fix.insert_fence) {
                        (true, true) => FixKind::IntraFlushFence,
                        (true, false) => FixKind::IntraFlush,
                        _ => FixKind::IntraFence,
                    };
                    obs.add(
                        match kind {
                            FixKind::IntraFlushFence => "repair.fixes.flush_fence",
                            FixKind::IntraFlush => "repair.fixes.flush",
                            _ => "repair.fixes.fence",
                        },
                        1,
                    );
                    summary.fixes.push(AppliedFix {
                        kind,
                        store_function,
                        store_loc,
                        bug_kinds,
                    });
                }
            }
        }
        drop(apply_span);

        {
            let _span = obs.span("repair.verify_module");
            pmir::verify::verify_module(m).map_err(RepairError::Verify)?;
        }
        Ok(RoundApplication {
            summary,
            fix_targets,
            skipped_quarantined,
        })
    }

    /// The watchdog armed on detection/verification runs: the configured
    /// one, or an automatic 250ms default when the fault plan injects a
    /// diverging loop (which the VM refuses to run unguarded) — clamped to
    /// the budget's remaining wall-clock time so a deadline cuts off even a
    /// run that would otherwise go unguarded.
    fn effective_watchdog(&self, budget: &pmtx::Budget) -> Option<u64> {
        let base = self.opts.watchdog_ms.or_else(|| {
            self.opts
                .fault
                .as_ref()
                .and_then(|p| p.targets(pmfault::FaultSite::VmDiverge).then_some(250))
        });
        match (base, budget.remaining_ms()) {
            (Some(w), Some(rem)) => Some(w.min(rem.max(1))),
            (None, Some(rem)) => Some(rem.max(1)),
            (w, None) => w,
        }
    }

    /// The [`VmOptions`] for one detection/verification run, with the
    /// watchdog re-clamped to the budget's remaining time.
    fn vm_opts_for(&self, budget: &pmtx::Budget) -> VmOptions {
        VmOptions {
            max_steps: self.opts.max_steps,
            watchdog_ms: self.effective_watchdog(budget),
            fault: self.opts.fault.clone(),
            obs: self.opts.obs.clone(),
            tier: self.opts.tier,
            ..VmOptions::default()
        }
    }

    /// Runs `attempt_fn` up to `1 + source_retries` times with seeded,
    /// capped exponential backoff between attempts. Returns the value plus
    /// the number of retries spent, or the [`Degradation`] to stamp when
    /// every attempt failed.
    fn with_retries<T>(
        &self,
        source: &str,
        mut attempt_fn: impl FnMut() -> Result<T, String>,
    ) -> Result<(T, u32), Degradation> {
        let obs = &self.opts.obs;
        let _span = obs.span(&format!("repair.detect.{source}"));
        let seed = self
            .opts
            .fault
            .as_ref()
            .map_or(self.opts.explore_seed, |p| p.seed);
        let mut last = String::new();
        for attempt in 0..=self.opts.source_retries {
            if attempt > 0 {
                let ms = pmfault::backoff_ms(
                    seed,
                    attempt - 1,
                    self.opts.retry_base_ms,
                    self.opts.retry_cap_ms,
                );
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            obs.add(&format!("repair.attempts.{source}"), 1);
            match attempt_fn() {
                Ok(v) => {
                    obs.add(&format!("repair.retries.{source}"), attempt as u64);
                    return Ok((v, attempt));
                }
                Err(e) => last = e,
            }
        }
        obs.add(
            &format!("repair.retries.{source}"),
            self.opts.source_retries as u64,
        );
        obs.add(&format!("repair.source_failed.{source}"), 1);
        Err(Degradation {
            source: source.to_string(),
            reason: last,
            retries: self.opts.source_retries,
        })
    }

    /// The dynamic checker with retries. Injected simulator faults observed
    /// by the run are copied into `diagnostics`.
    fn dynamic_with_retries(
        &self,
        m: &Module,
        entry: &str,
        vm_opts: &VmOptions,
        diagnostics: &mut Vec<String>,
    ) -> Result<CheckedRun, Degradation> {
        let (c, retries) = self.with_retries("dynamic", || {
            run_and_check(m, entry, vm_opts.clone())
                .map_err(|e| format!("verification run failed: {e}"))
        })?;
        if retries > 0 {
            note(
                diagnostics,
                format!("dynamic source recovered after {retries} retry(ies)"),
            );
        }
        for f in c.run.machine.injected_faults() {
            note(diagnostics, format!("injected: {f}"));
        }
        Ok(c)
    }

    /// The static checker with retries, cancellable via the budget.
    fn static_with_retries(
        &self,
        m: &Module,
        entry: &str,
        budget: &pmtx::Budget,
        diagnostics: &mut Vec<String>,
    ) -> Result<CheckReport, Degradation> {
        let (report, retries) = self.with_retries("static", || {
            // Cache hits reproduce the budgeted check's success result
            // exactly; failures (budget trips, faults) are never cached, so
            // retries always reach the real checker.
            self.opts.cache.static_report(m, entry, &self.opts.obs, || {
                pmstatic::check_module_budgeted(m, entry, &self.opts.obs, budget)
                    .map_err(|e| format!("static check failed: {e}"))
            })
        })?;
        if retries > 0 {
            note(
                diagnostics,
                format!("static source recovered after {retries} retry(ies)"),
            );
        }
        Ok(report)
    }

    /// Exercises the trace serialize→parse path that a persisted trace
    /// would travel, with the plan's trace faults applied to the bytes in
    /// between. A corrupted roundtrip is retried (the injector's hit
    /// counters persist, so `Nth` faults clear on retry); when every
    /// attempt stays corrupt the engine falls back to the in-memory trace
    /// it already holds and stamps the outcome degraded. The repair itself
    /// always proceeds from the in-memory trace — do no harm.
    fn harden_trace(
        &self,
        trace: &Trace,
        injector: &mut Option<pmfault::Injector>,
        degraded: &mut Vec<Degradation>,
        diagnostics: &mut Vec<String>,
    ) {
        let Some(inj) = injector.as_mut() else { return };
        let plan_hits_trace = inj.plan().targets(pmfault::FaultSite::TraceParse)
            || inj.plan().targets(pmfault::FaultSite::TraceAppend);
        if !plan_hits_trace || trace.is_empty() {
            return;
        }
        let _span = self.opts.obs.span("repair.trace_harden");
        let seed = inj.plan().seed;
        let mut last = String::new();
        for attempt in 0..=self.opts.source_retries {
            if attempt > 0 {
                let ms = pmfault::backoff_ms(
                    seed,
                    attempt - 1,
                    self.opts.retry_base_ms,
                    self.opts.retry_cap_ms,
                );
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            let mut text = pmtrace::log::to_log(trace);
            if let Some(kind) = inj.fire(pmfault::FaultSite::TraceAppend) {
                text = pmfault::duplicate_line(&text, seed);
                inj.record(format!("trace.append: {kind} in serialized log"));
            }
            if let Some(kind) = inj.fire(pmfault::FaultSite::TraceParse) {
                text = match kind {
                    pmfault::FaultKind::TraceTruncate => pmfault::truncate_text(&text, seed),
                    _ => pmfault::bitflip_text(&text, seed),
                };
                inj.record(format!("trace.parse: {kind} in serialized log"));
            }
            match pmtrace::log::from_log_obs(&text, &self.opts.obs) {
                Err(e) => last = format!("trace ingest failed: {e}"),
                Ok(parsed) => {
                    let warnings = parsed.validate();
                    if warnings.is_empty() {
                        if attempt > 0 {
                            note(
                                diagnostics,
                                format!("trace roundtrip recovered after {attempt} retry(ies)"),
                            );
                        }
                        return;
                    }
                    let parts: Vec<String> = warnings.iter().map(|w| w.to_string()).collect();
                    last = format!("trace validation failed: {}", parts.join("; "));
                }
            }
        }
        note(
            diagnostics,
            "trace ingest corrupted; proceeding with the in-memory trace".to_string(),
        );
        note_degraded(
            degraded,
            Degradation {
                source: "trace".to_string(),
                reason: last,
                retries: self.opts.source_retries,
            },
        );
    }

    /// Crash-state exploration with retries. Faulted candidates reported
    /// by the pool (contained worker panics, oracle crashes) become
    /// diagnostics plus a partial-coverage degradation — the surviving
    /// candidates' findings still feed the repair.
    fn exploration_with_retries(
        &self,
        m: &Module,
        entry: &str,
        budget: &pmtx::Budget,
        degraded: &mut Vec<Degradation>,
        diagnostics: &mut Vec<String>,
    ) -> Result<(CheckReport, Trace), Degradation> {
        let x_opts = pmexplore::ExploreOptions {
            budget: self.opts.explore_budget,
            seed: self.opts.explore_seed,
            jobs: self.opts.explore_jobs,
            max_recovery_steps: self.opts.max_steps,
            fault: self.opts.fault.clone(),
            recovery_watchdog_ms: self.effective_watchdog(budget),
            obs: self.opts.obs.clone(),
            cancel: budget.clone(),
            tier: self.opts.tier,
            ..pmexplore::ExploreOptions::default()
        };
        let (x, retries) = self.with_retries("exploration", || {
            pmexplore::run_and_explore(m, entry, &x_opts)
                .map_err(|e| format!("exploration replay failed: {e}"))
        })?;
        if retries > 0 {
            note(
                diagnostics,
                format!("exploration source recovered after {retries} retry(ies)"),
            );
        }
        if !x.report.diagnostics.is_empty() {
            for d in &x.report.diagnostics {
                note(diagnostics, format!("explore: {d}"));
            }
            note_degraded(
                degraded,
                Degradation {
                    source: "exploration".to_string(),
                    reason: format!(
                        "{} candidate(s) faulted ({} oracle crash(es), {} worker panic(s)); \
                         partial coverage",
                        x.report.diagnostics.len(),
                        x.report.stats.oracle_crashes,
                        x.report.stats.worker_panics
                    ),
                    retries: 0,
                },
            );
        }
        let dynamic = {
            let _span = self.opts.obs.span("check.trace");
            pmcheck::check_trace(&x.trace)
        };
        let explored = x.report.to_check_report(&x.trace);
        let mut merged = merge_reports(dynamic, explored);
        merged.provenance = pmcheck::Provenance::Exploration;
        Ok((merged, x.trace))
    }

    /// Runs the configured bug finder(s) once: the dynamic checker, the
    /// static checker, both, or the dynamic checker plus crash-state
    /// exploration (the union of their reports, deduplicated by store). The
    /// trace is empty when only the static checker ran —
    /// downstream consumers (fence anchoring, `I`-function lookup, trace
    /// PM-marking) all degrade gracefully to their conservative fallbacks.
    ///
    /// Each source gets `1 + source_retries` attempts with seeded backoff;
    /// a source that never succeeds is abandoned for the run (stamped in
    /// `degraded`) as long as another source survives. Only when *every*
    /// configured source fails does detection error out, with
    /// [`RepairError::AllSourcesFailed`] naming each failure.
    #[allow(clippy::too_many_arguments)]
    fn detect(
        &self,
        m: &Module,
        entry: &str,
        vm_opts: &VmOptions,
        budget: &pmtx::Budget,
        injector: &mut Option<pmfault::Injector>,
        degraded: &mut Vec<Degradation>,
        diagnostics: &mut Vec<String>,
    ) -> Result<(CheckReport, Trace), RepairError> {
        let _span = self.opts.obs.span("repair.detect");
        match self.opts.bug_source {
            BugSource::Dynamic => {
                let c = self
                    .dynamic_with_retries(m, entry, vm_opts, diagnostics)
                    .map_err(|d| RepairError::AllSourcesFailed { failures: vec![d] })?;
                self.harden_trace(&c.trace, injector, degraded, diagnostics);
                Ok((c.report, c.trace))
            }
            BugSource::Static => {
                let report = self
                    .static_with_retries(m, entry, budget, diagnostics)
                    .map_err(|d| RepairError::AllSourcesFailed { failures: vec![d] })?;
                Ok((report, Trace::default()))
            }
            BugSource::Both => {
                let dynamic = self.dynamic_with_retries(m, entry, vm_opts, diagnostics);
                let stat = self.static_with_retries(m, entry, budget, diagnostics);
                match (dynamic, stat) {
                    (Ok(c), Ok(s)) => {
                        self.harden_trace(&c.trace, injector, degraded, diagnostics);
                        Ok((merge_reports(c.report, s), c.trace))
                    }
                    (Ok(c), Err(d)) => {
                        note(
                            diagnostics,
                            format!("proceeding on the dynamic checker alone: {d}"),
                        );
                        note_degraded(degraded, d);
                        self.harden_trace(&c.trace, injector, degraded, diagnostics);
                        Ok((c.report, c.trace))
                    }
                    (Err(d), Ok(s)) => {
                        note(
                            diagnostics,
                            format!("proceeding on the static checker alone: {d}"),
                        );
                        note_degraded(degraded, d);
                        Ok((s, Trace::default()))
                    }
                    (Err(d1), Err(d2)) => Err(RepairError::AllSourcesFailed {
                        failures: vec![d1, d2],
                    }),
                }
            }
            BugSource::Exploration => {
                let (report, trace) = self
                    .exploration_with_retries(m, entry, budget, degraded, diagnostics)
                    .map_err(|d| RepairError::AllSourcesFailed { failures: vec![d] })?;
                self.harden_trace(&trace, injector, degraded, diagnostics);
                Ok((report, trace))
            }
        }
    }

    /// The inverse pass: after a clean repair, strip provably-redundant
    /// flushes and sinkable fences with the `pmredund` optimizer. Every
    /// transactional round is re-verified (dynamic checker + crash-state
    /// exploration, byte-identical output) and rolls back byte-identically
    /// on any regression, so this can never undo the repair. An optimizer
    /// failure is a diagnostic, never a repair failure — the healed module
    /// is already correct.
    fn optimize_after_clean(
        &self,
        m: &mut Module,
        entry: &str,
        diagnostics: &mut Vec<String>,
    ) -> Option<crate::summary::OptimizeStats> {
        if !self.opts.optimize_after {
            return None;
        }
        let _span = self.opts.obs.span("repair.optimize");
        let o = pmredund::OptimizeOptions {
            entry: entry.to_string(),
            explore_budget: self.opts.explore_budget,
            explore_seed: self.opts.explore_seed,
            explore_jobs: self.opts.explore_jobs,
            obs: self.opts.obs.clone(),
            tier: self.opts.tier,
            ..pmredund::OptimizeOptions::default()
        };
        match pmredund::optimize_module(m, &o) {
            Ok(out) => {
                if !out.applied.is_empty() || !out.quarantined.is_empty() {
                    note(diagnostics, format!("optimizer: {out}"));
                }
                Some(crate::summary::OptimizeStats::from_outcome(&out))
            }
            Err(e) => {
                note(diagnostics, format!("optimizer skipped: {e}"));
                None
            }
        }
    }

    /// The full loop: run the bug finder, repair, and re-verify until the
    /// report is clean (paper Fig. 2 plus the §6.1 validation step). With
    /// [`BugSource::Static`] the loop converges against the static verdict
    /// without ever executing the program; with [`BugSource::Both`] it is
    /// only done when both checkers come back clean.
    ///
    /// Every round is a *transaction*: fixes are applied against a module
    /// snapshot and the round commits only when re-verification shows the
    /// deduped bug set strictly shrank with no new members. A failed round
    /// rolls back byte-identically and its fixes land in the quarantine
    /// ledger, excluded from later planning. With a journal configured,
    /// committed rounds are made durable (write-ahead) before the loop moves
    /// on, and `resume` replays them idempotently.
    ///
    /// # Errors
    ///
    /// Propagates [`RepairError`]; notably [`RepairError::IterationBudget`]
    /// when the program is still buggy after `max_iterations`, and
    /// [`RepairError::BudgetExceeded`] when the deadline/step budget trips —
    /// both carry the partial-but-committed outcome.
    pub fn repair_until_clean(
        &self,
        m: &mut Module,
        entry: &str,
    ) -> Result<RepairOutcome, RepairError> {
        if let Err(reason) = self.opts.validate() {
            return Err(RepairError::BadOptions { reason });
        }
        let obs = self.opts.obs.clone();
        let budget = pmtx::Budget::new(self.opts.deadline_ms, self.opts.step_quota);
        // The engine-level injector owns the trace-fault and commit-veto hit
        // counters so `Nth` faults clear across retries; VM-level faults
        // travel inside the per-run `VmOptions` with a fresh injector each.
        let mut injector = self
            .opts
            .fault
            .clone()
            .map(|p| pmfault::Injector::with_obs(p, obs.clone()));
        let mut degraded = vec![];
        let mut diagnostics = vec![];
        let mut fixes: Vec<AppliedFix> = vec![];
        let mut clones = 0usize;
        let mut quarantined: Vec<QuarantinedFix> = vec![];
        let mut quarantine_keys: HashSet<String> = HashSet::new();
        let mut committed_rounds = 0u32;
        let mut replayed_rounds = 0u32;
        let mut attempts = 0u32; // rounds executed in this process
        let mut new_commits = 0u32; // rounds committed in this process
                                    // Worst severity ever observed per store site across the campaign's
                                    // kept states — the harm baseline. Sampled detection (exploration in
                                    // particular) is not monotone: a bug a later pass resurfaces is only
                                    // *harm* if no earlier pass ever saw that site at that severity.
        let mut seen_sev: HashMap<String, u32> = HashMap::new();

        // Write-ahead journal: resume replays committed rounds idempotently;
        // otherwise an existing file is truncated and started fresh.
        let mut journal: Option<pmtx::Journal> = None;
        if let Some(path) = &self.opts.journal_path {
            let header =
                pmtx::JournalHeader::new(pmir::snapshot::digest_hex(m), self.opts.digest_hex());
            if self.opts.resume && path.exists() {
                let resumed = pmtx::Journal::resume(path, &header)?;
                for d in resumed.diagnostics {
                    note(&mut diagnostics, format!("journal: {d}"));
                }
                let j = resumed.journal;
                for rec in j.rounds() {
                    let patch = pmir::ModulePatch {
                        base_digest: rec.base_digest.clone(),
                        after_digest: rec.after_digest.clone(),
                        after_text: rec.patch.clone(),
                    };
                    patch.apply(m).map_err(|e| {
                        RepairError::Journal(pmtx::JournalError::Corrupted {
                            line: rec.round as usize + 1,
                            reason: format!("round {} does not replay: {e}", rec.round),
                        })
                    })?;
                    for payload in &rec.fixes {
                        let fix: AppliedFix = serde_json::from_str(payload).map_err(|e| {
                            RepairError::Journal(pmtx::JournalError::Corrupted {
                                line: rec.round as usize + 1,
                                reason: format!(
                                    "round {} fix record does not parse: {e}",
                                    rec.round
                                ),
                            })
                        })?;
                        fixes.push(fix);
                    }
                    clones += rec.clones as usize;
                }
                replayed_rounds = j.rounds().len() as u32;
                committed_rounds = replayed_rounds;
                if replayed_rounds > 0 {
                    obs.add("journal.replayed_rounds", u64::from(replayed_rounds));
                    note(
                        &mut diagnostics,
                        format!(
                            "resumed from journal: replayed {replayed_rounds} committed round(s)"
                        ),
                    );
                }
                journal = Some(j);
            } else {
                if self.opts.resume {
                    note(
                        &mut diagnostics,
                        format!(
                            "journal: nothing to resume at {}; starting fresh",
                            path.display()
                        ),
                    );
                }
                journal = Some(pmtx::Journal::create(path, header)?);
            }
        }

        // Initial detection (one budget step).
        if let Err(exceeded) = budget.charge(1) {
            drain_injected(&injector, &mut diagnostics);
            return Err(RepairError::BudgetExceeded {
                exceeded,
                partial: Box::new(RepairOutcome {
                    clean: false,
                    fixes,
                    iterations: replayed_rounds,
                    final_report: CheckReport::default(),
                    clones_created: clones,
                    degraded,
                    diagnostics,
                    quarantined,
                    committed_rounds,
                    replayed_rounds,
                    optimized: None,
                }),
            });
        }
        obs.add("repair.iterations", 1);
        let first = self.detect(
            m,
            entry,
            &self.vm_opts_for(&budget),
            &budget,
            &mut injector,
            &mut degraded,
            &mut diagnostics,
        );
        let (mut report, mut trace) = match first {
            Ok(v) => v,
            Err(e) => {
                return Err(match budget.check() {
                    Err(exceeded) => {
                        note(
                            &mut diagnostics,
                            format!("detection aborted by budget: {e}"),
                        );
                        drain_injected(&injector, &mut diagnostics);
                        RepairError::BudgetExceeded {
                            exceeded,
                            partial: Box::new(RepairOutcome {
                                clean: false,
                                fixes,
                                iterations: replayed_rounds,
                                final_report: CheckReport::default(),
                                clones_created: clones,
                                degraded,
                                diagnostics,
                                quarantined,
                                committed_rounds,
                                replayed_rounds,
                                optimized: None,
                            }),
                        }
                    }
                    Ok(()) => e,
                })
            }
        };

        loop {
            if report.is_clean() {
                if obs.is_enabled() && !trace.is_empty() {
                    // Telemetry-only audit: exercise the portable-log
                    // roundtrip once so the trace-ingest stage reports its
                    // cost for this module. Never runs with obs disabled.
                    let _ = pmtrace::log::from_log_obs(&pmtrace::log::to_log(&trace), &obs);
                }
                drain_injected(&injector, &mut diagnostics);
                let optimized = self.optimize_after_clean(m, entry, &mut diagnostics);
                return Ok(RepairOutcome {
                    clean: true,
                    fixes,
                    iterations: replayed_rounds + attempts,
                    final_report: report,
                    clones_created: clones,
                    degraded,
                    diagnostics,
                    quarantined,
                    committed_rounds,
                    replayed_rounds,
                    optimized,
                });
            }
            if let Err(exceeded) = budget.check() {
                drain_injected(&injector, &mut diagnostics);
                return Err(RepairError::BudgetExceeded {
                    exceeded,
                    partial: Box::new(RepairOutcome {
                        clean: false,
                        fixes,
                        iterations: replayed_rounds + attempts,
                        final_report: report,
                        clones_created: clones,
                        degraded,
                        diagnostics,
                        quarantined,
                        committed_rounds,
                        replayed_rounds,
                        optimized: None,
                    }),
                });
            }
            if attempts >= self.opts.max_iterations {
                drain_injected(&injector, &mut diagnostics);
                return Err(RepairError::IterationBudget {
                    max: self.opts.max_iterations,
                    partial: Box::new(RepairOutcome {
                        clean: false,
                        fixes,
                        iterations: replayed_rounds + attempts,
                        final_report: report,
                        clones_created: clones,
                        degraded,
                        diagnostics,
                        quarantined,
                        committed_rounds,
                        replayed_rounds,
                        optimized: None,
                    }),
                });
            }
            attempts += 1;
            let _round_span = obs.span("tx.round");

            // Apply this round's fixes against a snapshot.
            let snapshot = ModuleSnapshot::capture(m);
            let app = match self.apply_round(m, &trace, &report, &quarantine_keys) {
                Ok(a) => a,
                Err(e) => {
                    // Do no harm even on engine failure: never leave a
                    // half-applied round in the module.
                    snapshot.restore(m);
                    return Err(e);
                }
            };
            if app.skipped_quarantined > 0 {
                note(
                    &mut diagnostics,
                    format!(
                        "{} planned fix(es) skipped: their target sites are quarantined",
                        app.skipped_quarantined
                    ),
                );
            }
            if app.summary.fixes.is_empty() {
                drain_injected(&injector, &mut diagnostics);
                return Err(RepairError::NoProgress {
                    remaining: report.deduped_bugs().len(),
                    partial: Box::new(RepairOutcome {
                        clean: false,
                        fixes,
                        iterations: replayed_rounds + attempts,
                        final_report: report,
                        clones_created: clones,
                        degraded,
                        diagnostics,
                        quarantined,
                        committed_rounds,
                        replayed_rounds,
                        optimized: None,
                    }),
                });
            }

            // Re-verify: the round commits only if it did no harm (no bug at
            // a previously-clean store site, no site moved up the repair
            // ladder) and made progress (the per-site severity sum fell, or
            // held while the call-path-refined bug set strictly shrank).
            let _ = budget.charge(1);
            obs.add("repair.iterations", 1);
            let reverify_started = std::time::Instant::now();
            let reverified = self.detect(
                m,
                entry,
                &self.vm_opts_for(&budget),
                &budget,
                &mut injector,
                &mut degraded,
                &mut diagnostics,
            );
            obs.gauge_add(
                "repair.reverify_ms",
                reverify_started.elapsed().as_secs_f64() * 1e3,
            );
            let (report2, trace2) = match reverified {
                Ok(v) => v,
                Err(e) => {
                    snapshot.restore(m);
                    obs.add("tx.rolled_back", 1);
                    return Err(match budget.check() {
                        Err(exceeded) => {
                            note(
                                &mut diagnostics,
                                format!("re-verification aborted by budget: {e}"),
                            );
                            drain_injected(&injector, &mut diagnostics);
                            RepairError::BudgetExceeded {
                                exceeded,
                                partial: Box::new(RepairOutcome {
                                    clean: false,
                                    fixes,
                                    iterations: replayed_rounds + attempts,
                                    final_report: report,
                                    clones_created: clones,
                                    degraded,
                                    diagnostics,
                                    quarantined,
                                    committed_rounds,
                                    replayed_rounds,
                                    optimized: None,
                                }),
                            }
                        }
                        Ok(()) => e,
                    });
                }
            };

            // Harm is judged per store site on the repair ladder
            // (`BugKind::repair_rank`): a site never observed buggy must
            // stay clean, and no site's worst bug may climb above anything
            // the campaign has seen for it. Site identity is the store's
            // source location, which survives both the instruction
            // renumbering that inserted flushes/fences cause and the cloning
            // an interprocedural fix causes.
            let before_sev = report.site_severities();
            let after_sev = report2.site_severities();
            for (site, &rank) in &before_sev {
                let e = seen_sev.entry(site.clone()).or_insert(0);
                if rank > *e {
                    *e = rank;
                }
            }
            let new_bugs = after_sev
                .iter()
                .filter(|(site, &rank)| seen_sev.get(*site).is_none_or(|&b| rank > b))
                .count();
            // Progress is the same ladder read downward — the severity sum
            // strictly falls (a flush landed, a fence landed, a site healed)
            // — with one refinement: an interprocedural fix heals one *call
            // path* into a buggy store at a time, so a round that holds the
            // severity sum while strictly shrinking the call-path-refined
            // bug set (`path_key_set`) also counts. The pair (severity sum,
            // path count) falls lexicographically on every commit, so a
            // committing campaign terminates.
            let sev_before: u32 = before_sev.values().sum();
            let sev_after: u32 = after_sev.values().sum();
            let delta_ok = new_bugs == 0
                && (sev_after < sev_before
                    || (sev_after == sev_before
                        && report2.path_key_set().len() < report.path_key_set().len()));

            // The commit itself can be vetoed by fault injection (modeling a
            // failed journal append); a vetoed commit is retried with the
            // usual seeded backoff before the round is given up on.
            let mut veto = false;
            if delta_ok {
                if let Some(inj) = injector.as_mut() {
                    if inj.plan().targets(pmfault::FaultSite::TxCommit) {
                        let seed = inj.plan().seed;
                        for attempt in 0..=self.opts.source_retries {
                            if attempt > 0 {
                                let ms = pmfault::backoff_ms(
                                    seed,
                                    attempt - 1,
                                    self.opts.retry_base_ms,
                                    self.opts.retry_cap_ms,
                                );
                                std::thread::sleep(std::time::Duration::from_millis(ms));
                            }
                            match inj.fire(pmfault::FaultSite::TxCommit) {
                                Some(kind) => {
                                    inj.record(format!("tx.commit: {kind}"));
                                    veto = true;
                                }
                                None => {
                                    if attempt > 0 {
                                        note(
                                            &mut diagnostics,
                                            format!(
                                                "commit succeeded after {attempt} vetoed attempt(s)"
                                            ),
                                        );
                                    }
                                    veto = false;
                                    break;
                                }
                            }
                        }
                    }
                }
            }

            if delta_ok && !veto {
                let commit_started = std::time::Instant::now();
                let _commit_span = obs.span("tx.commit");
                if let Some(j) = journal.as_mut() {
                    let patch = pmir::ModulePatch::between(&snapshot, m);
                    let mut fix_payloads = Vec::with_capacity(app.summary.fixes.len());
                    for f in &app.summary.fixes {
                        let payload = serde_json::to_string(f).map_err(|e| {
                            RepairError::Journal(pmtx::JournalError::Io {
                                path: j.path().to_path_buf(),
                                error: std::io::Error::other(format!(
                                    "fix record serialization failed: {e}"
                                )),
                            })
                        })?;
                        fix_payloads.push(payload);
                    }
                    j.append(pmtx::RoundRecord {
                        round: j.next_round(),
                        base_digest: patch.base_digest,
                        after_digest: patch.after_digest,
                        report_digest: report2.digest_hex(),
                        clones: app.summary.clones_created as u64,
                        fixes: fix_payloads,
                        patch: patch.after_text,
                    })?;
                }
                obs.add("tx.committed", 1);
                obs.gauge_add("tx.commit_ms", commit_started.elapsed().as_secs_f64() * 1e3);
                committed_rounds += 1;
                new_commits += 1;
                fixes.extend(app.summary.fixes);
                clones += app.summary.clones_created;
                if self.opts.crash_after_commit == Some(new_commits) {
                    // Deterministic SIGKILL stand-in for the kill-and-resume
                    // machinery: die without unwinding, right after the
                    // journal append became durable.
                    std::process::abort();
                }
                report = report2;
                trace = trace2;
            } else {
                let rollback_started = std::time::Instant::now();
                let _rb_span = obs.span("tx.rollback");
                snapshot.restore(m);
                obs.add("tx.rolled_back", 1);
                obs.gauge_add(
                    "tx.rollback_ms",
                    rollback_started.elapsed().as_secs_f64() * 1e3,
                );
                let reason = if veto {
                    format!(
                        "commit vetoed by fault injection after {} retry(ies)",
                        self.opts.source_retries
                    )
                } else if new_bugs > 0 {
                    format!(
                        "re-verification found {new_bugs} new or worsened bug site(s) — the round did harm"
                    )
                } else {
                    "re-verification did not reduce bug severity or unfixed call paths".to_string()
                };
                note(
                    &mut diagnostics,
                    format!(
                        "round rolled back ({reason}); {} fix(es) quarantined",
                        app.summary.fixes.len()
                    ),
                );
                let (bugs_before, bugs_after) =
                    (report.deduped_bugs().len(), report2.deduped_bugs().len());
                for (fix, targets) in app.summary.fixes.into_iter().zip(app.fix_targets) {
                    for k in &targets {
                        quarantine_keys.insert(k.clone());
                    }
                    obs.add("tx.quarantined", 1);
                    quarantined.push(QuarantinedFix {
                        fix,
                        targets,
                        reason: reason.clone(),
                        bugs_before,
                        bugs_after,
                        new_bugs,
                    });
                }
                // `report`/`trace` stay the pre-round pair: the module is
                // byte-identical to what produced them.
            }
        }
    }
}

/// Surfaces every fault the engine-level injector recorded into the
/// diagnostics (outcome- and error-path alike).
fn drain_injected(injector: &Option<pmfault::Injector>, diagnostics: &mut Vec<String>) {
    if let Some(inj) = injector {
        for f in inj.injected() {
            note(diagnostics, format!("injected: {f}"));
        }
    }
}

/// Appends `msg` to the diagnostics unless an identical line is already
/// present — detection re-runs every iteration, and a persistent injected
/// fault would otherwise repeat its line once per pass.
fn note(diagnostics: &mut Vec<String>, msg: String) {
    if !diagnostics.contains(&msg) {
        diagnostics.push(msg);
    }
}

/// Stamps a degradation unless the same source already degraded for the
/// same reason (a source that is down stays down across iterations).
fn note_degraded(degraded: &mut Vec<Degradation>, d: Degradation) {
    if !degraded
        .iter()
        .any(|e| e.source == d.source && e.reason == d.reason)
    {
        degraded.push(d);
    }
}

/// Unions a dynamic and a static report for [`BugSource::Both`]: static
/// bugs at stores the dynamic checker already flagged are dropped (the
/// dynamic entry carries the richer trace context), and the rest — the
/// static checker's unexecuted-path findings — are appended. Counters stay
/// the dynamic run's.
fn merge_reports(mut dynamic: CheckReport, stat: CheckReport) -> CheckReport {
    let seen: std::collections::HashSet<_> = dynamic
        .bugs
        .iter()
        .filter_map(|b| b.store_at.clone())
        .collect();
    for b in stat.bugs {
        if b.store_at.as_ref().is_none_or(|at| !seen.contains(at)) {
            dynamic.bugs.push(b);
        }
    }
    dynamic
}

/// The paper's §7 "automatically providing durability": given a program in
/// which the developer wrote *only* the ordering points (memory fences) and
/// no flushes at all, Hippocrates regenerates every flush — this is exactly
/// how the §6.3 Redis port was produced. A thin, intention-revealing
/// wrapper over [`Hippocrates::repair_until_clean`].
///
/// # Errors
///
/// Propagates [`RepairError`] from the underlying loop.
pub fn provide_durability(module: &mut Module, entry: &str) -> Result<RepairOutcome, RepairError> {
    Hippocrates::new(RepairOptions::default()).repair_until_clean(module, entry)
}

/// Determines the function containing the durability requirement `I` for a
/// bug: the innermost frame of the matching crash point, or the outermost
/// frame of the store's stack for program-end checkpoints.
fn i_function(m: &Module, trace: &Trace, bug: &Bug) -> Option<pmir::FuncId> {
    match bug.checkpoint {
        Checkpoint::CrashPoint(n) => {
            let mut seen = 0u64;
            for e in &trace.events {
                if matches!(e.kind, EventKind::CrashPoint) {
                    seen += 1;
                    if seen == n {
                        return e
                            .stack
                            .first()
                            .and_then(|f| m.function_by_name(&f.function));
                    }
                }
            }
            None
        }
        Checkpoint::ProgramEnd => bug
            .stack
            .last()
            .and_then(|f| m.function_by_name(&f.function)),
        // Exploration checkpoints are hypothetical crashes at a trace
        // position; the durability requirement is rooted where that event
        // executed.
        Checkpoint::Event(seq) => trace
            .events
            .iter()
            .find(|e| e.seq == seq)
            .and_then(|e| e.stack.first())
            .and_then(|f| m.function_by_name(&f.function))
            .or_else(|| {
                bug.stack
                    .last()
                    .and_then(|f| m.function_by_name(&f.function))
            }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repair(src: &str) -> (Module, RepairOutcome) {
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions::default())
            .repair_until_clean(&mut m, "main")
            .unwrap();
        (m, outcome)
    }

    #[test]
    fn fixes_missing_flush_fence() {
        let (_, outcome) = repair("fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); }");
        assert!(outcome.clean);
        assert_eq!(outcome.fixes.len(), 1);
        assert_eq!(outcome.fixes[0].kind, FixKind::IntraFlushFence);
    }

    #[test]
    fn fixes_missing_fence_at_flush() {
        let (_, outcome) =
            repair("fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); clwb(p); }");
        assert!(outcome.clean);
        assert_eq!(outcome.fixes.len(), 1);
        assert_eq!(outcome.fixes[0].kind, FixKind::IntraFence);
    }

    #[test]
    fn fixes_missing_flush_before_existing_fence() {
        let (_, outcome) =
            repair("fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); sfence(); }");
        assert!(outcome.clean);
        // An intra flush suffices: the downstream fence orders it. The
        // engine may still add its own fence if the checker classifies the
        // final store state conservatively; what matters is cleanliness and
        // that a flush was added.
        assert!(outcome
            .fixes
            .iter()
            .any(|f| matches!(f.kind, FixKind::IntraFlush | FixKind::IntraFlushFence)));
    }

    #[test]
    fn hoists_shared_helper() {
        let src = r#"
            fn update(addr: ptr, idx: int, val: int) { store1(addr, idx, val); }
            fn modify(addr: ptr) { update(addr, 0, 1); }
            fn main() {
                var vol: ptr = alloc(4096);
                var pm: ptr = pmem_map(0, 4096);
                var i: int = 0;
                while (i < 20) { modify(vol); i = i + 1; }
                modify(pm);
            }
        "#;
        let (m, outcome) = repair(src);
        assert!(outcome.clean);
        assert_eq!(outcome.interprocedural_count(), 1);
        assert!(m.function_by_name("modify_PM").is_some());
        assert!(m.function_by_name("update_PM").is_some());
        assert_eq!(outcome.hoist_level_histogram().get(&2), Some(&1));
    }

    #[test]
    fn intra_only_mode_never_hoists() {
        let src = r#"
            fn update(addr: ptr, idx: int, val: int) { store1(addr, idx, val); }
            fn main() {
                var pm: ptr = pmem_map(0, 4096);
                update(pm, 0, 1);
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions::intraprocedural_only())
            .repair_until_clean(&mut m, "main")
            .unwrap();
        assert!(outcome.clean);
        assert_eq!(outcome.interprocedural_count(), 0);
        assert!(m.function_by_name("update_PM").is_none());
    }

    #[test]
    fn trace_aa_gives_same_fixes_as_full_aa() {
        let src = r#"
            fn update(addr: ptr, idx: int, val: int) { store1(addr, idx, val); }
            fn modify(addr: ptr) { update(addr, 0, 1); }
            fn main() {
                var vol: ptr = alloc(4096);
                var pm: ptr = pmem_map(0, 4096);
                modify(vol);
                modify(pm);
            }
        "#;
        let mut m1 = pmlang::compile_one("t.pmc", src).unwrap();
        let o1 = Hippocrates::new(RepairOptions::default())
            .repair_until_clean(&mut m1, "main")
            .unwrap();
        let mut m2 = pmlang::compile_one("t.pmc", src).unwrap();
        let o2 = Hippocrates::new(RepairOptions {
            marking: MarkingMode::TraceAa,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m2, "main")
        .unwrap();
        assert!(o1.clean && o2.clean);
        let kinds1: Vec<_> = o1.fixes.iter().map(|f| f.kind.clone()).collect();
        let kinds2: Vec<_> = o2.fixes.iter().map(|f| f.kind.clone()).collect();
        assert_eq!(kinds1, kinds2);
        assert_eq!(
            pmir::display::print_module(&m1),
            pmir::display::print_module(&m2),
            "identical end binaries (§6.1)"
        );
    }

    #[test]
    fn do_no_harm_output_equivalence() {
        let src = r#"
            fn update(addr: ptr, idx: int, val: int) { store1(addr, idx, val); }
            fn main() {
                var vol: ptr = alloc(64);
                var pm: ptr = pmem_map(0, 4096);
                update(vol, 0, 3);
                update(pm, 0, 5);
                print(load1(vol, 0));
                print(load1(pm, 0));
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let before = pmvm::Vm::new(VmOptions::default()).run(&m, "main").unwrap();
        Hippocrates::new(RepairOptions::default())
            .repair_until_clean(&mut m, "main")
            .unwrap();
        let after = pmvm::Vm::new(VmOptions::default()).run(&m, "main").unwrap();
        assert_eq!(before.output, after.output, "fixes do not change behavior");
    }

    #[test]
    fn already_clean_program_untouched() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                sfence();
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let text_before = pmir::display::print_module(&m);
        let outcome = Hippocrates::new(RepairOptions::default())
            .repair_until_clean(&mut m, "main")
            .unwrap();
        assert!(outcome.clean);
        assert!(outcome.fixes.is_empty());
        assert_eq!(outcome.iterations, 0);
        assert_eq!(pmir::display::print_module(&m), text_before);
    }

    #[test]
    fn optimize_after_strips_redundant_barriers_and_keeps_behavior() {
        // Already-clean module with a duplicated flush+fence pair: the
        // repair loop has nothing to do, then the inverse pass strips the
        // redundancy without changing observable behavior.
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                sfence();
                clwb(p);
                sfence();
                print(load8(p, 0));
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let before = pmvm::Vm::new(VmOptions::default()).run(&m, "main").unwrap();
        let outcome = Hippocrates::new(RepairOptions {
            optimize_after: true,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert!(outcome.clean);
        let stats = outcome
            .optimized
            .expect("optimizer ran on the clean module");
        assert!(stats.flushes_removed >= 1, "{stats}");
        assert!(stats.fences_sunk >= 1, "{stats}");
        let after = pmvm::Vm::new(VmOptions::default()).run(&m, "main").unwrap();
        assert_eq!(before.output, after.output, "behavior preserved");
        assert!(
            after.stats.pm_flushes < before.stats.pm_flushes
                && after.stats.fences < before.stats.fences,
            "fewer barriers execute after optimization"
        );
    }

    #[test]
    fn crash_point_bugs_fixed() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                crashpoint();
                store8(p, 8, 2);
            }
        "#;
        let (_, outcome) = repair(src);
        assert!(outcome.clean);
        assert!(outcome.fixes.len() >= 2);
    }

    #[test]
    fn provide_durability_regenerates_all_flushes() {
        // Fences only — the developer marked ordering points; Hippocrates
        // supplies every flush (§7).
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                store8(p, 64, 2);
                sfence();
                store8(p, 128, 3);
                sfence();
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = crate::engine::provide_durability(&mut m, "main").unwrap();
        assert!(outcome.clean);
        let run = pmvm::Vm::new(VmOptions::default()).run(&m, "main").unwrap();
        assert_eq!(run.stats.pm_flushes, 3);
        // No extra fences were needed: the developer's ordering points
        // suffice.
        assert_eq!(run.stats.fences, 2);
    }

    #[test]
    fn static_source_heals_unexecuted_branch() {
        // The acceptance scenario: the store sits on a branch the input
        // never takes, so the dynamic checker reports clean — only the
        // static checker sees the bug, and repair must converge against the
        // static verdict without ever needing an execution that reaches it.
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                var mode: int = load8(p, 128);
                if (mode) { store8(p, 0, 7); }
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let dynamic = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert!(dynamic.report.is_clean(), "dynamic misses the branch");
        assert_eq!(
            pmstatic::check_module(&m, "main").unwrap().bugs[0].kind,
            pmcheck::BugKind::MissingFlushFence
        );

        let outcome = Hippocrates::new(RepairOptions {
            bug_source: BugSource::Static,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert!(outcome.clean);
        assert!(!outcome.fixes.is_empty());
        assert_eq!(outcome.final_report.provenance, pmcheck::Provenance::Static);

        // Verified by re-running both checkers on the healed module.
        assert!(pmstatic::check_module(&m, "main").unwrap().is_clean());
        let redo = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert!(redo.report.is_clean());
    }

    #[test]
    fn both_sources_fix_executed_and_unexecuted_bugs() {
        // One bug on the executed path, one on the untaken branch: with
        // `BugSource::Both` a single loop heals them all, and the result
        // satisfies both checkers.
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                var mode: int = load8(p, 128);
                store8(p, 64, 1);
                if (mode) { store8(p, 0, 7); }
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions {
            bug_source: BugSource::Both,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert!(outcome.clean);
        assert!(outcome.fixes.len() >= 2, "{:?}", outcome.fixes);
        assert!(pmstatic::check_module(&m, "main").unwrap().is_clean());
        assert!(run_and_check(&m, "main", VmOptions::default())
            .unwrap()
            .report
            .is_clean());
    }

    #[test]
    fn static_source_never_executes_the_program() {
        // `print` output is observable: a static-only repair must not run
        // the program at all (detection is the only phase that could).
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                print(7);
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions {
            bug_source: BugSource::Static,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert!(outcome.clean);
        // The only evidence of execution the engine could leave is in the
        // outcome's final report: a static report carries no addresses.
        assert_eq!(outcome.final_report.provenance, pmcheck::Provenance::Static);
    }

    #[test]
    fn exploration_source_heals_unfenced_flush_reordering() {
        // The acceptance scenario for crash-state exploration: `data` is
        // flushed but not fenced before the `flag` store. Every line is
        // durable by the crashpoint, so the dynamic checker — including
        // crash-point sampling — reports clean. Only exploring partial
        // crash states (flag persisted via eviction, data write-back still
        // in flight) exposes the reordering; repair must fence the data
        // flush and re-exploration must come back clean.
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(11, 4096);
                store8(p, 64, 4242);
                clwb(p + 64);
                store8(p, 0, 1);
                clwb(p);
                sfence();
                crashpoint();
            }
            fn recover() -> int {
                var p: ptr = pmem_map(11, 4096);
                if (load8(p, 0) == 1) {
                    if (load8(p, 64) != 4242) { return 1; }
                }
                return 0;
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();

        // Blind spot: the checkpoint-based dynamic checker sees nothing,
        // and booting recovery at the declared crashpoint is consistent.
        let dynamic = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert!(dynamic.report.is_clean(), "lint-clean by construction");
        let at_crashpoint = pmvm::Vm::new(VmOptions::default().stop_at(1))
            .run(&m, "main")
            .unwrap();
        let img = at_crashpoint.machine.crash_image();
        let recov = pmvm::Vm::new(VmOptions::default().with_media(img.into_media()))
            .run(&m, "recover")
            .unwrap();
        assert_eq!(
            recov.return_value,
            Some(0),
            "crash-point sampling misses it"
        );

        // Exploration-driven repair finds and heals it.
        let outcome = Hippocrates::new(RepairOptions {
            bug_source: BugSource::Exploration,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert!(outcome.clean);
        assert!(!outcome.fixes.is_empty());
        assert_eq!(
            outcome.final_report.provenance,
            pmcheck::Provenance::Exploration
        );

        // Re-exploration of the healed module is clean.
        let x =
            pmexplore::run_and_explore(&m, "main", &pmexplore::ExploreOptions::default()).unwrap();
        assert!(x.report.is_clean(), "{}", x.report.render());
    }

    #[test]
    fn exploration_matches_dynamic_on_plain_durability_bugs() {
        // Exploration subsumes, not replaces, the dynamic checker: a plain
        // missing-flush&fence bug is still found and healed under
        // `BugSource::Exploration`.
        let src = "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); }";
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions {
            bug_source: BugSource::Exploration,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert!(outcome.clean);
        assert!(!outcome.fixes.is_empty());
    }

    #[test]
    fn torn_store_fault_is_diagnosed_not_fatal() {
        // A torn store in the simulated medium never derails detection: the
        // checker works from the trace, the repair lands, and the injected
        // fault surfaces as a structured diagnostic.
        use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
        let src = "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); }";
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions {
            fault: Some(FaultPlan::single(
                FaultSite::SimStore,
                Trigger::Nth(0),
                FaultKind::TornStore,
            )),
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert!(outcome.clean);
        assert!(!outcome.is_degraded(), "{:?}", outcome.degraded);
        assert!(
            outcome.diagnostics.iter().any(|d| d.contains("torn store")),
            "{:?}",
            outcome.diagnostics
        );
    }

    #[test]
    fn media_read_fault_degrades_dynamic_and_static_survives() {
        use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                var x: int = load8(p, 0);
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions {
            bug_source: BugSource::Both,
            fault: Some(FaultPlan::single(
                FaultSite::SimMediaRead,
                Trigger::Always,
                FaultKind::MediaReadError,
            )),
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert!(outcome.clean, "static source still converges");
        assert!(outcome.is_degraded());
        let d = &outcome.degraded[0];
        assert_eq!(d.source, "dynamic");
        assert_eq!(d.retries, 2, "default retry budget spent");
        assert!(d.reason.contains("read error"), "{}", d.reason);
        assert!(!outcome.fixes.is_empty());
    }

    #[test]
    fn dynamic_only_with_permanent_fault_fails_structurally() {
        use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                var x: int = load8(p, 0);
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let err = Hippocrates::new(RepairOptions {
            fault: Some(FaultPlan::single(
                FaultSite::SimMediaRead,
                Trigger::Always,
                FaultKind::MediaReadError,
            )),
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap_err();
        match &err {
            RepairError::AllSourcesFailed { failures } => {
                assert_eq!(failures.len(), 1);
                assert_eq!(failures[0].source, "dynamic");
            }
            other => panic!("expected AllSourcesFailed, got {other:?}"),
        }
        assert!(err.to_string().contains("every bug source failed"), "{err}");
    }

    #[test]
    fn trace_fault_falls_back_to_in_memory_trace() {
        // A permanently corrupted serialize→parse path degrades the trace
        // ingest but never the repair: the engine proceeds from the
        // in-memory trace and produces the exact same module as a
        // fault-free run.
        use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
        let src = "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); }";
        let mut faulted = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions {
            fault: Some(FaultPlan::single(
                FaultSite::TraceParse,
                Trigger::Always,
                FaultKind::TraceTruncate,
            )),
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut faulted, "main")
        .unwrap();
        assert!(outcome.clean);
        assert!(
            outcome.degraded.iter().any(|d| d.source == "trace"),
            "{:?}",
            outcome.degraded
        );
        assert!(
            outcome
                .diagnostics
                .iter()
                .any(|d| d.contains("in-memory trace")),
            "{:?}",
            outcome.diagnostics
        );

        let mut clean = pmlang::compile_one("t.pmc", src).unwrap();
        Hippocrates::new(RepairOptions::default())
            .repair_until_clean(&mut clean, "main")
            .unwrap();
        assert_eq!(
            pmir::display::print_module(&faulted),
            pmir::display::print_module(&clean),
            "trace-fault fallback repairs identically"
        );
    }

    #[test]
    fn nth_trace_fault_recovers_on_retry() {
        use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
        let src = "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); }";
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions {
            fault: Some(FaultPlan::single(
                FaultSite::TraceParse,
                Trigger::Nth(0),
                FaultKind::TraceBitflip,
            )),
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert!(outcome.clean);
        assert!(!outcome.is_degraded(), "{:?}", outcome.degraded);
        assert!(
            outcome
                .diagnostics
                .iter()
                .any(|d| d.contains("trace roundtrip recovered")),
            "{:?}",
            outcome.diagnostics
        );
    }

    #[test]
    fn stuck_loop_fault_hits_watchdog_and_degrades() {
        use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions {
            bug_source: BugSource::Both,
            fault: Some(FaultPlan::single(
                FaultSite::VmDiverge,
                Trigger::Nth(0),
                FaultKind::StuckLoop,
            )),
            watchdog_ms: Some(30),
            source_retries: 1,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert!(outcome.clean);
        let d = outcome
            .degraded
            .iter()
            .find(|d| d.source == "dynamic")
            .expect("dynamic degraded");
        assert!(d.reason.contains("watchdog fired"), "{}", d.reason);
        assert_eq!(d.retries, 1);
    }

    #[test]
    fn fuel_fault_degrades_dynamic_with_structured_reason() {
        use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
        let src = "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); }";
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions {
            bug_source: BugSource::Both,
            fault: Some(FaultPlan::single(
                FaultSite::VmFuel,
                Trigger::Always,
                FaultKind::FuelExhaustion { max_steps: 4 },
            )),
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert!(outcome.clean);
        let d = outcome
            .degraded
            .iter()
            .find(|d| d.source == "dynamic")
            .expect("dynamic degraded");
        assert!(d.reason.contains("fuel exhausted"), "{}", d.reason);
    }

    #[test]
    fn multiple_paths_fixed_over_iterations() {
        // The same helper reached from two call sites on PM paths: the
        // engine may need more than one iteration to cover both.
        let src = r#"
            fn update(addr: ptr, v: int) { store8(addr, 0, v); }
            fn path_a(p: ptr) { update(p, 1); }
            fn path_b(p: ptr) { update(p + 64, 2); }
            fn main() {
                var pm: ptr = pmem_map(0, 4096);
                path_a(pm);
                path_b(pm);
            }
        "#;
        let (m, outcome) = repair(src);
        assert!(outcome.clean, "{}", outcome.final_report.render());
        let run = pmvm::Vm::new(VmOptions::default()).run(&m, "main").unwrap();
        assert_eq!(run.stats.pm_stores, 2);
    }

    #[test]
    fn zero_max_iterations_is_rejected_up_front() {
        let mut m =
            pmlang::compile_one("t.pmc", "fn main() { var p: ptr = pmem_map(0, 4096); }").unwrap();
        let err = Hippocrates::new(RepairOptions {
            max_iterations: 0,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap_err();
        match &err {
            RepairError::BadOptions { reason } => {
                assert!(reason.contains("max_iterations"), "{reason}")
            }
            other => panic!("expected BadOptions, got {other:?}"),
        }
        assert!(err.to_string().contains("invalid repair options"), "{err}");
    }

    #[test]
    fn commit_veto_retries_and_converges() {
        // A transient commit veto (Nth(0)) models one failed journal append:
        // the engine retries the commit and the campaign still converges to
        // the exact module a fault-free run produces.
        use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
        let src = "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); }";
        let mut vetoed = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions {
            fault: Some(FaultPlan::single(
                FaultSite::TxCommit,
                Trigger::Nth(0),
                FaultKind::CommitVeto,
            )),
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut vetoed, "main")
        .unwrap();
        assert!(outcome.clean);
        assert!(outcome.quarantined.is_empty(), "{:?}", outcome.quarantined);
        assert_eq!(outcome.committed_rounds, 1);
        assert!(
            outcome
                .diagnostics
                .iter()
                .any(|d| d.contains("vetoed attempt")),
            "{:?}",
            outcome.diagnostics
        );

        let mut clean = pmlang::compile_one("t.pmc", src).unwrap();
        Hippocrates::new(RepairOptions::default())
            .repair_until_clean(&mut clean, "main")
            .unwrap();
        assert_eq!(
            pmir::display::print_module(&vetoed),
            pmir::display::print_module(&clean),
            "a vetoed-then-retried commit repairs identically"
        );
    }

    #[test]
    fn permanent_commit_veto_quarantines_and_rolls_back_byte_identically() {
        // Every commit vetoed: the round's fixes are quarantined, the module
        // rolls back byte-identically, and the next round (all planned fixes
        // quarantined) stalls with NoProgress carrying the partial outcome.
        use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
        let src = "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); }";
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let text_before = pmir::display::print_module(&m);
        let err = Hippocrates::new(RepairOptions {
            fault: Some(FaultPlan::single(
                FaultSite::TxCommit,
                Trigger::Always,
                FaultKind::CommitVeto,
            )),
            source_retries: 1,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap_err();
        assert_eq!(
            pmir::display::print_module(&m),
            text_before,
            "rollback must be byte-identical"
        );
        match &err {
            RepairError::NoProgress { remaining, partial } => {
                assert_eq!(*remaining, 1);
                assert!(!partial.clean);
                assert_eq!(partial.committed_rounds, 0);
                assert_eq!(partial.quarantined.len(), 1);
                assert!(partial.fixes.is_empty(), "{:?}", partial.fixes);
                let q = &partial.quarantined[0];
                assert!(q.reason.contains("vetoed"), "{}", q.reason);
                assert!(!q.targets.is_empty());
                assert!(
                    partial
                        .diagnostics
                        .iter()
                        .any(|d| d.contains("quarantined")),
                    "{:?}",
                    partial.diagnostics
                );
            }
            other => panic!("expected NoProgress, got {other:?}"),
        }
        assert!(err.to_string().contains("quarantined"), "{err}");
    }

    #[test]
    fn journal_commits_rounds_and_resume_replays_them() {
        let dir = std::env::temp_dir().join(format!("hippo-engine-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.journal");
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                crashpoint();
                store8(p, 8, 2);
            }
        "#;
        let opts = || RepairOptions {
            journal_path: Some(path.clone()),
            ..RepairOptions::default()
        };

        let mut m1 = pmlang::compile_one("t.pmc", src).unwrap();
        let first = Hippocrates::new(opts())
            .repair_until_clean(&mut m1, "main")
            .unwrap();
        assert!(first.clean);
        assert!(first.committed_rounds >= 1);
        assert_eq!(first.replayed_rounds, 0);
        let healed = pmir::display::print_module(&m1);

        // Resume on a fresh copy of the input replays every committed round
        // and converges to the byte-identical module.
        let mut m2 = pmlang::compile_one("t.pmc", src).unwrap();
        let second = Hippocrates::new(RepairOptions {
            resume: true,
            ..opts()
        })
        .repair_until_clean(&mut m2, "main")
        .unwrap();
        assert!(second.clean);
        assert_eq!(second.replayed_rounds, first.committed_rounds);
        assert_eq!(second.committed_rounds, first.committed_rounds);
        assert_eq!(second.fixes.len(), first.fixes.len());
        assert_eq!(pmir::display::print_module(&m2), healed);
        assert!(
            second
                .diagnostics
                .iter()
                .any(|d| d.contains("resumed from journal")),
            "{:?}",
            second.diagnostics
        );

        // A different input module refuses to resume with a clear state
        // mismatch instead of replaying foreign fixes.
        let mut other = pmlang::compile_one(
            "t.pmc",
            "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 64, 3); }",
        )
        .unwrap();
        let err = Hippocrates::new(RepairOptions {
            resume: true,
            ..opts()
        })
        .repair_until_clean(&mut other, "main")
        .unwrap_err();
        match &err {
            RepairError::Journal(pmtx::JournalError::StateMismatch { what, .. }) => {
                assert_eq!(*what, "module")
            }
            other => panic!("expected StateMismatch, got {other:?}"),
        }
        assert!(err.to_string().contains("refusing to resume"), "{err}");
    }

    #[test]
    fn step_quota_returns_partial_outcome_instead_of_hanging() {
        // Quota of 1: the initial detection spends it, the first round's
        // re-verification trips it, the permanently-vetoed round rolls back,
        // and the loop stops with a partial outcome instead of iterating.
        use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
        let src = "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); }";
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let text_before = pmir::display::print_module(&m);
        let err = Hippocrates::new(RepairOptions {
            fault: Some(FaultPlan::single(
                FaultSite::TxCommit,
                Trigger::Always,
                FaultKind::CommitVeto,
            )),
            source_retries: 0,
            step_quota: Some(1),
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap_err();
        match &err {
            RepairError::BudgetExceeded { exceeded, partial } => {
                assert_eq!(*exceeded, pmtx::BudgetExceeded::Steps { quota: 1 });
                assert_eq!(partial.quarantined.len(), 1);
                assert_eq!(partial.committed_rounds, 0);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        assert_eq!(pmir::display::print_module(&m), text_before);
        assert!(err.to_string().contains("budget exhausted"), "{err}");
    }
}
