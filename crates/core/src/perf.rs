//! The one performance-bug fix the paper deems safely automatable (§7):
//! removing *redundant flush instructions in the same basic block*.
//!
//! The paper explains why general performance-bug fixing is off-limits — a
//! flush extraneous on one path may be required on another, and no bug
//! finder can enumerate all paths. The sole exception it names is a flush
//! of the same location repeated within one basic block with nothing in
//! between that could re-dirty the line or consume the ordering: removing
//! the duplicate cannot change durability on *any* path, because the two
//! flushes are totally ordered and no intervening event distinguishes them.
//!
//! The pass is deliberately ultra-conservative: the second flush is removed
//! only when both flushes use the *same address operand* and *same kind*,
//! and no store-like, call, or fence instruction sits between them.

use pmir::{rewrite, FuncId, InstId, Module, Op};

/// A removed duplicate, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemovedFlush {
    /// Containing function name.
    pub function: String,
    /// The unlinked instruction.
    pub inst: InstId,
}

/// Removes same-block duplicate flushes module-wide; returns the removals.
pub fn remove_redundant_flushes(m: &mut Module) -> Vec<RemovedFlush> {
    let mut removed = vec![];
    let func_ids: Vec<FuncId> = m.func_ids().collect();
    for fid in func_ids {
        let victims = find_redundant_in_function(m, fid);
        for v in victims {
            rewrite::unlink(m.function_mut(fid), v);
            removed.push(RemovedFlush {
                function: m.function(fid).name().to_string(),
                inst: v,
            });
        }
    }
    removed
}

/// A provenance key for address operands: two operands with equal keys
/// denote the same address *within a window that contains no store-like,
/// call, or fence instruction* (unoptimized lowering reloads variables from
/// their stack slots, so plain operand identity would never match).
#[derive(Debug, Clone, PartialEq, Eq)]
enum AddrKey {
    /// An argument or an opaque definition (alloca, heapalloc, …).
    Value(pmir::ValueId),
    /// A load through the given address key — stable while nothing stores.
    LoadOf(Box<AddrKey>),
    /// Pointer arithmetic with a constant offset.
    Gep(Box<AddrKey>, i64),
    /// An integer or null constant.
    Const(i64),
}

fn addr_key(f: &pmir::Function, op: pmir::Operand) -> AddrKey {
    match op {
        pmir::Operand::Const(c) => AddrKey::Const(c),
        pmir::Operand::Null => AddrKey::Const(0),
        pmir::Operand::Value(v) => match f.value(v).kind {
            pmir::ValueKind::Arg(_) => AddrKey::Value(v),
            pmir::ValueKind::Inst(def) => match &f.inst(def).op {
                Op::Load { addr, .. } => AddrKey::LoadOf(Box::new(addr_key(f, *addr))),
                Op::Gep {
                    base,
                    offset: pmir::Operand::Const(c),
                } => AddrKey::Gep(Box::new(addr_key(f, *base)), *c),
                _ => AddrKey::Value(v),
            },
        },
    }
}

fn find_redundant_in_function(m: &Module, fid: FuncId) -> Vec<InstId> {
    let f = m.function(fid);
    let mut victims = vec![];
    for b in f.block_ids() {
        // Flushes seen since the last window-clearing instruction, keyed by
        // kind + address provenance.
        let mut window: Vec<(pmir::FlushKind, AddrKey)> = vec![];
        for &i in &f.block(b).insts {
            match &f.inst(i).op {
                Op::Flush { kind, addr } => {
                    let key = (*kind, addr_key(f, *addr));
                    if window.contains(&key) {
                        victims.push(i);
                    } else {
                        window.push(key);
                    }
                }
                // Anything that could re-dirty memory or consume the
                // ordering clears the window.
                op if op.is_pm_storeish() => window.clear(),
                Op::Call { .. } | Op::Fence { .. } | Op::CrashPoint => window.clear(),
                _ => {}
            }
        }
    }
    victims
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcheck::run_and_check;
    use pmvm::{Vm, VmOptions};

    fn flush_count(m: &Module) -> usize {
        pmir::ModuleMetrics::measure(m).flushes
    }

    #[test]
    fn duplicate_flush_in_block_removed() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                clwb(p);
                sfence();
                print(load8(p, 0));
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let before = Vm::new(VmOptions::default()).run(&m, "main").unwrap();
        assert_eq!(flush_count(&m), 2);
        let removed = remove_redundant_flushes(&mut m);
        assert_eq!(removed.len(), 1);
        assert_eq!(flush_count(&m), 1);
        pmir::verify::verify_module(&m).unwrap();
        // Do no harm, both directions: output unchanged and still clean.
        let after = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert_eq!(before.output, after.run.output);
        assert!(after.report.is_clean(), "{}", after.report.render());
    }

    #[test]
    fn intervening_store_blocks_removal() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                store8(p, 0, 2);
                clwb(p);
                sfence();
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        assert!(remove_redundant_flushes(&mut m).is_empty());
        let c = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert!(c.report.is_clean());
    }

    #[test]
    fn intervening_fence_blocks_removal() {
        // After a fence, a re-flush is not redundant in the pass's
        // conservative model (the line may be re-dirtied by unanalyzed
        // effects); the dynamic checker would flag it, but the static pass
        // must not touch it.
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                sfence();
                clwb(p);
                sfence();
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        assert!(remove_redundant_flushes(&mut m).is_empty());
    }

    #[test]
    fn intervening_call_blocks_removal() {
        let src = r#"
            fn touch(p: ptr) { store8(p, 0, 9); }
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                touch(p);
                clwb(p);
                sfence();
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        assert!(remove_redundant_flushes(&mut m).is_empty());
        let c = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert!(c.report.is_clean(), "{}", c.report.render());
    }

    #[test]
    fn different_addresses_not_confused() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                store8(p, 64, 2);
                var a: ptr = p + 0;
                var b: ptr = p + 64;
                clwb(a);
                clwb(b);
                sfence();
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        assert!(remove_redundant_flushes(&mut m).is_empty());
    }

    #[test]
    fn pass_is_idempotent() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                clwb(p);
                clwb(p);
                sfence();
            }
        "#;
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        assert_eq!(remove_redundant_flushes(&mut m).len(), 2);
        assert!(remove_redundant_flushes(&mut m).is_empty());
    }
}
