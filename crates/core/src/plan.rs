//! Intraprocedural fix planning, fix reduction, and fix application
//! (paper §4.2.1–§4.2.3 and §4.3 phase 2).

use crate::locate::BugSite;
use crate::options::RepairOptions;
use pmcheck::{Bug, BugKind};
use pmir::{rewrite, FuncId, FunctionBuilder, InstId, Module, Op, Type};
use pmtrace::{EventKind, Trace};
use std::collections::HashMap;

/// Name of the synthesized range-flush helper (the analog of the
/// `pmem_flush` loop PMDK fixes call; the engine inserts calls to it after
/// `memcpy`/`memset`-shaped stores whose length is dynamic).
pub const FLUSH_RANGE_HELPER: &str = "__hippocrates_flush_range";

/// One reduced intraprocedural fix, anchored at an instruction.
#[derive(Debug, Clone)]
pub struct IntraFix {
    /// Containing function.
    pub func: FuncId,
    /// The anchor: the store to flush, or (for pure fence fixes) the flush
    /// instruction to fence.
    pub anchor: InstId,
    /// Insert a flush covering the anchor store.
    pub insert_flush: bool,
    /// Insert a fence ordering the flush.
    pub insert_fence: bool,
    /// The bug sites merged into this fix (fix reduction can merge several).
    pub sites: Vec<BugSite>,
    /// The bug kinds merged in (for reporting).
    pub kinds: Vec<BugKind>,
}

/// Plans intraprocedural fixes for the located bugs, applying fix reduction:
/// fixes sharing an anchor are merged (redundant flushes/fences collapse,
/// §4.3 phase 2).
pub fn plan_intra_fixes(m: &Module, trace: &Trace, bugs: &[(Bug, BugSite)]) -> Vec<IntraFix> {
    let mut by_anchor: HashMap<(FuncId, InstId), IntraFix> = HashMap::new();
    let mut order: Vec<(FuncId, InstId)> = vec![];
    for (bug, site) in bugs {
        let (func, anchor, insert_flush, insert_fence) = match bug.kind {
            BugKind::MissingFlush => (site.func, site.store, true, false),
            BugKind::MissingFlushFence => (site.func, site.store, true, true),
            BugKind::MissingFence => {
                // Anchor the fence at the flush that covered the store, so
                // the inserted fence orders exactly that flush
                // (X -> F(X) -> M). Falls back to a full flush+fence at the
                // store when the flush cannot be identified.
                match find_covering_flush(m, trace, bug) {
                    Some((f, fl)) => (f, fl, false, true),
                    None => (site.func, site.store, true, true),
                }
            }
        };
        let key = (func, anchor);
        match by_anchor.get_mut(&key) {
            Some(fix) => {
                fix.insert_flush |= insert_flush;
                fix.insert_fence |= insert_fence;
                fix.sites.push(site.clone());
                fix.kinds.push(bug.kind);
            }
            None => {
                order.push(key);
                by_anchor.insert(
                    key,
                    IntraFix {
                        func,
                        anchor,
                        insert_flush,
                        insert_fence,
                        sites: vec![site.clone()],
                        kinds: vec![bug.kind],
                    },
                );
            }
        }
    }
    order
        .into_iter()
        .map(|k| by_anchor.remove(&k).expect("keyed"))
        .collect()
}

/// Finds the flush instruction that covered `bug`'s store in the trace (the
/// first flush after the store whose line intersects the store's range).
fn find_covering_flush(m: &Module, trace: &Trace, bug: &Bug) -> Option<(FuncId, InstId)> {
    const LINE: u64 = 64;
    let lo = bug.addr & !(LINE - 1);
    let hi = bug.addr + bug.len.max(1);
    for e in &trace.events {
        if e.seq <= bug.store_seq {
            continue;
        }
        if let EventKind::Flush { addr, .. } = e.kind {
            let line = addr & !(LINE - 1);
            if line >= lo && line < hi {
                let at = e.at.as_ref()?;
                let f = m.function_by_name(&at.function)?;
                if (at.inst as usize) < m.function(f).inst_count()
                    && matches!(m.function(f).inst(InstId(at.inst)).op, Op::Flush { .. })
                {
                    return Some((f, InstId(at.inst)));
                }
            }
        }
    }
    None
}

/// Ensures the range-flush helper exists in the module; returns its id.
///
/// The helper flushes every cache line in `[p, p+len)` by issuing a flush at
/// `p`, `p+64`, …, and at `p+len-1` (the endpoint covers a trailing
/// unaligned line).
pub fn ensure_flush_range_helper(m: &mut Module, opts: &RepairOptions) -> FuncId {
    if let Some(f) = m.function_by_name(FLUSH_RANGE_HELPER) {
        return f;
    }
    let f = m.declare_function(
        FLUSH_RANGE_HELPER,
        vec![Type::Ptr, Type::int(8)],
        Type::Void,
    );
    // Synthesized code still carries a (pseudo-file) source location so
    // downstream diagnostics never go blind inside an inserted fix.
    let file = m.intern_file(format!("<{FLUSH_RANGE_HELPER}>"));
    let mut b = FunctionBuilder::new(m, f);
    b.set_loc(pmir::SrcLoc {
        file,
        line: 1,
        col: 1,
    });
    let entry = b.entry_block();
    let init = b.new_block("init");
    let header = b.new_block("header");
    let body = b.new_block("body");
    let tail = b.new_block("tail");
    let exit = b.new_block("exit");

    b.switch_to(entry);
    let p = b.arg(0);
    let len = b.arg(1);
    let empty = b.cmp(pmir::CmpPred::SLe, len, 0i64);
    b.cond_br(empty, exit, init);

    b.switch_to(init);
    let islot = b.alloca(8);
    b.store(Type::int(8), islot, 0i64);
    b.br(header);

    b.switch_to(header);
    let i = b.load(Type::int(8), islot);
    let more = b.cmp(pmir::CmpPred::SLt, i, len);
    b.cond_br(more, body, tail);

    b.switch_to(body);
    let i2 = b.load(Type::int(8), islot);
    let addr = b.gep(p, i2);
    b.flush(opts.flush_kind, addr);
    let next = b.bin(pmir::BinOp::Add, i2, 64i64);
    b.store(Type::int(8), islot, next);
    b.br(header);

    b.switch_to(tail);
    let last = b.bin(pmir::BinOp::Sub, len, 1i64);
    let addr2 = b.gep(p, last);
    b.flush(opts.flush_kind, addr2);
    b.br(exit);

    b.switch_to(exit);
    b.ret(None);
    b.finish();
    f
}

/// Inserts a flush covering the store-like instruction `store` in function
/// `func`, immediately after it. Returns the instruction to anchor a
/// following fence at.
///
/// Plain stores get a single flush of their address; `memcpy`/`memset` get a
/// call to the range-flush helper (their extent is dynamic).
///
/// # Panics
///
/// Panics if `store` is not a store-like instruction.
pub fn insert_flush_after_store(
    m: &mut Module,
    func: FuncId,
    store: InstId,
    opts: &RepairOptions,
) -> InstId {
    let op = m.function(func).inst(store).op.clone();
    let loc = m.function(func).inst(store).loc;
    match op {
        Op::Store { addr, ty, .. } if opts.portable_fixes => {
            // §6.2 extension: a runtime-dispatched flush call instead of a
            // raw CLWB, like the PMDK developers' portable fixes.
            let helper = ensure_flush_range_helper(m, opts);
            rewrite::insert_after(
                m.function_mut(func),
                store,
                Op::Call {
                    callee: helper,
                    args: vec![addr, pmir::Operand::Const(ty.size() as i64)],
                },
                loc,
            )
        }
        Op::Store { addr, .. } => rewrite::insert_after(
            m.function_mut(func),
            store,
            Op::Flush {
                kind: opts.flush_kind,
                addr,
            },
            loc,
        ),
        Op::Memcpy { dst, len, .. } | Op::Memset { dst, len, .. } => {
            let helper = ensure_flush_range_helper(m, opts);
            rewrite::insert_after(
                m.function_mut(func),
                store,
                Op::Call {
                    callee: helper,
                    args: vec![dst, len],
                },
                loc,
            )
        }
        other => panic!("insert_flush_after_store: not a store: {other:?}"),
    }
}

/// Applies one reduced intraprocedural fix. Returns `(flush_inst,
/// fence_inst)` for reporting.
pub fn apply_intra_fix(
    m: &mut Module,
    fix: &IntraFix,
    opts: &RepairOptions,
) -> (Option<InstId>, Option<InstId>) {
    let mut fence_anchor = fix.anchor;
    let mut flush_inst = None;
    if fix.insert_flush {
        let fl = insert_flush_after_store(m, fix.func, fix.anchor, opts);
        fence_anchor = fl;
        flush_inst = Some(fl);
    }
    let mut fence_inst = None;
    if fix.insert_fence {
        let loc = m.function(fix.func).inst(fence_anchor).loc;
        let fe = rewrite::insert_after(
            m.function_mut(fix.func),
            fence_anchor,
            Op::Fence {
                kind: opts.fence_kind,
            },
            loc,
        );
        fence_inst = Some(fe);
    }
    (flush_inst, fence_inst)
}

/// Collects the set of store instructions observed modifying PM in the
/// trace, per function — the "stores that modify persistent memory" the
/// persistent-subprogram transformation must flush (§4.2.4).
pub fn pm_store_refs(m: &Module, trace: &Trace) -> std::collections::HashSet<(FuncId, InstId)> {
    let mut out = std::collections::HashSet::new();
    for e in &trace.events {
        if matches!(e.kind, EventKind::Store { .. }) {
            if let Some(at) = &e.at {
                if let Some(f) = m.function_by_name(&at.function) {
                    if (at.inst as usize) < m.function(f).inst_count() {
                        out.insert((f, InstId(at.inst)));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locate::locate;
    use pmcheck::run_and_check;
    use pmvm::VmOptions;

    fn check(src: &str) -> (Module, Trace, pmcheck::CheckReport) {
        let m = pmlang::compile_one("t.pmc", src).unwrap();
        let c = run_and_check(&m, "main", VmOptions::default()).unwrap();
        (m, c.trace, c.report)
    }

    #[test]
    fn plans_flush_fence_for_missing_both() {
        let (m, trace, report) =
            check("fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); }");
        let located: Vec<_> = report
            .deduped_bugs()
            .into_iter()
            .map(|b| (b.clone(), locate(&m, b).unwrap()))
            .collect();
        let fixes = plan_intra_fixes(&m, &trace, &located);
        assert_eq!(fixes.len(), 1);
        assert!(fixes[0].insert_flush && fixes[0].insert_fence);
    }

    #[test]
    fn plans_fence_at_existing_flush() {
        let (m, trace, report) =
            check("fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); clwb(p); }");
        let located: Vec<_> = report
            .deduped_bugs()
            .into_iter()
            .map(|b| (b.clone(), locate(&m, b).unwrap()))
            .collect();
        let fixes = plan_intra_fixes(&m, &trace, &located);
        assert_eq!(fixes.len(), 1);
        let fix = &fixes[0];
        assert!(!fix.insert_flush && fix.insert_fence);
        // Anchored at the existing clwb.
        assert!(matches!(
            m.function(fix.func).inst(fix.anchor).op,
            Op::Flush { .. }
        ));
    }

    #[test]
    fn reduction_merges_same_anchor() {
        // Two crash points report the same unflushed store twice (distinct
        // Bug entries before dedup); reduction yields one fix.
        let (m, trace, report) = check(
            "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); crashpoint(); crashpoint(); }",
        );
        let located: Vec<_> = report
            .bugs
            .iter()
            .map(|b| (b.clone(), locate(&m, b).unwrap()))
            .collect();
        assert!(located.len() >= 2);
        let fixes = plan_intra_fixes(&m, &trace, &located);
        assert_eq!(fixes.len(), 1, "fix reduction merges duplicates");
        assert!(fixes[0].sites.len() >= 2);
    }

    #[test]
    fn apply_fix_produces_clean_module() {
        let (mut m, trace, report) =
            check("fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); }");
        let located: Vec<_> = report
            .deduped_bugs()
            .into_iter()
            .map(|b| (b.clone(), locate(&m, b).unwrap()))
            .collect();
        let fixes = plan_intra_fixes(&m, &trace, &located);
        let opts = RepairOptions::default();
        for fix in &fixes {
            apply_intra_fix(&mut m, fix, &opts);
        }
        pmir::verify::verify_module(&m).unwrap();
        let c = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert!(c.report.is_clean(), "{}", c.report.render());
    }

    #[test]
    fn memcpy_fix_uses_range_helper_and_cleans() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                var src: ptr = alloc(256);
                memcpy(p, src, 200); // spans 4 cache lines
            }
        "#;
        let (mut m, trace, report) = check(src);
        assert_eq!(report.deduped_bugs().len(), 1);
        let located: Vec<_> = report
            .deduped_bugs()
            .into_iter()
            .map(|b| (b.clone(), locate(&m, b).unwrap()))
            .collect();
        let fixes = plan_intra_fixes(&m, &trace, &located);
        let opts = RepairOptions::default();
        for fix in &fixes {
            apply_intra_fix(&mut m, fix, &opts);
        }
        pmir::verify::verify_module(&m).unwrap();
        assert!(m.function_by_name(FLUSH_RANGE_HELPER).is_some());
        let c = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert!(c.report.is_clean(), "{}", c.report.render());
    }

    #[test]
    fn helper_flushes_unaligned_trailing_line() {
        // Start the copy at an unaligned PM offset so the endpoint flush
        // matters.
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                var src: ptr = alloc(64);
                memcpy(p + 60, src, 8); // spans the line boundary at 64
            }
        "#;
        let (mut m, trace, report) = check(src);
        let located: Vec<_> = report
            .deduped_bugs()
            .into_iter()
            .map(|b| (b.clone(), locate(&m, b).unwrap()))
            .collect();
        let fixes = plan_intra_fixes(&m, &trace, &located);
        let opts = RepairOptions::default();
        for fix in &fixes {
            apply_intra_fix(&mut m, fix, &opts);
        }
        let c = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert!(c.report.is_clean(), "{}", c.report.render());
    }

    #[test]
    fn pm_store_refs_collects_trace_stores() {
        let (m, trace, _) = check(
            "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); store8(p, 64, 2); }",
        );
        let refs = pm_store_refs(&m, &trace);
        assert_eq!(refs.len(), 2);
    }
}

#[cfg(test)]
mod portable_tests {
    use super::*;
    use crate::{Hippocrates, RepairOptions};
    use pmcheck::run_and_check;
    use pmvm::VmOptions;

    #[test]
    fn portable_fixes_insert_helper_calls() {
        let src = "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); }";
        let mut m = pmlang::compile_one("t.pmc", src).unwrap();
        let outcome = Hippocrates::new(RepairOptions {
            portable_fixes: true,
            ..RepairOptions::default()
        })
        .repair_until_clean(&mut m, "main")
        .unwrap();
        assert!(outcome.clean);
        // The fix is a call to the range-flush helper, not a raw clwb.
        let helper = m
            .function_by_name(FLUSH_RANGE_HELPER)
            .expect("helper exists");
        let main = m.function_by_name("main").unwrap();
        let f = m.function(main);
        let calls_helper = f
            .linked_insts()
            .any(|(_, i)| matches!(f.inst(i).op, Op::Call { callee, .. } if callee == helper));
        let raw_clwb = f
            .linked_insts()
            .any(|(_, i)| matches!(f.inst(i).op, Op::Flush { .. }));
        assert!(calls_helper && !raw_clwb);
        let c = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert!(c.report.is_clean(), "{}", c.report.render());
    }

    #[test]
    fn portable_and_direct_fixes_behave_identically() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 5);
                print(load8(p, 0));
            }
        "#;
        let run = |portable: bool| {
            let mut m = pmlang::compile_one("t.pmc", src).unwrap();
            Hippocrates::new(RepairOptions {
                portable_fixes: portable,
                ..RepairOptions::default()
            })
            .repair_until_clean(&mut m, "main")
            .unwrap();
            pmvm::Vm::new(VmOptions::default())
                .run(&m, "main")
                .unwrap()
                .output
        };
        assert_eq!(run(false), run(true));
    }
}
