//! The hoisting heuristic and the persistent-subprogram transformation
//! (paper §4.2.4 and §4.3 phase 3).

use crate::locate::BugSite;
use crate::options::RepairOptions;
use crate::plan::insert_flush_after_store;
use pmalias::{AliasAnalysis, PmMarking};
use pmir::{rewrite, FuncId, InstId, Module, Op, Operand};
use std::collections::{HashMap, HashSet};

/// The score assigned to candidate sites that must never be chosen (call
/// sites without pointer arguments, and everything above them).
pub const NEG_INF: i64 = i64::MIN;

/// The outcome of scoring one bug's candidate fix locations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoistDecision {
    /// Chosen depth: `0` keeps the intraprocedural fix; `k > 0` roots the
    /// persistent subprogram at the `k`-th function up the call path and
    /// retargets the call site in the `k`-th caller.
    pub depth: usize,
    /// `(depth, score)` for every candidate considered, in depth order.
    pub scores: Vec<(usize, i64)>,
}

/// The chain of functions on a bug's call path: `chain[0]` contains the
/// store; `chain[i]` is the `i`-th caller.
pub fn func_chain(site: &BugSite) -> Vec<FuncId> {
    let mut chain = vec![site.func];
    chain.extend(site.call_path.iter().map(|&(f, _)| f));
    chain
}

/// Scores every candidate fix location for `site` and picks the best
/// (highest score; ties break toward the innermost candidate, i.e. the
/// intraprocedural fix).
///
/// Candidates stop below the function containing the durability requirement
/// `I` (`site.i_func`): the subprogram may not be rooted at `I`'s function
/// or its callers (§4.2.4). A call site that passes no pointer arguments
/// scores −∞, as do all of its parents (§4.3).
pub fn choose_fix_site(
    m: &Module,
    aa: &AliasAnalysis,
    marking: &PmMarking,
    site: &BugSite,
) -> HoistDecision {
    let chain = func_chain(site);
    // Highest legal subprogram root: strictly below I's function.
    let limit = match site.i_func {
        Some(i_func) => chain
            .iter()
            .position(|&f| f == i_func)
            .unwrap_or(chain.len() - 1),
        None => site.call_path.len(),
    }
    .min(site.call_path.len());

    let mut scores = vec![(0usize, score_store(m, aa, marking, site))];
    let mut poisoned = false;
    for k in 1..=limit {
        let (cf, ci) = site.call_path[k - 1];
        let s = if poisoned {
            NEG_INF
        } else {
            match score_call_site(m, aa, marking, cf, ci) {
                Some(s) => s,
                None => {
                    poisoned = true;
                    NEG_INF
                }
            }
        };
        scores.push((k, s));
    }

    let mut best = scores[0];
    for &(k, s) in &scores[1..] {
        if s > best.1 {
            best = (k, s);
        }
    }
    HoistDecision {
        depth: best.0,
        scores,
    }
}

/// Scores the intraprocedural candidate: the store's pointer operand.
fn score_store(m: &Module, aa: &AliasAnalysis, marking: &PmMarking, site: &BugSite) -> i64 {
    let f = m.function(site.func);
    let ptr = match &f.inst(site.store).op {
        Op::Store { addr, .. } => *addr,
        Op::Memcpy { dst, .. } | Op::Memset { dst, .. } => *dst,
        _ => return 0,
    };
    match ptr {
        Operand::Value(v) => marking.score(aa, site.func, v),
        _ => 0,
    }
}

/// Scores a call-site candidate: the sum over its pointer arguments;
/// `None` when the call passes no pointer arguments (the −∞ rule).
fn score_call_site(
    m: &Module,
    aa: &AliasAnalysis,
    marking: &PmMarking,
    cf: FuncId,
    ci: InstId,
) -> Option<i64> {
    let f = m.function(cf);
    let Op::Call { args, .. } = &f.inst(ci).op else {
        return None;
    };
    let ptr_args: Vec<pmir::ValueId> = args
        .iter()
        .filter_map(|a| a.as_value())
        .filter(|&v| f.value(v).ty.is_ptr())
        .collect();
    if ptr_args.is_empty() {
        return None;
    }
    Some(ptr_args.iter().map(|&v| marking.score(aa, cf, v)).sum())
}

/// Mutable state shared across persistent-subprogram transformations, so
/// clones are reused (§4.2.4: `update_PM` is created once and shared).
#[derive(Debug, Default)]
pub struct CloneState {
    /// original function -> its persistent clone.
    pub clones: HashMap<FuncId, FuncId>,
    /// `(clone, store)` pairs already flushed.
    flushed: HashSet<(FuncId, InstId)>,
    /// call sites already retargeted and fenced.
    retargeted: HashSet<(FuncId, InstId)>,
    fresh_counter: u32,
}

/// The result of one persistent-subprogram transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoistApplied {
    /// Name of the subprogram root's persistent clone.
    pub root_clone: String,
    /// How many frames above the store the fix landed.
    pub levels: usize,
    /// Number of new function clones created (0 when fully reused).
    pub clones_created: usize,
}

impl CloneState {
    /// Seeds the state from clones already present in the module (created
    /// by earlier repair iterations), so subprogram reuse spans the whole
    /// detect→fix→verify loop as in §4.2.4.
    pub fn discover(m: &Module) -> Self {
        let mut state = CloneState::default();
        for (id, f) in m.functions() {
            if let Some(orig) = &f.persistent_clone_of {
                if let Some(orig_id) = m.function_by_name(orig) {
                    // Keep the first (canonical) clone per original.
                    state.clones.entry(orig_id).or_insert(id);
                }
            }
        }
        state
    }

    fn clone_of(
        &mut self,
        m: &mut Module,
        orig: FuncId,
        opts: &RepairOptions,
        created: &mut usize,
    ) -> FuncId {
        if opts.reuse_subprograms {
            if let Some(&c) = self.clones.get(&orig) {
                return c;
            }
        }
        let base = format!("{}_PM", m.function(orig).name());
        let name = if m.function_by_name(&base).is_none() {
            base
        } else {
            loop {
                self.fresh_counter += 1;
                let candidate = format!("{base}.{}", self.fresh_counter);
                if m.function_by_name(&candidate).is_none() {
                    break candidate;
                }
            }
        };
        let c = rewrite::clone_function(m, orig, &name);
        *created += 1;
        if opts.reuse_subprograms {
            self.clones.insert(orig, c);
        }
        c
    }
}

/// Applies the persistent-subprogram transformation for `site` at `depth`
/// (which must be ≥ 1 and ≤ `site.call_path.len()`).
///
/// Clones the functions `chain[0..depth]` (reusing existing clones), inserts
/// a flush after every trace-observed PM store inside the clones, retargets
/// the internal calls along the path, retargets the chosen call site to the
/// cloned root, and places a single fence after that call site (§4.2.4).
///
/// # Panics
///
/// Panics if `depth` is out of range.
pub fn apply_hoist(
    m: &mut Module,
    site: &BugSite,
    depth: usize,
    pm_stores: &HashSet<(FuncId, InstId)>,
    state: &mut CloneState,
    opts: &RepairOptions,
) -> HoistApplied {
    assert!(
        depth >= 1 && depth <= site.call_path.len(),
        "depth out of range"
    );
    let chain = func_chain(site);
    let mut created = 0usize;

    // Clone the subprogram chain.
    let clones: Vec<FuncId> = chain[..depth]
        .iter()
        .map(|&f| state.clone_of(m, f, opts, &mut created))
        .collect();

    // Flush every observed PM store inside each cloned function.
    for (i, &orig) in chain[..depth].iter().enumerate() {
        let clone = clones[i];
        let stores: Vec<InstId> = pm_stores
            .iter()
            .filter(|&&(f, _)| f == orig)
            .map(|&(_, st)| st)
            .collect();
        for st in stores {
            if state.flushed.insert((clone, st)) && !has_flush_after(m, clone, st) {
                insert_flush_after_store(m, clone, st, opts);
            }
        }
    }

    // Retarget the internal calls along the path: in clone[i], the call that
    // entered chain[i-1] must now enter clones[i-1].
    for i in 1..depth {
        let (_, call_inst) = site.call_path[i - 1];
        rewrite::retarget_call(m.function_mut(clones[i]), call_inst, clones[i - 1]);
    }

    // Retarget the chosen call site and fence it.
    let (cf, ci) = site.call_path[depth - 1];
    let root = clones[depth - 1];
    rewrite::retarget_call(m.function_mut(cf), ci, root);
    if state.retargeted.insert((cf, ci)) && !has_fence_after(m, cf, ci) {
        let loc = m.function(cf).inst(ci).loc;
        rewrite::insert_after(
            m.function_mut(cf),
            ci,
            Op::Fence {
                kind: opts.fence_kind,
            },
            loc,
        );
    }

    HoistApplied {
        root_clone: m.function(root).name().to_string(),
        levels: depth,
        clones_created: created,
    }
}

/// Whether the instruction right after `store` in its block already flushes
/// it (a raw flush or a call to the range-flush helper) — makes repeated
/// hoists through a reused clone idempotent across repair iterations.
fn has_flush_after(m: &Module, func: FuncId, store: InstId) -> bool {
    let f = m.function(func);
    let Some((block, idx)) = f.find_inst_pos(store) else {
        return false;
    };
    let Some(&next) = f.block(block).insts.get(idx + 1) else {
        return false;
    };
    match &f.inst(next).op {
        Op::Flush { .. } => true,
        Op::Call { callee, .. } => m.function(*callee).name() == crate::plan::FLUSH_RANGE_HELPER,
        _ => false,
    }
}

/// Whether the instruction right after `call` is already a fence.
fn has_fence_after(m: &Module, func: FuncId, call: InstId) -> bool {
    let f = m.function(func);
    let Some((block, idx)) = f.find_inst_pos(call) else {
        return false;
    };
    f.block(block)
        .insts
        .get(idx + 1)
        .is_some_and(|&next| matches!(f.inst(next).op, Op::Fence { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locate::locate;
    use crate::plan::pm_store_refs;
    use pmcheck::run_and_check;
    use pmvm::VmOptions;

    /// The paper's Listing 5/6 program: `update` is shared between a hot
    /// volatile path and a PM path.
    const LISTING: &str = r#"
        fn update(addr: ptr, idx: int, val: int) {
            store1(addr, idx, val);
        }
        fn modify(addr: ptr) {
            update(addr, 0, 1);
        }
        fn main() {
            var vol_addr: ptr = alloc(4096);
            var pm_addr: ptr = pmem_map(0, 4096);
            var i: int = 0;
            while (i < 50) {
                modify(vol_addr);
                i = i + 1;
            }
            modify(pm_addr);
        }
    "#;

    #[test]
    fn chooses_the_modify_call_site() {
        let m = pmlang::compile_one("l5.pmc", LISTING).unwrap();
        let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert_eq!(checked.report.deduped_bugs().len(), 1);
        let bug = checked.report.deduped_bugs()[0].clone();
        let mut site = locate(&m, &bug).unwrap();
        // ProgramEnd: I lives in main (outermost frame).
        site.i_func = m.function_by_name("main");
        let aa = AliasAnalysis::analyze(&m);
        let marking = PmMarking::full(&aa);
        let d = choose_fix_site(&m, &aa, &marking, &site);
        // Candidates: store (0), call update in modify (0), call modify in
        // main (+1) -> hoist two levels.
        assert_eq!(
            d.scores.iter().map(|&(_, s)| s).collect::<Vec<_>>(),
            vec![0, 0, 1]
        );
        assert_eq!(d.depth, 2);
    }

    #[test]
    fn hoist_transform_produces_clean_fast_module() {
        let mut m = pmlang::compile_one("l5.pmc", LISTING).unwrap();
        let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
        let bug = checked.report.deduped_bugs()[0].clone();
        let mut site = locate(&m, &bug).unwrap();
        site.i_func = m.function_by_name("main");
        let pm_stores = pm_store_refs(&m, &checked.trace);
        let opts = RepairOptions::default();
        let mut state = CloneState::default();
        let applied = apply_hoist(&mut m, &site, 2, &pm_stores, &mut state, &opts);
        assert_eq!(applied.levels, 2);
        assert_eq!(applied.clones_created, 2); // update_PM and modify_PM
        assert_eq!(applied.root_clone, "modify_PM");
        pmir::verify::verify_module(&m).unwrap();

        let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert!(checked.report.is_clean(), "{}", checked.report.render());
        // Only the PM path flushes: exactly 1 flush, 1 fence.
        assert_eq!(checked.run.stats.pm_flushes, 1);
        assert_eq!(checked.run.stats.volatile_flushes, 0);
        assert_eq!(checked.run.stats.fences, 1);
    }

    #[test]
    fn clone_reuse_across_bugs() {
        // Two distinct PM paths through the same helper: the second hoist
        // reuses update_PM.
        let src = r#"
            fn update(addr: ptr, idx: int, val: int) {
                store1(addr, idx, val);
            }
            fn main() {
                var a: ptr = pmem_map(0, 4096);
                var b: ptr = pmem_map(1, 4096);
                update(a, 0, 1);
                update(b, 0, 2);
            }
        "#;
        let mut m = pmlang::compile_one("r.pmc", src).unwrap();
        let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
        let bugs: Vec<_> = checked.report.deduped_bugs().into_iter().cloned().collect();
        assert_eq!(bugs.len(), 1, "one store, reported once after dedup");
        // Two *sites* exist (two stacks); fix both paths explicitly.
        let pm_stores = pm_store_refs(&m, &checked.trace);
        let opts = RepairOptions::default();
        let mut state = CloneState::default();
        // Collect per-event sites (the same store via two call sites).
        let mut sites = vec![];
        for e in &checked.trace.events {
            if matches!(e.kind, pmtrace::EventKind::Store { .. }) {
                let fake_bug = pmcheck::Bug {
                    kind: pmcheck::BugKind::MissingFlushFence,
                    addr: 0,
                    len: 8,
                    store_at: e.at.clone(),
                    store_loc: e.loc.clone(),
                    stack: e.stack.clone(),
                    store_seq: e.seq,
                    checkpoint: pmcheck::Checkpoint::ProgramEnd,
                    unflushed_lines: vec![],
                };
                sites.push(locate(&m, &fake_bug).unwrap());
            }
        }
        assert_eq!(sites.len(), 2);
        let a1 = apply_hoist(&mut m, &sites[0], 1, &pm_stores, &mut state, &opts);
        let a2 = apply_hoist(&mut m, &sites[1], 1, &pm_stores, &mut state, &opts);
        assert_eq!(a1.clones_created, 1);
        assert_eq!(a2.clones_created, 0, "second hoist reuses update_PM");
        pmir::verify::verify_module(&m).unwrap();
        let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
        assert!(checked.report.is_clean(), "{}", checked.report.render());
    }

    #[test]
    fn no_pointer_arg_call_site_poisons_parents() {
        let src = r#"
            fn leaf() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
            }
            fn mid() { leaf(); }
            fn main() { mid(); }
        "#;
        let m = pmlang::compile_one("n.pmc", src).unwrap();
        let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
        let bug = checked.report.deduped_bugs()[0].clone();
        let mut site = locate(&m, &bug).unwrap();
        site.i_func = m.function_by_name("main");
        let aa = AliasAnalysis::analyze(&m);
        let marking = PmMarking::full(&aa);
        let d = choose_fix_site(&m, &aa, &marking, &site);
        assert_eq!(d.depth, 0, "no-arg call sites force the intraproc fix");
        assert!(d.scores[1..].iter().all(|&(_, s)| s == NEG_INF));
    }

    #[test]
    fn i_func_limits_candidates() {
        // The crash point is inside `mid`, so the subprogram cannot be
        // rooted at `mid` or `main` — only the leaf store or the call to
        // `leaf` inside `mid` qualify... rooting at leaf means retargeting
        // the call site in mid (depth 1); depth 2 would root at mid itself
        // which is I's function, so it is excluded.
        let src = r#"
            fn leaf(p: ptr) { store8(p, 0, 1); }
            fn mid(p: ptr) {
                leaf(p);
                crashpoint();
            }
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                mid(p);
            }
        "#;
        let m = pmlang::compile_one("i.pmc", src).unwrap();
        let checked = run_and_check(&m, "main", VmOptions::default()).unwrap();
        let bug = checked
            .report
            .bugs
            .iter()
            .find(|b| matches!(b.checkpoint, pmcheck::Checkpoint::CrashPoint(_)))
            .unwrap()
            .clone();
        let mut site = locate(&m, &bug).unwrap();
        site.i_func = m.function_by_name("mid");
        let aa = AliasAnalysis::analyze(&m);
        let marking = PmMarking::full(&aa);
        let d = choose_fix_site(&m, &aa, &marking, &site);
        // Depths considered: 0 (store) and 1 (call in mid). Never 2.
        assert_eq!(d.scores.len(), 2);
    }
}
