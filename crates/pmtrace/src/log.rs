//! The portable line-based trace format — the adapter surface for foreign
//! bug finders.
//!
//! The paper's Hippocrates accepts traces from pmemcheck and PMTest (§5.1):
//! any tool that can report *operation kind, location, and call stack* can
//! drive the repair engine. This module defines that minimal interchange:
//! one event per line, `KEY=VALUE` fields, `<-`-separated stacks:
//!
//! ```text
//! REGISTER pool=0 base=0x300000000000 size=4096 at=main#2 loc=main.pmc:3
//! STORE addr=0x300000000000 len=8 at=update#4 loc=main.pmc:12 stack=update<-modify@9(main.pmc:30)<-main@17(main.pmc:41)
//! FLUSH kind=CLWB addr=0x300000000000 at=main#9
//! FENCE kind=SFENCE at=main#10
//! CRASHPOINT
//! END
//! ```
//!
//! `at=function#inst` is the structural reference; `loc=file:line[:col]`
//! the source position; both are optional (Hippocrates falls back from one
//! to the other). Stack frames after the first carry
//! `function@call_inst(loc)`.

use crate::event::{Event, EventKind, FenceKind, FlushKind, Frame, IrRef, Trace, TraceLoc};
use std::fmt::Write as _;

/// A parse failure with its 1-based line number and the byte offset of that
/// line's start in the input — enough for a caller holding the raw bytes to
/// point a cursor at the corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogError {
    /// 1-based line.
    pub line: usize,
    /// Byte offset of the line's first byte in the input.
    pub byte_offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace log line {} (byte {}): {}",
            self.line, self.byte_offset, self.message
        )
    }
}

impl std::error::Error for LogError {}

/// Serializes a trace to the portable log format.
pub fn to_log(trace: &Trace) -> String {
    let mut out = String::new();
    for e in &trace.events {
        let mut line = match &e.kind {
            EventKind::Store { addr, len } => format!("STORE addr={addr:#x} len={len}"),
            EventKind::Flush { kind, addr } => {
                format!("FLUSH kind={} addr={addr:#x}", flush_name(*kind))
            }
            EventKind::Fence { kind } => format!("FENCE kind={}", fence_name(*kind)),
            EventKind::RegisterPool { hint, base, size } => {
                format!("REGISTER pool={hint} base={base:#x} size={size}")
            }
            EventKind::CrashPoint => "CRASHPOINT".to_string(),
            EventKind::ProgramEnd => "END".to_string(),
        };
        if let Some(at) = &e.at {
            let _ = write!(line, " at={}#{}", at.function, at.inst);
        }
        if let Some(loc) = &e.loc {
            let _ = write!(line, " loc={}:{}:{}", loc.file, loc.line, loc.col);
        }
        if !e.stack.is_empty() {
            let frames: Vec<String> = e
                .stack
                .iter()
                .map(|f| {
                    let mut s = f.function.clone();
                    if let Some(ci) = f.call_inst {
                        let _ = write!(s, "@{ci}");
                    }
                    if let Some(loc) = &f.loc {
                        let _ = write!(s, "({}:{}:{})", loc.file, loc.line, loc.col);
                    }
                    s
                })
                .collect();
            let _ = write!(line, " stack={}", frames.join("<-"));
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Parses the portable log format; sequence numbers are assigned in order.
///
/// # Errors
///
/// Returns a [`LogError`] naming the offending line.
pub fn from_log(text: &str) -> Result<Trace, LogError> {
    from_log_obs(text, &pmobs::Obs::default())
}

/// [`from_log`] with ingest telemetry: records the `trace.ingest` span and
/// the `trace.ingest.bytes` / `trace.ingest.events` /
/// `trace.ingest.parse_errors` counters into `obs`.
///
/// # Errors
///
/// Returns a [`LogError`] naming the offending line.
pub fn from_log_obs(text: &str, obs: &pmobs::Obs) -> Result<Trace, LogError> {
    let _span = obs.span("trace.ingest");
    obs.add("trace.ingest.bytes", text.len() as u64);
    let parsed = from_log_inner(text);
    match &parsed {
        Ok(trace) => obs.add("trace.ingest.events", trace.events.len() as u64),
        Err(_) => obs.add("trace.ingest.parse_errors", 1),
    }
    parsed
}

fn from_log_inner(text: &str) -> Result<Trace, LogError> {
    let mut trace = Trace::new();
    let mut seq = 0u64;
    let mut offset = 0usize;
    for (ln, full) in text.split_inclusive('\n').enumerate() {
        let line_no = ln + 1;
        let line_offset = offset;
        offset += full.len();
        let raw = full.trim();
        if raw.is_empty() || raw.starts_with('#') {
            continue;
        }
        let err = |msg: String| LogError {
            line: line_no,
            byte_offset: line_offset,
            message: msg,
        };
        let mut parts = raw.split_whitespace();
        let Some(head) = parts.next() else { continue };
        let mut fields: Vec<(&str, &str)> = vec![];
        for p in parts {
            let (k, v) = p
                .split_once('=')
                .ok_or_else(|| err(format!("malformed field `{p}`")))?;
            fields.push((k, v));
        }
        let get = |key: &str| fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
        let need = |key: &str| get(key).ok_or_else(|| err(format!("missing field `{key}`")));
        let num = |v: &str| -> Result<u64, LogError> {
            let parsed = if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                v.parse()
            };
            parsed.map_err(|_| err(format!("bad number `{v}`")))
        };

        let kind = match head {
            "STORE" => EventKind::Store {
                addr: num(need("addr")?)?,
                len: num(need("len")?)?,
            },
            "FLUSH" => EventKind::Flush {
                kind: parse_flush(need("kind")?).ok_or_else(|| err("bad flush kind".into()))?,
                addr: num(need("addr")?)?,
            },
            "FENCE" => EventKind::Fence {
                kind: parse_fence(need("kind")?).ok_or_else(|| err("bad fence kind".into()))?,
            },
            "REGISTER" => EventKind::RegisterPool {
                hint: num(need("pool")?)?,
                base: num(need("base")?)?,
                size: num(need("size")?)?,
            },
            "CRASHPOINT" => EventKind::CrashPoint,
            "END" => EventKind::ProgramEnd,
            other => return Err(err(format!("unknown event `{other}`"))),
        };

        let at = match get("at") {
            Some(v) => Some(parse_at(v).ok_or_else(|| err(format!("bad at `{v}`")))?),
            None => None,
        };
        let loc = match get("loc") {
            Some(v) => Some(parse_loc(v).ok_or_else(|| err(format!("bad loc `{v}`")))?),
            None => None,
        };
        let stack = match get("stack") {
            Some(v) => parse_stack(v).ok_or_else(|| err(format!("bad stack `{v}`")))?,
            None => vec![],
        };

        trace.push(Event {
            seq,
            kind,
            at,
            loc,
            stack,
        });
        seq += 1;
    }
    Ok(trace)
}

fn flush_name(k: FlushKind) -> &'static str {
    match k {
        FlushKind::Clwb => "CLWB",
        FlushKind::ClflushOpt => "CLFLUSHOPT",
        FlushKind::Clflush => "CLFLUSH",
    }
}

fn parse_flush(s: &str) -> Option<FlushKind> {
    Some(match s {
        "CLWB" => FlushKind::Clwb,
        "CLFLUSHOPT" => FlushKind::ClflushOpt,
        "CLFLUSH" => FlushKind::Clflush,
        _ => return None,
    })
}

fn fence_name(k: FenceKind) -> &'static str {
    match k {
        FenceKind::Sfence => "SFENCE",
        FenceKind::Mfence => "MFENCE",
    }
}

fn parse_fence(s: &str) -> Option<FenceKind> {
    Some(match s {
        "SFENCE" => FenceKind::Sfence,
        "MFENCE" => FenceKind::Mfence,
        _ => return None,
    })
}

fn parse_at(s: &str) -> Option<IrRef> {
    let (f, i) = s.rsplit_once('#')?;
    Some(IrRef {
        function: f.to_string(),
        inst: i.parse().ok()?,
    })
}

fn parse_loc(s: &str) -> Option<TraceLoc> {
    let mut it = s.rsplitn(3, ':');
    let col: u32 = it.next()?.parse().ok()?;
    let line: u32 = it.next()?.parse().ok()?;
    let file = it.next()?.to_string();
    Some(TraceLoc { file, line, col })
}

fn parse_stack(s: &str) -> Option<Vec<Frame>> {
    let mut frames = vec![];
    for part in s.split("<-") {
        // function[@call_inst][(loc)]
        let (head, loc) = match part.split_once('(') {
            Some((h, rest)) => {
                let loc = rest.strip_suffix(')')?;
                (h, Some(parse_loc(loc)?))
            }
            None => (part, None),
        };
        let (function, call_inst) = match head.split_once('@') {
            Some((f, ci)) => (f.to_string(), Some(ci.parse().ok()?)),
            None => (head.to_string(), None),
        };
        frames.push(Frame {
            function,
            call_inst,
            loc,
        });
    }
    Some(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(Event {
            seq: 0,
            kind: EventKind::RegisterPool {
                hint: 0,
                base: 0x3000_0000_0000,
                size: 4096,
            },
            at: Some(IrRef {
                function: "main".into(),
                inst: 2,
            }),
            loc: Some(TraceLoc {
                file: "a.pmc".into(),
                line: 3,
                col: 0,
            }),
            stack: vec![Frame {
                function: "main".into(),
                call_inst: None,
                loc: None,
            }],
        });
        t.push(Event {
            seq: 1,
            kind: EventKind::Store {
                addr: 0x3000_0000_0000,
                len: 8,
            },
            at: Some(IrRef {
                function: "update".into(),
                inst: 4,
            }),
            loc: None,
            stack: vec![
                Frame {
                    function: "update".into(),
                    call_inst: None,
                    loc: None,
                },
                Frame {
                    function: "main".into(),
                    call_inst: Some(9),
                    loc: Some(TraceLoc {
                        file: "a.pmc".into(),
                        line: 30,
                        col: 5,
                    }),
                },
            ],
        });
        t.push(Event {
            seq: 2,
            kind: EventKind::Flush {
                kind: FlushKind::Clwb,
                addr: 0x3000_0000_0000,
            },
            at: None,
            loc: None,
            stack: vec![],
        });
        t.push(Event {
            seq: 3,
            kind: EventKind::Fence {
                kind: FenceKind::Sfence,
            },
            at: None,
            loc: None,
            stack: vec![],
        });
        t.push(Event {
            seq: 4,
            kind: EventKind::ProgramEnd,
            at: None,
            loc: None,
            stack: vec![],
        });
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let log = to_log(&t);
        let t2 = from_log(&log).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let log = "# a foreign tool's header\n\nCRASHPOINT\nEND\n";
        let t = from_log(log).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.events[0].kind, EventKind::CrashPoint);
    }

    #[test]
    fn errors_report_lines() {
        let err = from_log("STORE addr=0x10\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("len"));
        let err = from_log("END\nBOGUS\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = from_log("FLUSH kind=NOPE addr=0x10\n").unwrap_err();
        assert!(err.message.contains("flush"));
    }

    #[test]
    fn errors_report_byte_offsets() {
        let err = from_log("END\nBOGUS\n").unwrap_err();
        assert_eq!(err.byte_offset, 4, "offset of the offending line's start");
        let err = from_log("# header\nCRASHPOINT\nSTORE addr=zz len=8\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.byte_offset, "# header\nCRASHPOINT\n".len());
        assert!(err.to_string().contains("byte"), "{err}");
    }

    #[test]
    fn truncated_input_yields_structured_error() {
        // A record cut mid-field (no trailing newline) must parse-fail with
        // position context, not panic.
        let whole = to_log(&sample());
        let cut = &whole[..whole.len() - 7];
        match from_log(cut) {
            // Cutting inside the final line usually mangles a field…
            Err(e) => assert!(e.line >= 1 && e.byte_offset < whole.len()),
            // …but a cut can also land between fields, leaving valid lines.
            Ok(t) => assert!(t.len() <= sample().len()),
        }
    }

    #[test]
    fn hex_and_decimal_numbers() {
        let t = from_log("STORE addr=0x40 len=8\nSTORE addr=64 len=8\n").unwrap();
        let addrs: Vec<u64> = t
            .events
            .iter()
            .map(|e| match e.kind {
                EventKind::Store { addr, .. } => addr,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(addrs, vec![64, 64]);
    }
}
