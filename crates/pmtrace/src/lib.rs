//! `pmtrace` — the PM-operation trace schema shared by the bug finder and
//! the repair engine.
//!
//! The Hippocrates pipeline (paper Fig. 2) starts from "a PM-specific
//! execution trace where each event includes the source line where the event
//! occurred, the stack trace at the time of the event, and PM-specific
//! information" (§4.1). This crate is that interchange format: the `pmvm`
//! interpreter emits it, the `pmcheck` durability checker consumes and
//! annotates it, and the `hippocrates` repair engine reads it to locate the
//! store behind every bug.
//!
//! Like pmemcheck's log, the trace records *persistent-memory* operations
//! only — PM stores, flushes, fences, pool registrations, crash points, and
//! program end — not every volatile access.

pub mod data;
pub mod error;
pub mod event;
pub mod format;
pub mod log;

pub use data::{DataLog, DataRecord};
pub use error::{TraceError, TraceWarning};
pub use event::{Event, EventKind, FenceKind, FlushKind, Frame, IrRef, Trace, TraceLoc};
pub use log::LogError;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(Event {
            seq: 0,
            kind: EventKind::RegisterPool {
                hint: 0,
                base: 0x3000_0000_0000,
                size: 4096,
            },
            at: Some(IrRef {
                function: "main".into(),
                inst: 0,
            }),
            loc: Some(TraceLoc {
                file: "main.pmc".into(),
                line: 3,
                col: 1,
            }),
            stack: vec![Frame {
                function: "main".into(),
                call_inst: None,
                loc: None,
            }],
        });
        t.push(Event {
            seq: 1,
            kind: EventKind::Store {
                addr: 0x3000_0000_0000,
                len: 8,
            },
            at: Some(IrRef {
                function: "update".into(),
                inst: 4,
            }),
            loc: Some(TraceLoc {
                file: "main.pmc".into(),
                line: 12,
                col: 5,
            }),
            stack: vec![
                Frame {
                    function: "update".into(),
                    call_inst: None,
                    loc: None,
                },
                Frame {
                    function: "main".into(),
                    call_inst: Some(9),
                    loc: Some(TraceLoc {
                        file: "main.pmc".into(),
                        line: 30,
                        col: 3,
                    }),
                },
            ],
        });
        t.push(Event {
            seq: 2,
            kind: EventKind::ProgramEnd,
            at: None,
            loc: None,
            stack: vec![],
        });
        t
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let json = t.to_json().unwrap();
        let t2 = Trace::from_json(&json).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn text_rendering_mentions_ops() {
        let t = sample();
        let text = format::render_text(&t);
        assert!(text.contains("REGISTER"), "{text}");
        assert!(text.contains("STORE"), "{text}");
        assert!(text.contains("main.pmc:12"), "{text}");
        assert!(text.contains("END"), "{text}");
    }

    #[test]
    fn counts() {
        let t = sample();
        assert_eq!(t.count(|k| matches!(k, EventKind::Store { .. })), 1);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }
}
