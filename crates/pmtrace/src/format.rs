//! Human-readable (pmemcheck-style) rendering of traces.

use crate::event::{Event, EventKind, Trace};
use std::fmt::Write as _;

/// Renders a trace in a pmemcheck-log-like text form, one event per line
/// with indented stack frames. Intended for humans and golden tests; the
/// machine-readable format is [`Trace::to_json`].
pub fn render_text(trace: &Trace) -> String {
    let mut out = String::new();
    for e in &trace.events {
        let _ = writeln!(out, "{}", render_event(e));
        for f in e.stack.iter().skip(1) {
            let loc = f
                .loc
                .as_ref()
                .map(|l| format!(" at {l}"))
                .unwrap_or_default();
            let _ = writeln!(out, "    by {}{}", f.function, loc);
        }
    }
    out
}

fn render_event(e: &Event) -> String {
    let head = match &e.kind {
        EventKind::Store { addr, len } => format!("[{:>6}] STORE  {addr:#x}+{len}", e.seq),
        EventKind::Flush { kind, addr } => {
            format!("[{:>6}] FLUSH  {addr:#x} ({kind:?})", e.seq)
        }
        EventKind::Fence { kind } => format!("[{:>6}] FENCE  ({kind:?})", e.seq),
        EventKind::RegisterPool { hint, base, size } => {
            format!("[{:>6}] REGISTER pool {hint} at {base:#x}+{size}", e.seq)
        }
        EventKind::CrashPoint => format!("[{:>6}] CRASHPOINT", e.seq),
        EventKind::ProgramEnd => format!("[{:>6}] END", e.seq),
    };
    let mut s = head;
    if let Some(loc) = &e.loc {
        let _ = write!(s, "  at {loc}");
    }
    if let Some(at) = &e.at {
        let _ = write!(s, "  in @{}#{}", at.function, at.inst);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FenceKind, FlushKind};

    #[test]
    fn renders_each_kind() {
        let mk = |kind| Event {
            seq: 1,
            kind,
            at: None,
            loc: None,
            stack: vec![],
        };
        let t: Trace = [
            mk(EventKind::Store { addr: 0x30, len: 8 }),
            mk(EventKind::Flush {
                kind: FlushKind::Clwb,
                addr: 0x30,
            }),
            mk(EventKind::Fence {
                kind: FenceKind::Sfence,
            }),
            mk(EventKind::CrashPoint),
            mk(EventKind::ProgramEnd),
        ]
        .into_iter()
        .collect();
        let text = render_text(&t);
        for needle in ["STORE", "FLUSH", "FENCE", "CRASHPOINT", "END"] {
            assert!(text.contains(needle), "missing {needle}: {text}");
        }
    }
}
