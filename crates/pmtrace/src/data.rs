//! The PM write-data side channel.
//!
//! [`crate::event::EventKind::Store`] records *where* a store landed but not
//! *what* it wrote — pmemcheck's log does the same, and the repair engine
//! never needs the bytes. Crash-state exploration does: to materialize the
//! durable image at an arbitrary trace position it must replay every PM
//! write's contents. Rather than widening the `Store` event (and every
//! consumer of it), the interpreter captures the bytes into this parallel
//! log, keyed by the originating event's sequence number.

use serde::{Deserialize, Serialize};

/// The bytes one PM-mutating event wrote.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataRecord {
    /// Sequence number of the [`crate::Event`] this write belongs to.
    pub seq: u64,
    /// Start address of the written range.
    pub addr: u64,
    /// The bytes as they landed (post-store cache contents).
    pub bytes: Vec<u8>,
}

/// All PM write data for one execution, in event order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataLog {
    /// Records sorted by `seq` (the interpreter emits them in order).
    pub records: Vec<DataRecord>,
}

impl DataLog {
    /// An empty log.
    pub fn new() -> Self {
        DataLog::default()
    }

    /// Appends a record.
    pub fn push(&mut self, seq: u64, addr: u64, bytes: Vec<u8>) {
        self.records.push(DataRecord { seq, addr, bytes });
    }

    /// The record for event `seq`, if that event wrote PM data.
    pub fn for_seq(&self, seq: u64) -> Option<&DataRecord> {
        self.records
            .binary_search_by_key(&seq, |r| r.seq)
            .ok()
            .map(|i| &self.records[i])
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total payload bytes captured.
    pub fn byte_count(&self) -> usize {
        self.records.iter().map(|r| r.bytes.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut log = DataLog::new();
        log.push(3, 0x1000, vec![1, 2, 3]);
        log.push(7, 0x2000, vec![4]);
        assert_eq!(log.len(), 2);
        assert_eq!(log.byte_count(), 4);
        assert_eq!(log.for_seq(3).unwrap().bytes, vec![1, 2, 3]);
        assert!(log.for_seq(4).is_none());
        assert!(!log.is_empty());
    }

    #[test]
    fn json_roundtrip() {
        let mut log = DataLog::new();
        log.push(0, 0x10, vec![9; 8]);
        let s = serde_json::to_string(&log).unwrap();
        let back: DataLog = serde_json::from_str(&s).unwrap();
        assert_eq!(log, back);
    }
}
