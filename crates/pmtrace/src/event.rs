//! Trace events.

use serde::{Deserialize, Serialize};

/// A flush instruction kind as recorded in traces (tool-neutral mirror of
/// `pmir::FlushKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlushKind {
    /// `CLWB`.
    Clwb,
    /// `CLFLUSHOPT`.
    ClflushOpt,
    /// `CLFLUSH` (strongly ordered).
    Clflush,
}

impl FlushKind {
    /// Whether this flush needs a following fence for durability ordering.
    pub fn is_weakly_ordered(self) -> bool {
        !matches!(self, FlushKind::Clflush)
    }
}

/// A fence instruction kind as recorded in traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FenceKind {
    /// `SFENCE`.
    Sfence,
    /// `MFENCE`.
    Mfence,
}

/// A resolved source position (file names are resolved strings so the trace
/// stands alone, independent of any module's file table).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceLoc {
    /// Source file name.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column, 0 when unknown.
    pub col: u32,
}

impl std::fmt::Display for TraceLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// A structural reference to the IR instruction that produced an event:
/// function name plus instruction index in that function's arena. Instruction
/// ids are append-only in `pmir`, so references stay valid across repair.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IrRef {
    /// Containing function name.
    pub function: String,
    /// `pmir::InstId` index within the function.
    pub inst: u32,
}

/// One call-stack frame at the time of an event. `stack[0]` is the innermost
/// frame (where the event executed); the last frame is `main`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Frame {
    /// The frame's function name.
    pub function: String,
    /// For non-innermost frames: the call instruction (in *this* frame's
    /// function) that entered the next-inner frame. `None` for the innermost
    /// frame.
    pub call_inst: Option<u32>,
    /// Source location of that call, if known.
    pub loc: Option<TraceLoc>,
}

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A store (or memcpy/memset) that modified persistent memory.
    Store {
        /// Start address of the modified PM range.
        addr: u64,
        /// Length in bytes.
        len: u64,
    },
    /// A cache-line flush whose target line is in persistent memory.
    Flush {
        /// Flush instruction family.
        kind: FlushKind,
        /// The requested address (the affected line is `addr & !63`).
        addr: u64,
    },
    /// A memory fence.
    Fence {
        /// Fence instruction family.
        kind: FenceKind,
    },
    /// A PM pool was mapped.
    RegisterPool {
        /// The program-chosen pool id.
        hint: u64,
        /// Base address the pool was mapped at.
        base: u64,
        /// Pool size in bytes.
        size: u64,
    },
    /// An explicit crash point (`crashpoint` in the IR): durability of all
    /// earlier PM updates is required here.
    CrashPoint,
    /// Orderly program end; pmemcheck audits outstanding stores here.
    ProgramEnd,
}

/// One trace event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Monotonic sequence number.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// The IR instruction behind the event, when known.
    pub at: Option<IrRef>,
    /// Source location of that instruction, when known.
    pub loc: Option<TraceLoc>,
    /// Call stack, innermost first.
    pub stack: Vec<Frame>,
}

/// An ordered list of events — the bug-finder's execution log.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Events in execution order.
    pub events: Vec<Event>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Counts events whose kind matches `pred`.
    pub fn count(&self, pred: impl Fn(&EventKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` failures (effectively unreachable for this
    /// schema).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a trace from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Parses a trace from JSON, mapping failures into the structured
    /// [`crate::TraceError`] taxonomy.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TraceError::Json`] on malformed input.
    pub fn from_json_diagnostic(s: &str) -> Result<Self, crate::TraceError> {
        Self::from_json(s).map_err(|e| crate::TraceError::Json {
            message: e.to_string(),
        })
    }

    /// Structural sanity check: reports oddities a parse cannot reject but
    /// a consumer should not silently trust — duplicated records, events
    /// after the program ended. An empty result means the trace is
    /// well-formed.
    pub fn validate(&self) -> Vec<crate::TraceWarning> {
        let mut warnings = vec![];
        let mut ended_at: Option<u64> = None;
        for (i, e) in self.events.iter().enumerate() {
            if let Some(end_seq) = ended_at {
                warnings.push(crate::TraceWarning {
                    seq: e.seq,
                    message: format!("event after program end (END at event {end_seq})"),
                });
            }
            if e.kind == EventKind::ProgramEnd && ended_at.is_none() {
                ended_at = Some(e.seq);
            }
            // A byte-identical neighbor (ignoring seq) is a duplicated
            // record: no real execution emits the same store/flush twice
            // from the same instruction back to back without the sequence
            // advancing through other events.
            if i > 0 {
                let p = &self.events[i - 1];
                if p.kind == e.kind
                    && p.at == e.at
                    && p.loc == e.loc
                    && p.stack == e.stack
                    && !matches!(e.kind, EventKind::CrashPoint)
                {
                    warnings.push(crate::TraceWarning {
                        seq: e.seq,
                        message: format!("duplicated record (identical to event {})", p.seq),
                    });
                }
            }
        }
        warnings
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<T: IntoIterator<Item = Event>>(iter: T) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<Event> for Trace {
    fn extend<T: IntoIterator<Item = Event>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_ordering() {
        assert!(FlushKind::Clwb.is_weakly_ordered());
        assert!(!FlushKind::Clflush.is_weakly_ordered());
    }

    #[test]
    fn collect_and_extend() {
        let e = Event {
            seq: 0,
            kind: EventKind::ProgramEnd,
            at: None,
            loc: None,
            stack: vec![],
        };
        let mut t: Trace = std::iter::once(e.clone()).collect();
        t.extend(std::iter::once(e));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn traceloc_display() {
        let l = TraceLoc {
            file: "a.pmc".into(),
            line: 7,
            col: 0,
        };
        assert_eq!(l.to_string(), "a.pmc:7");
    }

    #[test]
    fn from_json_diagnostic_maps_errors() {
        assert!(Trace::from_json_diagnostic("{\"events\": [").is_err());
        let t = Trace::new();
        let json = t.to_json().expect("serializes");
        assert_eq!(Trace::from_json_diagnostic(&json).expect("parses"), t);
    }

    #[test]
    fn validate_flags_duplicates_and_post_end_events() {
        let store = Event {
            seq: 0,
            kind: EventKind::Store { addr: 64, len: 8 },
            at: None,
            loc: None,
            stack: vec![],
        };
        let end = Event {
            seq: 0,
            kind: EventKind::ProgramEnd,
            at: None,
            loc: None,
            stack: vec![],
        };
        let mut t = Trace::new();
        for (i, mut e) in [store.clone(), store, end.clone(), end]
            .into_iter()
            .enumerate()
        {
            e.seq = i as u64;
            t.push(e);
        }
        let w = t.validate();
        assert!(w.iter().any(|w| w.message.contains("duplicated")), "{w:?}");
        assert!(
            w.iter().any(|w| w.message.contains("after program end")),
            "{w:?}"
        );
    }

    #[test]
    fn validate_accepts_clean_trace() {
        let mut t = Trace::new();
        t.push(Event {
            seq: 0,
            kind: EventKind::Store { addr: 64, len: 8 },
            at: None,
            loc: None,
            stack: vec![],
        });
        t.push(Event {
            seq: 1,
            kind: EventKind::ProgramEnd,
            at: None,
            loc: None,
            stack: vec![],
        });
        assert!(t.validate().is_empty());
    }
}
