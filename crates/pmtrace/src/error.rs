//! The trace-input error taxonomy.
//!
//! Every parse path in this crate reports *where* an input is corrupt — the
//! 1-based line and the byte offset of that line for the text log format,
//! and the decoder message for JSON — instead of panicking. `hippoctl` (and
//! the repair engine's degraded mode) surface these verbatim as the
//! structured diagnostic for a bad trace.

use crate::log::LogError;
use std::fmt;

/// A structured trace-input failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The portable text log format failed to parse; carries the line and
    /// byte-offset context.
    Log(LogError),
    /// The JSON trace encoding failed to decode.
    Json {
        /// The decoder's message.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Log(e) => e.fmt(f),
            TraceError::Json { message } => write!(f, "trace json: {message}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<LogError> for TraceError {
    fn from(e: LogError) -> Self {
        TraceError::Log(e)
    }
}

/// A structural oddity in a parsed trace that is not a parse failure — e.g.
/// a duplicated record. The trace is still usable; consumers report these
/// as diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceWarning {
    /// Sequence number of the offending event.
    pub seq: u64,
    /// What is odd about it.
    pub message: String,
}

impl fmt::Display for TraceWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace event {}: {}", self.seq, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = TraceError::from(LogError {
            line: 3,
            byte_offset: 41,
            message: "bad number `xyz`".into(),
        });
        let s = e.to_string();
        assert!(s.contains("line 3"), "{s}");
        assert!(s.contains("byte 41"), "{s}");
        let e = TraceError::Json {
            message: "trailing characters".into(),
        };
        assert!(e.to_string().contains("trailing"));
    }
}
