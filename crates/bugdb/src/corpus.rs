//! The 23-bug reproduction corpus index (§6.1): 11 PMDK issues, 2 P-CLHT
//! bugs, 10 memcached-pm bugs, with the Fig. 3 comparison metadata for the
//! PMDK subset.

use serde::{Deserialize, Serialize};

/// The system a corpus bug lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Target {
    /// minipmdk unit tests.
    Pmdk,
    /// The P-CLHT index.
    Pclht,
    /// mini-memcached.
    Memcached,
}

impl Target {
    /// Display name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Target::Pmdk => "PMDK (unit tests)",
            Target::Pclht => "P-CLHT (RECIPE)",
            Target::Memcached => "memcached-pm",
        }
    }
}

/// The fix shape Hippocrates is expected to produce (Fig. 3; recorded for
/// the PMDK issues only, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExpectedFix {
    /// A direct `CLWB` next to the store.
    IntraproceduralFlush,
    /// A persistent-subprogram transformation with a call-site fence.
    InterproceduralFlushFence,
}

/// One corpus entry.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CorpusBug {
    /// Stable id; also the `pmlang` `#[tag(…)]` name that seeds the bug.
    pub id: &'static str,
    /// The containing system.
    pub target: Target,
    /// What the missing persistence operation protects.
    pub description: &'static str,
    /// The expected Hippocrates fix shape (PMDK issues only).
    pub expected_fix: Option<ExpectedFix>,
    /// The developer's fix, as recorded in the issue tracker (PMDK only).
    pub developer_fix: Option<&'static str>,
    /// Fig. 3's qualitative comparison verdict (PMDK only).
    pub comparison: Option<&'static str>,
}

const IDENTICAL: &str = "Functionally identical";
const EQUIVALENT: &str = "Functionally equivalent; PMDK's fix is more portable";
const DEV_INTER: &str = "Interprocedural flush+fence (pmem_persist at the call site)";
const DEV_PORTABLE: &str = "Interprocedural flush (runtime-dispatched libpmem flush)";

/// The full 23-bug corpus, in evaluation order.
pub fn corpus() -> Vec<CorpusBug> {
    let mut v = vec![];
    // The eight interprocedural PMDK issues.
    for (id, description) in [
        (
            "pmdk-447",
            "header block write after pmem_memcpy-style copy",
        ),
        ("pmdk-458", "heap-header cursor update"),
        ("pmdk-459", "root-object installation (offset + size)"),
        ("pmdk-460", "intrusive list push (head + node link)"),
        ("pmdk-461", "checksum field update"),
        (
            "pmdk-585",
            "large buffer initialization (multi-line memset)",
        ),
        ("pmdk-942", "free-list push"),
        ("pmdk-945", "redo-log append (cursor + payload)"),
    ] {
        v.push(CorpusBug {
            id,
            target: Target::Pmdk,
            description,
            expected_fix: Some(ExpectedFix::InterproceduralFlushFence),
            developer_fix: Some(DEV_INTER),
            comparison: Some(IDENTICAL),
        });
    }
    // The three intraprocedural PMDK issues.
    for (id, description) in [
        ("pmdk-452", "single-line object field store before fence"),
        ("pmdk-940", "root fields written by a unit test"),
        ("pmdk-943", "two sub-word fields in one cache line"),
    ] {
        v.push(CorpusBug {
            id,
            target: Target::Pmdk,
            description,
            expected_fix: Some(ExpectedFix::IntraproceduralFlush),
            developer_fix: Some(DEV_PORTABLE),
            comparison: Some(EQUIVALENT),
        });
    }
    // P-CLHT.
    v.push(CorpusBug {
        id: "pclht-1",
        target: Target::Pclht,
        description: "newly written key/value pair not persisted",
        expected_fix: None,
        developer_fix: None,
        comparison: None,
    });
    v.push(CorpusBug {
        id: "pclht-2",
        target: Target::Pclht,
        description: "overflow-bucket link flush not fenced",
        expected_fix: None,
        developer_fix: None,
        comparison: None,
    });
    // memcached-pm.
    for (id, description) in [
        ("mm-1", "item header fields not persisted after allocation"),
        ("mm-2", "item value bytes not persisted after copy"),
        ("mm-3", "item hash-chain pointer not persisted"),
        ("mm-4", "hash bucket head not persisted"),
        ("mm-5", "LRU head pointer not persisted"),
        ("mm-6", "item LRU links not persisted"),
        ("mm-7", "stats counter flush missing (fence present)"),
        ("mm-8", "item expiry update not persisted"),
        ("mm-9", "CAS flush not fenced before the crash point"),
        ("mm-10", "bucket-chain unlink not persisted"),
    ] {
        v.push(CorpusBug {
            id,
            target: Target::Memcached,
            description,
            expected_fix: None,
            developer_fix: None,
            comparison: None,
        });
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Target::Pmdk.label(), "PMDK (unit tests)");
        assert_eq!(Target::Pclht.label(), "P-CLHT (RECIPE)");
    }

    #[test]
    fn pmdk_entries_have_fig3_metadata() {
        for b in corpus() {
            if b.target == Target::Pmdk {
                assert!(b.expected_fix.is_some(), "{}", b.id);
                assert!(b.developer_fix.is_some(), "{}", b.id);
                assert!(b.comparison.is_some(), "{}", b.id);
            } else {
                assert!(b.expected_fix.is_none(), "{}", b.id);
            }
        }
    }
}
