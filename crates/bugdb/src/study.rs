//! The Fig. 1 bug-study dataset: 26 PMDK issues found with pmemcheck and
//! fixed by developers, grouped as in the paper.

use serde::{Deserialize, Serialize};

/// One row of Fig. 1: a group of issues with shared provenance.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IssueGroup {
    /// The PMDK issue-tracker numbers.
    pub issues: &'static [u32],
    /// Average commits to a passing build, when the tracker recorded it.
    pub avg_commits: Option<u32>,
    /// Average days from open to close.
    pub avg_days: Option<u32>,
    /// Maximum days from open to close.
    pub max_days: Option<u32>,
    /// "Core library/tool bug" or "API Misuse".
    pub kind: &'static str,
}

/// The bottom "Average" row of Fig. 1, computed from the groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StudySummary {
    /// Total issues across groups.
    pub total_issues: usize,
    /// Weighted average commits over groups with data.
    pub avg_commits: u32,
    /// Weighted average days over groups with data.
    pub avg_days: u32,
    /// Maximum days across groups.
    pub max_days: u32,
}

/// The four groups of Fig. 1.
pub fn study_rows() -> Vec<IssueGroup> {
    vec![
        IssueGroup {
            issues: &[440, 441, 444],
            avg_commits: None,
            avg_days: None,
            max_days: None,
            kind: "Core library/tool bug",
        },
        IssueGroup {
            issues: &[
                442, 446, 447, 448, 449, 450, 452, 458, 459, 460, 461, 463, 465, 466,
            ],
            avg_commits: Some(17),
            avg_days: Some(33),
            max_days: Some(66),
            kind: "Core library/tool bug",
        },
        IssueGroup {
            issues: &[940, 942, 943, 945],
            avg_commits: None,
            avg_days: None,
            max_days: None,
            kind: "API Misuse",
        },
        IssueGroup {
            issues: &[535, 585, 949, 1103, 1118],
            avg_commits: Some(2),
            avg_days: Some(15),
            max_days: Some(38),
            kind: "API Misuse",
        },
    ]
}

/// Recomputes the Fig. 1 "Average" row from the group data (issue-weighted
/// over the groups that recorded commit/day data).
pub fn study_summary() -> StudySummary {
    let rows = study_rows();
    let total_issues: usize = rows.iter().map(|r| r.issues.len()).sum();
    let mut commits_num = 0u64;
    let mut commits_den = 0u64;
    let mut days_num = 0u64;
    let mut days_den = 0u64;
    let mut max_days = 0u32;
    for r in &rows {
        let n = r.issues.len() as u64;
        if let Some(c) = r.avg_commits {
            commits_num += u64::from(c) * n;
            commits_den += n;
        }
        if let Some(d) = r.avg_days {
            days_num += u64::from(d) * n;
            days_den += n;
        }
        if let Some(m) = r.max_days {
            max_days = max_days.max(m);
        }
    }
    StudySummary {
        total_issues,
        avg_commits: (commits_num / commits_den.max(1)) as u32,
        avg_days: (days_num / days_den.max(1)) as u32,
        max_days,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_groups_26_issues() {
        let rows = study_rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows.iter().map(|r| r.issues.len()).sum::<usize>(), 26);
    }

    #[test]
    fn core_vs_misuse_counts_match_section_3_1() {
        // "17 have their root cause within the core PMDK libraries … the
        // remaining 9 bugs are caused by the misuse of PMDK's API."
        let rows = study_rows();
        let core: usize = rows
            .iter()
            .filter(|r| r.kind.starts_with("Core"))
            .map(|r| r.issues.len())
            .sum();
        assert_eq!(core, 17);
        assert_eq!(26 - core, 9);
    }
}
