//! `bugdb` — the paper's bug-study dataset (Fig. 1), the 23-bug reproduction
//! corpus index (§6.1), and the developer-fix metadata behind the Fig. 3
//! accuracy comparison.

pub mod corpus;
pub mod study;

pub use corpus::{corpus, CorpusBug, ExpectedFix, Target};
pub use study::{study_rows, study_summary, IssueGroup, StudySummary};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_23_bugs() {
        let c = corpus();
        assert_eq!(c.len(), 23);
        assert_eq!(c.iter().filter(|b| b.target == Target::Pmdk).count(), 11);
        assert_eq!(c.iter().filter(|b| b.target == Target::Pclht).count(), 2);
        assert_eq!(
            c.iter().filter(|b| b.target == Target::Memcached).count(),
            10
        );
    }

    #[test]
    fn fig3_expectations_match_the_paper() {
        let c = corpus();
        let intraproc: Vec<&str> = c
            .iter()
            .filter(|b| b.expected_fix == Some(ExpectedFix::IntraproceduralFlush))
            .map(|b| b.id)
            .collect();
        assert_eq!(intraproc, vec!["pmdk-452", "pmdk-940", "pmdk-943"]);
        let interproc = c
            .iter()
            .filter(|b| b.expected_fix == Some(ExpectedFix::InterproceduralFlushFence))
            .count();
        assert_eq!(interproc, 8);
    }

    #[test]
    fn study_summary_matches_fig1_bottom_row() {
        let s = study_summary();
        assert_eq!(s.total_issues, 26);
        assert_eq!(s.avg_commits, 13);
        assert_eq!(s.avg_days, 28);
        assert_eq!(s.max_days, 66);
    }

    #[test]
    fn ids_are_unique() {
        let c = corpus();
        let mut ids: Vec<&str> = c.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 23);
    }
}
