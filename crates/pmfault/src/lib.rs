//! pmfault — deterministic fault injection for the Hippocrates pipeline.
//!
//! The repair tool's core promise is *do no harm*: it must never make a
//! program worse, even when its inputs (traces, pools, oracles) are hostile
//! or corrupt. This crate provides the machinery to prove that the same way
//! the repairs themselves are proven — by injecting the faults and watching
//! the pipeline survive them.
//!
//! A [`FaultPlan`] is a seeded, fully deterministic set of
//! (site × trigger × kind) triples. Consumers hold an `Option<Injector>`;
//! with `None` the injection layer is a single branch on the hot path
//! (zero-cost when disabled). With a plan armed, each call to
//! [`Injector::fire`] counts a hit at a [`FaultSite`] and reports which
//! [`FaultKind`] (if any) triggers there.
//!
//! The crate is a leaf: it depends on nothing, so every layer of the stack
//! (pmem-sim, pmtrace, pmvm, pmexplore, core, cli) can depend on it without
//! cycles.

mod backoff;
mod corrupt;
mod inject;
mod plan;

pub use backoff::backoff_ms;
pub use corrupt::{bitflip_bytes, bitflip_text, duplicate_line, truncate_text};
pub use inject::Injector;
pub use plan::{
    shard_occurrence, FaultKind, FaultPlan, FaultSite, PlannedFault, Trigger, N_ARCHETYPES,
};

/// splitmix64: the seed-expansion PRNG used everywhere in this crate.
///
/// Tiny, statistically solid for seeding, and — crucially — dependency-free
/// and identical on every platform, so fault plans are reproducible from the
/// seed alone.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        let mut a = 7;
        let mut b = 7;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        let x = splitmix64(&mut a);
        let y = splitmix64(&mut a);
        assert_ne!(x, y);
    }
}
