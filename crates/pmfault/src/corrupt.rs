//! Deterministic input-corruption helpers.
//!
//! These operate on plain bytes/strings so `pmtrace` itself never has to
//! depend on this crate: the campaign (and the proptest corpus) corrupt a
//! serialized trace *outside* the parser and assert the parser reports a
//! structured error with position context instead of panicking.

use crate::splitmix64;

/// Truncate `text` mid-record: cut at a seed-chosen byte offset (clamped to
/// a char boundary) strictly inside the text. Empty/1-byte inputs are
/// returned unchanged.
pub fn truncate_text(text: &str, seed: u64) -> String {
    if text.len() < 2 {
        return text.to_string();
    }
    let mut s = seed ^ 0x7A5C_A7E1;
    let mut cut = 1 + (splitmix64(&mut s) as usize) % (text.len() - 1);
    while !text.is_char_boundary(cut) {
        cut -= 1;
    }
    text[..cut].to_string()
}

/// Flip one bit of one seed-chosen byte.
pub fn bitflip_bytes(data: &[u8], seed: u64) -> Vec<u8> {
    let mut out = data.to_vec();
    if out.is_empty() {
        return out;
    }
    let mut s = seed ^ 0xB17_F11B;
    let i = (splitmix64(&mut s) as usize) % out.len();
    let bit = (splitmix64(&mut s) % 8) as u32;
    out[i] ^= 1u8 << bit;
    out
}

/// Flip a seed-chosen byte of `text` to a different printable ASCII
/// character (so the result stays valid UTF-8 and exercises the *parser*,
/// not the UTF-8 decoder).
pub fn bitflip_text(text: &str, seed: u64) -> String {
    let mut bytes = text.as_bytes().to_vec();
    if bytes.is_empty() {
        return text.to_string();
    }
    let mut s = seed ^ 0xB17_F11B;
    let i = (splitmix64(&mut s) as usize) % bytes.len();
    let old = bytes[i];
    let mut repl = b'!' + (splitmix64(&mut s) % 94) as u8; // printable, not '\n'
    if repl == old {
        repl = if repl == b'~' { b'!' } else { repl + 1 };
    }
    bytes[i] = repl;
    String::from_utf8(bytes).unwrap_or_else(|_| text.to_string())
}

/// Duplicate one seed-chosen line of `text` (a duplicated record at append
/// time). Inputs without a duplicable line are returned unchanged.
pub fn duplicate_line(text: &str, seed: u64) -> String {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return text.to_string();
    }
    let mut s = seed ^ 0xD0_97_11_CA;
    let i = (splitmix64(&mut s) as usize) % lines.len();
    let mut out = Vec::with_capacity(lines.len() + 1);
    for (j, l) in lines.iter().enumerate() {
        out.push(*l);
        if j == i {
            out.push(*l);
        }
    }
    let mut joined = out.join("\n");
    if text.ends_with('\n') {
        joined.push('\n');
    }
    joined
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_shortens_and_is_deterministic() {
        let t = "STORE 0x100 8\nFLUSH clwb 0x100\nFENCE sfence\n";
        let a = truncate_text(t, 5);
        let b = truncate_text(t, 5);
        assert_eq!(a, b);
        assert!(a.len() < t.len());
    }

    #[test]
    fn bitflip_changes_exactly_one_byte() {
        let t = "hello world";
        let f = bitflip_text(t, 9);
        assert_eq!(f.len(), t.len());
        let diff = t.bytes().zip(f.bytes()).filter(|(a, b)| a != b).count();
        assert_eq!(diff, 1);
    }

    #[test]
    fn duplicate_adds_one_line() {
        let t = "a\nb\nc\n";
        let d = duplicate_line(t, 3);
        assert_eq!(d.lines().count(), 4);
        assert_eq!(duplicate_line(t, 3), d);
    }
}
