//! The injector: per-site hit counters over a [`FaultPlan`].

use crate::plan::{FaultKind, FaultPlan, FaultSite, N_SITES};

/// Counts dynamic occurrences of each [`FaultSite`] and reports which fault
/// (if any) fires at each occurrence.
///
/// Counters are held *by value*: cloning an `Injector` forks them. That is
/// deliberate — a cloned `Machine` (e.g. a crash-image replica) continues
/// counting from the clone point independently, which keeps runs
/// deterministic regardless of how consumers fork state.
///
/// For sites where the dynamic occurrence order is nondeterministic (the
/// work-stealing explore pool), use [`Injector::fires_at`] keyed by a stable
/// index (the candidate index) instead of the stateful [`Injector::fire`].
#[derive(Debug, Clone)]
pub struct Injector {
    plan: FaultPlan,
    hits: [u64; N_SITES],
    injected: Vec<String>,
    obs: pmobs::Obs,
}

impl Injector {
    pub fn new(plan: FaultPlan) -> Injector {
        Injector {
            plan,
            hits: [0; N_SITES],
            injected: Vec::new(),
            obs: pmobs::Obs::default(),
        }
    }

    /// Like [`Injector::new`], but fired faults are also counted into `obs`
    /// as `fault.fired.<site>` / `fault.fired.kind.<slug>`. Clones share the
    /// handle, so counts from forked injectors (e.g. the machine's copy)
    /// aggregate in one registry.
    pub fn with_obs(plan: FaultPlan, obs: pmobs::Obs) -> Injector {
        Injector {
            plan,
            hits: [0; N_SITES],
            injected: Vec::new(),
            obs,
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Count one occurrence of `site`; return the fault kind that fires, if
    /// any. At most one fault per occurrence (first planned match wins).
    pub fn fire(&mut self, site: FaultSite) -> Option<FaultKind> {
        let hit = self.hits[site.index()];
        self.hits[site.index()] += 1;
        let fired = self
            .plan
            .faults
            .iter()
            .find(|f| f.site == site && f.trigger.fires(hit))
            .map(|f| f.kind.clone());
        if let Some(kind) = &fired {
            self.obs.add(&format!("fault.fired.{site}"), 1);
            self.obs
                .add(&format!("fault.fired.kind.{}", kind.slug()), 1);
        }
        fired
    }

    /// Stateless check: does a fault fire for occurrence `index` of `site`?
    /// Used where occurrence order is scheduler-dependent but a stable index
    /// exists (explore candidates).
    pub fn fires_at(&self, site: FaultSite, index: u64) -> Option<FaultKind> {
        let fired = self
            .plan
            .faults
            .iter()
            .find(|f| f.site == site && f.trigger.fires(index))
            .map(|f| f.kind.clone());
        if let Some(kind) = &fired {
            self.obs.add(&format!("fault.fired.{site}"), 1);
            self.obs
                .add(&format!("fault.fired.kind.{}", kind.slug()), 1);
        }
        fired
    }

    /// Occurrences counted so far at `site`.
    pub fn hits(&self, site: FaultSite) -> u64 {
        self.hits[site.index()]
    }

    /// Record that a fault was actually injected (a structured one-line
    /// diagnostic). Consumers log here at the moment of injection so the
    /// campaign can assert every fired fault is observable.
    pub fn record(&mut self, what: impl Into<String>) {
        self.injected.push(what.into());
    }

    /// The injection log: one line per fault actually injected.
    pub fn injected(&self) -> &[String] {
        &self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Trigger;

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let plan = FaultPlan::single(
            FaultSite::SimFlush,
            Trigger::Nth(2),
            FaultKind::DroppedFlush,
        );
        let mut inj = Injector::new(plan);
        assert_eq!(inj.fire(FaultSite::SimFlush), None);
        assert_eq!(inj.fire(FaultSite::SimFlush), None);
        assert_eq!(inj.fire(FaultSite::SimFlush), Some(FaultKind::DroppedFlush));
        assert_eq!(inj.fire(FaultSite::SimFlush), None);
        // Other sites are unaffected.
        assert_eq!(inj.fire(FaultSite::SimStore), None);
    }

    #[test]
    fn clone_forks_counters() {
        let plan = FaultPlan::single(FaultSite::SimStore, Trigger::Nth(1), FaultKind::TornStore);
        let mut a = Injector::new(plan);
        assert_eq!(a.fire(FaultSite::SimStore), None);
        let mut b = a.clone();
        // Both forks see occurrence #1 as their next store.
        assert_eq!(a.fire(FaultSite::SimStore), Some(FaultKind::TornStore));
        assert_eq!(b.fire(FaultSite::SimStore), Some(FaultKind::TornStore));
    }

    #[test]
    fn fires_at_is_stateless() {
        let plan = FaultPlan::single(
            FaultSite::ExploreOracle,
            Trigger::Nth(3),
            FaultKind::OraclePanic,
        );
        let inj = Injector::new(plan);
        assert_eq!(inj.fires_at(FaultSite::ExploreOracle, 2), None);
        assert_eq!(
            inj.fires_at(FaultSite::ExploreOracle, 3),
            Some(FaultKind::OraclePanic)
        );
        assert_eq!(
            inj.fires_at(FaultSite::ExploreOracle, 3),
            Some(FaultKind::OraclePanic),
            "stateless: same answer twice"
        );
    }
}
