//! Deterministic capped exponential backoff for degraded-mode retries.

use crate::splitmix64;

/// Delay (in milliseconds) before retry number `attempt` (0-based).
///
/// Exponential in the attempt (`base_ms << attempt`), capped at `cap_ms`,
/// with seeded jitter of up to 25% *subtracted* so the sequence is fully
/// determined by `(seed, attempt)` — the retry schedule of a degraded run
/// is reproducible from the campaign seed.
pub fn backoff_ms(seed: u64, attempt: u32, base_ms: u64, cap_ms: u64) -> u64 {
    let raw = base_ms
        .saturating_mul(1u64 << attempt.min(16))
        .min(cap_ms.max(base_ms));
    let mut s = seed
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(u64::from(attempt));
    let jitter = if raw >= 4 {
        splitmix64(&mut s) % (raw / 4 + 1)
    } else {
        0
    };
    raw - jitter
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_capped() {
        for attempt in 0..10 {
            let a = backoff_ms(42, attempt, 1, 8);
            assert_eq!(a, backoff_ms(42, attempt, 1, 8));
            assert!(a <= 8, "attempt {attempt}: {a} > cap");
        }
    }

    #[test]
    fn grows_until_cap() {
        // Without jitter interference the uncapped ramp is monotone; check
        // the capped ceiling is reached.
        let last = backoff_ms(0, 9, 1, 8);
        assert!(last >= 6, "near the cap, got {last}");
    }
}
