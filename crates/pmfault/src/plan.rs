//! Fault plans: seeded (site × trigger × kind) triples.

use crate::splitmix64;
use std::fmt;

/// Where in the pipeline a fault is injected.
///
/// Each site corresponds to one instrumented call path in a consumer crate;
/// the consumer calls [`crate::Injector::fire`] (or
/// [`crate::Injector::fires_at`] for index-keyed sites) exactly once per
/// dynamic occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// `pmem-sim`: a PM store (`Machine::store` and the int wrappers).
    SimStore,
    /// `pmem-sim`: a flush (`Machine::flush`), any kind.
    SimFlush,
    /// `pmem-sim`: a load from a PM region (`Machine::load`).
    SimMediaRead,
    /// `pmtrace`: parsing a serialized trace (input corrupted before parse).
    TraceParse,
    /// `pmtrace`: appending/serializing trace records (record duplicated).
    TraceAppend,
    /// `pmvm`: interpreter fuel (tightened `max_steps`).
    VmFuel,
    /// `pmvm`: interpreter divergence (a stuck loop only the wall-clock
    /// watchdog can break).
    VmDiverge,
    /// `pmexplore`: a worker panics mid-enumeration (keyed by candidate
    /// index).
    ExploreWorker,
    /// `pmexplore`: the recovery oracle panics (keyed by candidate index).
    ExploreOracle,
    /// `core::engine`: the commit step of a repair transaction is vetoed —
    /// the round rolls back as if re-verification had failed.
    TxCommit,
    /// `hippod`: the daemon's queue→worker boundary — the worker picked a
    /// job off the queue and is about to run it. The degradation contract:
    /// the job is marked failed with a structured diagnostic; the daemon
    /// and every sibling job are untouched. Deliberately *not* part of the
    /// seeded [`FaultPlan::from_seed`] catalogue, so existing campaign
    /// seeds keep their archetypes; the daemon gate arms it explicitly.
    DaemonWorker,
    /// `hippod`: the transport's response path — the daemon tears the
    /// response frame in half (writes part of it, then severs the
    /// connection). Keyed by the stable connection index, so firing is
    /// deterministic regardless of accept-loop scheduling. The contract:
    /// the *client* sees a transport error, the daemon and its jobs are
    /// untouched, and a fresh connection serves the same artifact.
    NetTornFrame,
    /// `hippod`: the transport's response path degrades to a dribble —
    /// bytes written a few at a time with delays, simulating a slow or
    /// stalled peer. Keyed by connection index. The contract: the slow
    /// connection never blocks a sibling client or a worker.
    NetSlowClient,
    /// `hippod`: the connection is dropped before the response frame is
    /// written. Keyed by connection index. The contract: the client sees a
    /// clean hangup-as-error, the daemon's job state is unaffected
    /// (submission acknowledgement is journaled write-ahead, so a dropped
    /// `Accepted` is at worst a re-submission).
    NetConnDrop,
    /// `hippod`: a campaign worker dies mid-shard — it acquired the lease
    /// and then vanishes without committing or renewing. Keyed by
    /// `shard * 8 + min(attempt, 7)`, so a plan can kill a specific
    /// attempt of a specific shard (attempt 0 kills the first run; later
    /// attempts recover). The contract: the lease expires, the reaper
    /// reclaims and reassigns, and the campaign's merged artifact is
    /// byte-identical to a fault-free single-worker run.
    ShardWorker,
    /// `hippod`: a shard lease's heartbeat renewals are suppressed even
    /// though the worker is alive — the lease-expiry storm. Keyed by the
    /// *attempt* number alone, so `Nth(0)` storms every shard's first
    /// lease at once. The contract: every stormed lease is reclaimed, the
    /// late finishers are fenced off (first-commit-wins), and the second
    /// attempts complete byte-identically.
    ShardRenew,
    /// `hippod`: a rival primary appears mid-campaign — a higher election
    /// epoch lands in the job journal just before this primary's next
    /// append. Keyed by `shard * 8 + min(attempt, 7)` at the commit of the
    /// matching shard. The contract: the deposed primary's append is
    /// refused by epoch fencing, it demotes cleanly, and a standby elects
    /// itself and finishes the campaign byte-identically.
    ShardElection,
    /// `hippod`: the reaper-vs-finisher race, forced — the matching
    /// shard's lease is revoked at the instant its worker tries to commit.
    /// Keyed by `shard * 8 + min(attempt, 7)`. The contract: the fenced
    /// commit is discarded, the shard reruns, and first-commit-wins keeps
    /// the artifact byte-identical.
    ShardCommit,
}

pub(crate) const N_SITES: usize = 18;

impl FaultSite {
    pub(crate) fn index(self) -> usize {
        match self {
            FaultSite::SimStore => 0,
            FaultSite::SimFlush => 1,
            FaultSite::SimMediaRead => 2,
            FaultSite::TraceParse => 3,
            FaultSite::TraceAppend => 4,
            FaultSite::VmFuel => 5,
            FaultSite::VmDiverge => 6,
            FaultSite::ExploreWorker => 7,
            FaultSite::ExploreOracle => 8,
            FaultSite::TxCommit => 9,
            FaultSite::DaemonWorker => 10,
            FaultSite::NetTornFrame => 11,
            FaultSite::NetSlowClient => 12,
            FaultSite::NetConnDrop => 13,
            FaultSite::ShardWorker => 14,
            FaultSite::ShardRenew => 15,
            FaultSite::ShardElection => 16,
            FaultSite::ShardCommit => 17,
        }
    }
}

/// Occurrence-index encoding for the shard sites keyed by
/// `(shard, attempt)`: `shard * 8 + min(attempt, 7)`. A `Trigger::Nth`
/// built from this hits exactly one attempt of exactly one shard.
pub fn shard_occurrence(shard: u64, attempt: u32) -> u64 {
    shard * 8 + u64::from(attempt.min(7))
}

impl FaultSite {
    /// Whether this site lives in the daemon's transport layer (the
    /// `net.*` family, keyed by stable connection index).
    pub fn is_net(self) -> bool {
        matches!(
            self,
            FaultSite::NetTornFrame | FaultSite::NetSlowClient | FaultSite::NetConnDrop
        )
    }

    /// Whether this site lives in the daemon's campaign scheduler (the
    /// `shard.*` family — leases, election, commits).
    pub fn is_shard(self) -> bool {
        matches!(
            self,
            FaultSite::ShardWorker
                | FaultSite::ShardRenew
                | FaultSite::ShardElection
                | FaultSite::ShardCommit
        )
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultSite::SimStore => "sim.store",
            FaultSite::SimFlush => "sim.flush",
            FaultSite::SimMediaRead => "sim.media-read",
            FaultSite::TraceParse => "trace.parse",
            FaultSite::TraceAppend => "trace.append",
            FaultSite::VmFuel => "vm.fuel",
            FaultSite::VmDiverge => "vm.diverge",
            FaultSite::ExploreWorker => "explore.worker",
            FaultSite::ExploreOracle => "explore.oracle",
            FaultSite::TxCommit => "tx.commit",
            FaultSite::DaemonWorker => "daemon.worker",
            FaultSite::NetTornFrame => "net.torn_frame",
            FaultSite::NetSlowClient => "net.slow_client",
            FaultSite::NetConnDrop => "net.conn_drop",
            FaultSite::ShardWorker => "shard.worker",
            FaultSite::ShardRenew => "shard.renew",
            FaultSite::ShardElection => "shard.election",
            FaultSite::ShardCommit => "shard.commit",
        };
        f.write_str(s)
    }
}

/// When a planned fault fires at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fires on the `n`-th dynamic occurrence of the site (0-based), once.
    Nth(u64),
    /// Fires on every occurrence.
    Always,
}

impl Trigger {
    /// Does this trigger fire for occurrence number `hit` (0-based)?
    pub fn fires(self, hit: u64) -> bool {
        match self {
            Trigger::Nth(n) => hit == n,
            Trigger::Always => true,
        }
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::Nth(n) => write!(f, "hit #{n}"),
            Trigger::Always => f.write_str("every hit"),
        }
    }
}

/// What happens when a fault fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Only the low half of a multi-byte PM store lands; the rest keeps its
    /// stale contents (a torn store inside a cache line).
    TornStore,
    /// The flush is silently dropped: the line stays dirty, no error.
    DroppedFlush,
    /// The PM medium returns a read error for the touched line.
    MediaReadError,
    /// The serialized trace is truncated mid-record before parsing.
    TraceTruncate,
    /// A bit (or byte) of the serialized trace is flipped before parsing.
    TraceBitflip,
    /// A trace record is duplicated at append time.
    TraceDuplicate,
    /// The interpreter's fuel is tightened to `max_steps` for this run.
    FuelExhaustion { max_steps: u64 },
    /// The interpreter stops making progress — only a wall-clock watchdog
    /// can end the run.
    StuckLoop,
    /// The exploration worker panics on the triggering candidate.
    WorkerPanic,
    /// The recovery oracle panics on the triggering candidate.
    OraclePanic,
    /// The repair transaction's commit is vetoed: the round rolls back and
    /// the engine retries (exercising the rollback/retry machinery).
    CommitVeto,
    /// The daemon writes only part of the response frame, then severs the
    /// connection — a torn frame on the wire.
    TornFrame,
    /// The daemon's response path degrades to `chunk`-byte writes with
    /// `delay_ms` pauses between them — a slow peer in miniature.
    SlowWrites { chunk: u64, delay_ms: u64 },
    /// The connection is dropped before any response is written.
    ConnDrop,
    /// A campaign worker dies mid-shard: lease acquired, then silence.
    WorkerKill,
    /// Lease heartbeat renewals are suppressed — the lease expires under a
    /// live worker (the lease-expiry storm when triggered on attempt 0).
    LeaseExpire,
    /// A rival primary's higher election epoch appears in the journal; the
    /// current primary's next append must be fenced.
    EpochContest,
    /// The shard's lease is revoked at the instant of its commit — the
    /// reaper-vs-finisher race, forced.
    CommitRace,
}

impl FaultKind {
    /// Stable kebab-case identifier, used as the `fault.fired.kind.<slug>`
    /// metric suffix (parameters are dropped so the name stays stable).
    pub fn slug(&self) -> &'static str {
        match self {
            FaultKind::TornStore => "torn-store",
            FaultKind::DroppedFlush => "dropped-flush",
            FaultKind::MediaReadError => "media-read-error",
            FaultKind::TraceTruncate => "trace-truncate",
            FaultKind::TraceBitflip => "trace-bitflip",
            FaultKind::TraceDuplicate => "trace-duplicate",
            FaultKind::FuelExhaustion { .. } => "fuel-exhaustion",
            FaultKind::StuckLoop => "stuck-loop",
            FaultKind::WorkerPanic => "worker-panic",
            FaultKind::OraclePanic => "oracle-panic",
            FaultKind::CommitVeto => "commit-veto",
            FaultKind::TornFrame => "torn-frame",
            FaultKind::SlowWrites { .. } => "slow-writes",
            FaultKind::ConnDrop => "conn-drop",
            FaultKind::WorkerKill => "worker-kill",
            FaultKind::LeaseExpire => "lease-expire",
            FaultKind::EpochContest => "epoch-contest",
            FaultKind::CommitRace => "commit-race",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::TornStore => f.write_str("torn store"),
            FaultKind::DroppedFlush => f.write_str("dropped flush"),
            FaultKind::MediaReadError => f.write_str("media read error"),
            FaultKind::TraceTruncate => f.write_str("trace truncation"),
            FaultKind::TraceBitflip => f.write_str("trace bit-flip"),
            FaultKind::TraceDuplicate => f.write_str("duplicated trace record"),
            FaultKind::FuelExhaustion { max_steps } => {
                write!(f, "fuel exhaustion (max_steps={max_steps})")
            }
            FaultKind::StuckLoop => f.write_str("diverging interpreter loop"),
            FaultKind::WorkerPanic => f.write_str("worker panic"),
            FaultKind::OraclePanic => f.write_str("oracle panic"),
            FaultKind::CommitVeto => f.write_str("vetoed transaction commit"),
            FaultKind::TornFrame => f.write_str("torn response frame"),
            FaultKind::SlowWrites { chunk, delay_ms } => {
                write!(f, "slow client ({chunk}-byte writes, {delay_ms}ms apart)")
            }
            FaultKind::ConnDrop => f.write_str("dropped connection"),
            FaultKind::WorkerKill => f.write_str("killed shard worker"),
            FaultKind::LeaseExpire => f.write_str("suppressed lease renewals"),
            FaultKind::EpochContest => f.write_str("rival primary epoch"),
            FaultKind::CommitRace => f.write_str("reaper-vs-finisher commit race"),
        }
    }
}

/// One planned fault: fire `kind` at `site` when `trigger` matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedFault {
    pub site: FaultSite,
    pub trigger: Trigger,
    pub kind: FaultKind,
}

impl fmt::Display for PlannedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {} on {}", self.kind, self.site, self.trigger)
    }
}

/// A deterministic, seeded set of planned faults.
///
/// [`FaultPlan::from_seed`] maps a seed onto a catalogue of archetypes (one
/// per fault site/kind family) so a small sweep of seeds — as run by
/// `hippoctl faultcampaign` — covers every substrate. The trigger offsets
/// within an archetype vary with the seed via splitmix64, so different seeds
/// of the same archetype still hit different dynamic occurrences.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    pub seed: u64,
    pub faults: Vec<PlannedFault>,
}

/// Number of distinct archetypes [`FaultPlan::from_seed`] cycles through.
pub const N_ARCHETYPES: u64 = 18;

impl FaultPlan {
    /// A plan with a single fault (mostly for tests).
    pub fn single(site: FaultSite, trigger: Trigger, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            seed: 0,
            faults: vec![PlannedFault {
                site,
                trigger,
                kind,
            }],
        }
    }

    /// The seeded archetype catalogue.
    ///
    /// `seed % N_ARCHETYPES` picks the archetype; the remaining seed bits
    /// pick the trigger offset. Archetypes, in order: torn store, dropped
    /// flush, media read error, trace truncation, trace bit-flip, duplicated
    /// trace record, fuel exhaustion, diverging oracle (stuck loop), worker
    /// panic, oracle panic, vetoed transaction commit, torn response frame,
    /// slow client writes, dropped connection (the `net.*` transport family,
    /// keyed by stable connection index), worker kill mid-shard (two
    /// shards), lease-expiry storm, double-primary epoch contest, and the
    /// reaper-vs-finisher commit race (the `shard.*` campaign family, keyed
    /// by [`shard_occurrence`]).
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut s = seed ^ 0xF4_11_7F_11;
        let r = splitmix64(&mut s);
        let nth = |m: u64| Trigger::Nth(r % m);
        // Archetype 14 kills two distinct shard workers on their first
        // attempt; the campaign's shard count (4) keeps both in range.
        if seed % N_ARCHETYPES == 14 {
            let (a, b) = (r % 2, 2 + r % 2);
            let kill = |shard| PlannedFault {
                site: FaultSite::ShardWorker,
                trigger: Trigger::Nth(shard_occurrence(shard, 0)),
                kind: FaultKind::WorkerKill,
            };
            return FaultPlan {
                seed,
                faults: vec![kill(a), kill(b)],
            };
        }
        let (site, trigger, kind) = match seed % N_ARCHETYPES {
            0 => (FaultSite::SimStore, nth(4), FaultKind::TornStore),
            1 => (FaultSite::SimFlush, nth(3), FaultKind::DroppedFlush),
            2 => (FaultSite::SimMediaRead, nth(4), FaultKind::MediaReadError),
            3 => (
                FaultSite::TraceParse,
                Trigger::Always,
                FaultKind::TraceTruncate,
            ),
            4 => (
                FaultSite::TraceParse,
                Trigger::Always,
                FaultKind::TraceBitflip,
            ),
            5 => (
                FaultSite::TraceAppend,
                Trigger::Always,
                FaultKind::TraceDuplicate,
            ),
            6 => (
                FaultSite::VmFuel,
                Trigger::Always,
                FaultKind::FuelExhaustion {
                    max_steps: 16 + r % 48,
                },
            ),
            7 => (FaultSite::VmDiverge, nth(8), FaultKind::StuckLoop),
            8 => (FaultSite::ExploreWorker, nth(8), FaultKind::WorkerPanic),
            9 => (FaultSite::ExploreOracle, nth(8), FaultKind::OraclePanic),
            // The first commit attempt is vetoed (a fixed Nth(0) trigger):
            // the engine must roll back, retry the round, and still converge.
            10 => (FaultSite::TxCommit, Trigger::Nth(0), FaultKind::CommitVeto),
            // The transport family: keyed by stable connection index. The
            // daemon campaign drives a small fixed number of connections, so
            // the trigger stays inside that range.
            11 => (FaultSite::NetTornFrame, nth(3), FaultKind::TornFrame),
            12 => (
                FaultSite::NetSlowClient,
                nth(3),
                FaultKind::SlowWrites {
                    chunk: 1 + r % 7,
                    delay_ms: 1,
                },
            ),
            13 => (FaultSite::NetConnDrop, nth(3), FaultKind::ConnDrop),
            // The campaign-scheduler family. 15 storms every shard's first
            // lease (keyed by attempt alone); 16 contests the epoch at one
            // shard's commit; 17 forces the reaper-vs-finisher race there.
            15 => (
                FaultSite::ShardRenew,
                Trigger::Nth(0),
                FaultKind::LeaseExpire,
            ),
            16 => (
                FaultSite::ShardElection,
                Trigger::Nth(shard_occurrence(r % 4, 0)),
                FaultKind::EpochContest,
            ),
            _ => (
                FaultSite::ShardCommit,
                Trigger::Nth(shard_occurrence(r % 4, 0)),
                FaultKind::CommitRace,
            ),
        };
        FaultPlan {
            seed,
            faults: vec![PlannedFault {
                site,
                trigger,
                kind,
            }],
        }
    }

    /// Does the plan contain any fault at `site`?
    pub fn targets(&self, site: FaultSite) -> bool {
        self.faults.iter().any(|f| f.site == site)
    }

    /// Does the plan contain any transport-layer (`net.*`) fault?
    pub fn targets_net(&self) -> bool {
        self.faults.iter().any(|f| f.site.is_net())
    }

    /// Does the plan contain any campaign-scheduler (`shard.*`) fault?
    pub fn targets_shard(&self) -> bool {
        self.faults.iter().any(|f| f.site.is_shard())
    }

    /// One-line human summary, e.g. for campaign output.
    pub fn describe(&self) -> String {
        if self.faults.is_empty() {
            return format!("seed {}: no faults", self.seed);
        }
        let parts: Vec<String> = self.faults.iter().map(|f| f.to_string()).collect();
        format!("seed {}: {}", self.seed, parts.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic() {
        for seed in 0..32 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
        }
    }

    #[test]
    fn first_n_seeds_cover_every_archetype() {
        let kinds: Vec<_> = (0..N_ARCHETYPES)
            .map(|s| FaultPlan::from_seed(s).faults[0].kind.clone())
            .collect();
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a, b, "archetypes must be distinct");
            }
        }
    }

    #[test]
    fn describe_names_site_and_kind() {
        let d = FaultPlan::from_seed(7).describe();
        assert!(d.contains("vm.diverge"), "{d}");
        assert!(d.contains("diverging"), "{d}");
    }

    #[test]
    fn net_archetypes_are_seeded_and_classified() {
        let torn = FaultPlan::from_seed(11);
        let slow = FaultPlan::from_seed(12);
        let drop = FaultPlan::from_seed(13);
        assert!(torn.targets(FaultSite::NetTornFrame) && torn.targets_net());
        assert!(slow.targets(FaultSite::NetSlowClient) && slow.targets_net());
        assert!(drop.targets(FaultSite::NetConnDrop) && drop.targets_net());
        assert!(!FaultPlan::from_seed(0).targets_net());
        // The trigger stays inside the daemon campaign's connection range.
        for plan in [torn, slow, drop] {
            match plan.faults[0].trigger {
                Trigger::Nth(n) => assert!(n < 3, "trigger {n} outside the campaign range"),
                Trigger::Always => panic!("net archetypes are keyed by connection index"),
            }
        }
        assert!(FaultPlan::from_seed(12)
            .describe()
            .contains("net.slow_client"));
    }

    #[test]
    fn shard_archetypes_are_seeded_and_classified() {
        let kill = FaultPlan::from_seed(14);
        let storm = FaultPlan::from_seed(15);
        let contest = FaultPlan::from_seed(16);
        let race = FaultPlan::from_seed(17);
        assert_eq!(kill.faults.len(), 2, "archetype 14 kills two workers");
        assert!(kill.targets(FaultSite::ShardWorker) && kill.targets_shard());
        assert!(storm.targets(FaultSite::ShardRenew) && storm.targets_shard());
        assert!(contest.targets(FaultSite::ShardElection) && contest.targets_shard());
        assert!(race.targets(FaultSite::ShardCommit) && race.targets_shard());
        assert!(!kill.targets_net() && !FaultPlan::from_seed(0).targets_shard());
        // The two killed shards are distinct and inside the campaign's
        // 4-shard range, on attempt 0 (so the retries recover).
        let shards: Vec<u64> = kill
            .faults
            .iter()
            .map(|f| match f.trigger {
                Trigger::Nth(n) => {
                    assert_eq!(n % 8, 0, "attempt 0");
                    n / 8
                }
                Trigger::Always => panic!("shard kills are Nth-keyed"),
            })
            .collect();
        assert_ne!(shards[0], shards[1]);
        assert!(shards.iter().all(|&s| s < 4), "{shards:?}");
        // The storm keys by attempt alone: Nth(0) hits every first lease.
        assert_eq!(storm.faults[0].trigger, Trigger::Nth(0));
        assert!(FaultPlan::from_seed(16)
            .describe()
            .contains("shard.election"));
    }

    #[test]
    fn shard_occurrence_encodes_shard_and_attempt() {
        assert_eq!(shard_occurrence(0, 0), 0);
        assert_eq!(shard_occurrence(3, 2), 26);
        // Attempts clamp at 7 so the encoding stays collision-free.
        assert_eq!(shard_occurrence(2, 99), 23);
    }
}
