//! Recovery oracles: how a booted crash state is judged consistent.
//!
//! An oracle names a zero-argument entry point in the module under test —
//! by convention a `recover()` function that walks the durable structures,
//! checks the application's invariants, and returns 0 when the store is
//! consistent — plus the expectation applied to the run. Programs without
//! a dedicated recovery entry fall back to re-running the main entry and
//! demanding it complete without trapping.

use pmem_sim::CrashImage;
use pmir::Module;
use pmvm::{Ended, ExecTier, Vm, VmError, VmOptions};
use serde::{Deserialize, Serialize};

/// What a recovery run must do for the crash state to count as consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expectation {
    /// The entry must return exactly this value (conventionally 0 = clean).
    Returns(i64),
    /// The entry must merely run to completion — no trap, no `abort`.
    Completes,
}

/// An app-registered recovery check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Oracle {
    /// The zero-argument entry function booted on each crash image.
    pub entry: String,
    /// The pass criterion.
    pub expect: Expectation,
}

impl Oracle {
    /// The conventional oracle: `entry` returns 0 on a consistent store.
    pub fn returns_zero(entry: impl Into<String>) -> Self {
        Oracle {
            entry: entry.into(),
            expect: Expectation::Returns(0),
        }
    }

    /// Picks the oracle for `module`: its `recover` function when it has
    /// one (expected to return 0), otherwise re-running `fallback_entry`
    /// and requiring completion.
    pub fn default_for(module: &Module, fallback_entry: &str) -> Self {
        if module.function_by_name("recover").is_some() {
            Oracle::returns_zero("recover")
        } else {
            Oracle {
                entry: fallback_entry.to_string(),
                expect: Expectation::Completes,
            }
        }
    }

    /// Boots `image` and judges the recovery run (default execution tier).
    pub fn check(&self, module: &Module, image: CrashImage, max_steps: u64) -> Verdict {
        self.check_opts(
            module,
            image,
            max_steps,
            None,
            None,
            ExecTier::default(),
            None,
        )
    }

    /// [`Oracle::check`] with a wall-clock watchdog, a fault plan, and/or
    /// an execution tier for the recovery run. A watchdog firing (a
    /// diverging oracle) or an invalid configuration is an
    /// [`Verdict::OracleCrash`] — the oracle failed, which says nothing
    /// about the crash state's consistency.
    ///
    /// `decoded` optionally reuses a pre-decoded `module` across boots
    /// (see [`Vm::run_prepared`]); exploration checks thousands of crash
    /// states against one program, so decoding per boot is pure waste.
    #[allow(clippy::too_many_arguments)]
    pub fn check_opts(
        &self,
        module: &Module,
        image: CrashImage,
        max_steps: u64,
        watchdog_ms: Option<u64>,
        fault: Option<pmfault::FaultPlan>,
        tier: ExecTier,
        decoded: Option<&pmvm::DecodedModule>,
    ) -> Verdict {
        let opts = VmOptions {
            trace: false,
            max_steps,
            watchdog_ms,
            fault,
            tier,
            ..VmOptions::default()
        }
        .with_media(image.into_media());
        match Vm::new(opts).run_prepared(module, &self.entry, decoded) {
            Err(VmError::Watchdog { limit_ms }) => Verdict::OracleCrash {
                what: format!("recovery watchdog fired after {limit_ms}ms (diverging oracle)"),
            },
            Err(VmError::BadOptions { reason }) => Verdict::OracleCrash {
                what: format!("recovery run misconfigured: {reason}"),
            },
            Err(e) => Verdict::Inconsistent(Failure {
                what: failure_text(&e),
                return_value: None,
            }),
            Ok(res) => {
                if let Ended::Aborted(code) = res.ended {
                    return Verdict::Inconsistent(Failure {
                        what: format!("recovery aborted with code {code}"),
                        return_value: res.return_value,
                    });
                }
                match self.expect {
                    Expectation::Completes => Verdict::Consistent,
                    Expectation::Returns(want) => {
                        if res.return_value == Some(want) {
                            Verdict::Consistent
                        } else {
                            Verdict::Inconsistent(Failure {
                                what: format!(
                                    "recovery returned {:?}, expected {want}",
                                    res.return_value
                                ),
                                return_value: res.return_value,
                            })
                        }
                    }
                }
            }
        }
    }
}

/// A stable rendering of a recovery trap. `VmError` itself is not
/// `Serialize`; findings carry text.
fn failure_text(e: &VmError) -> String {
    format!("recovery trapped: {e}")
}

/// The oracle's judgement of one crash state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Recovery accepted the state.
    Consistent,
    /// Recovery rejected (or crashed on) the state.
    Inconsistent(Failure),
    /// The *oracle itself* failed — it panicked, diverged until the
    /// watchdog fired, or was misconfigured. Unlike
    /// [`Verdict::Inconsistent`], this is not evidence about the crash
    /// state: it is reported as a diagnostic and never blamed on a store.
    OracleCrash {
        /// What happened to the oracle.
        what: String,
    },
}

impl Verdict {
    /// Whether this is [`Verdict::Inconsistent`].
    pub fn is_inconsistent(&self) -> bool {
        matches!(self, Verdict::Inconsistent(_))
    }
}

/// Why a crash state failed recovery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Failure {
    /// Human-readable cause (trap text, wrong return value, abort code).
    pub what: String,
    /// The recovery entry's return value, when it produced one.
    pub return_value: Option<i64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem_sim::{FenceKind, FlushKind, Machine};

    fn image_with_flag(v: i64) -> CrashImage {
        let mut m = Machine::default();
        let p = m.map_pool(7, 4096).unwrap();
        m.store_int(p, 8, v).unwrap();
        m.flush(FlushKind::Clwb, p).unwrap();
        m.fence(FenceKind::Sfence);
        m.crash_image()
    }

    const SRC: &str = r#"
        fn recover() -> int {
            var p: ptr = pmem_map(7, 4096);
            if (load8(p, 0) == 1) { return 1; }
            return 0;
        }
    "#;

    #[test]
    fn returns_zero_oracle_judges() {
        let m = pmlang::compile_one("t.pmc", SRC).unwrap();
        let o = Oracle::returns_zero("recover");
        assert_eq!(
            o.check(&m, image_with_flag(0), 1_000_000),
            Verdict::Consistent
        );
        let v = o.check(&m, image_with_flag(1), 1_000_000);
        assert!(v.is_inconsistent());
    }

    #[test]
    fn default_prefers_recover_entry() {
        let m = pmlang::compile_one("t.pmc", SRC).unwrap();
        let o = Oracle::default_for(&m, "main");
        assert_eq!(o.entry, "recover");
        assert_eq!(o.expect, Expectation::Returns(0));
        let m2 = pmlang::compile_one("t.pmc", "fn main() { }").unwrap();
        let o2 = Oracle::default_for(&m2, "main");
        assert_eq!(o2.entry, "main");
        assert_eq!(o2.expect, Expectation::Completes);
    }

    #[test]
    fn missing_entry_is_a_failure_not_a_panic() {
        let m = pmlang::compile_one("t.pmc", "fn main() { }").unwrap();
        let o = Oracle::returns_zero("no_such");
        assert!(o.check(&m, image_with_flag(0), 1000).is_inconsistent());
    }

    #[test]
    fn diverging_oracle_is_a_crash_not_an_inconsistency() {
        use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
        let m = pmlang::compile_one("t.pmc", SRC).unwrap();
        let o = Oracle::returns_zero("recover");
        let v = o.check_opts(
            &m,
            image_with_flag(0),
            1_000_000,
            Some(20),
            Some(FaultPlan::single(
                FaultSite::VmDiverge,
                Trigger::Nth(0),
                FaultKind::StuckLoop,
            )),
            ExecTier::default(),
            None,
        );
        match v {
            Verdict::OracleCrash { what } => assert!(what.contains("watchdog"), "{what}"),
            other => panic!("expected OracleCrash, got {other:?}"),
        }
    }
}
