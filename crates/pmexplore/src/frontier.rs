//! Crash frontiers: the candidate crash positions of one execution.
//!
//! Under the x86 persistency model a crash can strike between any two
//! instructions; the durable state it leaves is the medium plus *any
//! subset* of the dirty cache lines (each line independently may or may not
//! have been written back by cache pressure — paper Lemma 2). The durable
//! base only changes at PM events, so it suffices to place one frontier
//! after every PM event and enumerate dirty-line subsets there.

use crate::replay::Replayer;
use pmem_sim::PmMedia;
use pmtrace::{DataLog, EventKind, Trace};

/// One candidate crash position: right after the trace event `after_seq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frontier {
    /// Sequence number of the event this frontier follows.
    pub after_seq: u64,
    /// Dirty (not-yet-durable) lines here — the subset universe.
    pub dirty: Vec<u64>,
    /// The subset of `dirty` that is pending (flushed but unfenced): lines
    /// whose loss is a *missing-fence* symptom rather than missing-flush.
    pub pending: Vec<u64>,
}

impl Frontier {
    /// Whether any durable/cached divergence exists here at all.
    pub fn has_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }
}

/// Derives the frontier list: one entry after every PM store, flush, fence,
/// crash point, and the program end. Pool registrations change no durable
/// state and get no frontier.
pub fn frontiers(trace: &Trace, data: &DataLog, initial: Option<&PmMedia>) -> Vec<Frontier> {
    let mut out = Vec::with_capacity(trace.events.len());
    let mut r = Replayer::new(trace, data, initial);
    // Consecutive frontiers usually share line sets (a store leaves the
    // pending set alone; a flush leaves the dirty set alone). The replayer's
    // generation counters say when a set last changed, so unchanged sets are
    // cloned from the previous frontier instead of re-scanned and re-sorted.
    let (mut dirty_gen, mut pending_gen) = (u64::MAX, u64::MAX);
    let (mut last_dirty, mut last_pending): (Vec<u64>, Vec<u64>) = (vec![], vec![]);
    for e in &trace.events {
        r.advance_to(e.seq);
        match e.kind {
            EventKind::Store { .. }
            | EventKind::Flush { .. }
            | EventKind::Fence { .. }
            | EventKind::CrashPoint
            | EventKind::ProgramEnd => {
                if r.dirty_generation() != dirty_gen {
                    dirty_gen = r.dirty_generation();
                    last_dirty = r.dirty_lines();
                }
                if r.pending_generation() != pending_gen {
                    pending_gen = r.pending_generation();
                    last_pending = r.pending_lines();
                }
                out.push(Frontier {
                    after_seq: e.seq,
                    dirty: last_dirty.clone(),
                    pending: last_pending.clone(),
                });
            }
            EventKind::RegisterPool { .. } => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmvm::{Vm, VmOptions};

    #[test]
    fn frontier_per_pm_event_with_correct_sets() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                sfence();
            }
        "#;
        let m = pmlang::compile_one("t.pmc", src).unwrap();
        let res = Vm::new(VmOptions::default().capture_pm_data())
            .run(&m, "main")
            .unwrap();
        let trace = res.trace.as_ref().unwrap();
        let data = res.pm_data.as_ref().unwrap();
        let f = frontiers(trace, data, None);
        // store, flush, fence, program end — the RegisterPool gets none.
        assert_eq!(f.len(), 4);
        assert_eq!(f[0].dirty.len(), 1, "dirty after the store");
        assert!(f[0].pending.is_empty());
        assert_eq!(f[1].dirty.len(), 1, "clwb leaves the line dirty");
        assert_eq!(f[1].pending.len(), 1, "but schedules the write-back");
        assert!(!f[2].has_dirty(), "the fence drains everything");
        assert!(!f[3].has_dirty());
    }
}
