//! `pmexplore` — parallel crash-state exploration that stress-verifies
//! repairs.
//!
//! The dynamic checker (`pmcheck`) audits durability at the checkpoints a
//! program declares: explicit `crashpoint`s and the program end. That
//! catches *durability* bugs — a store not persisted by the time it must
//! be — but under the x86 persistency model a crash can strike anywhere,
//! and the durable state it leaves is the medium plus **any subset** of
//! the dirty cache lines. Orderings the checkpoints never sample (the
//! classic "flag persists before its data" reordering between unfenced
//! flushed lines) therefore escape checkpoint-based detection entirely.
//!
//! This crate closes that gap:
//!
//! 1. [`frontier`] derives a crash *frontier* after every PM event of a
//!    traced execution, with the dirty and pending line sets there.
//! 2. [`mod@sample`] enumerates persisted-line subsets per frontier —
//!    exhaustively for small dirty sets, prioritized sampling for large
//!    ones — under a global state budget, deterministic in the seed.
//! 3. [`replay`] materializes each candidate as a
//!    [`pmem_sim::CrashImage`] by forward-replaying the trace plus the
//!    captured [`pmtrace::DataLog`] — no interpreter re-runs.
//! 4. [`oracle`] boots the app's `recover()` entry (or re-runs the main
//!    entry) on each image via `pmvm` and judges consistency.
//! 5. [`mod@explore`] drives it all over a work-stealing thread pool
//!    ([`steal`]), dedups states by content hash, blames every
//!    inconsistency back onto the stores whose lost lines caused it, and
//!    exports a `pmcheck`-shaped report
//!    ([`pmcheck::Provenance::Exploration`]) that the repair engine's
//!    `repair_until_clean` consumes like any other bug report.
//!
//! Results are deterministic in `(trace, seed, budget)` — `--jobs 4`
//! finds exactly what `--jobs 1` finds.

pub mod explore;
pub mod frontier;
pub mod oracle;
pub mod replay;
pub mod sample;
pub mod steal;

pub use explore::{
    explore, run_and_explore, Exploration, ExploreOptions, ExploreReport, ExploreStats, Finding,
    LostStore,
};
pub use frontier::{frontiers, Frontier};
pub use oracle::{Expectation, Failure, Oracle, Verdict};
pub use replay::Replayer;
pub use sample::{sample, Candidate, Priority};
pub use steal::StealQueue;
