//! A minimal work-stealing queue over contiguous index chunks.
//!
//! Each worker owns a deque seeded with a contiguous slice of the candidate
//! index space and drains it front-to-back (preserving replay locality: a
//! worker's candidates arrive in ascending trace order, so its forward-only
//! replayer seldom restarts). A worker that runs dry steals from the *back*
//! of the busiest victim — the classic Cilk discipline, here with plain
//! mutexes since chunk transfer is rare and coarse.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Mutex;

/// The shared queue state.
#[derive(Debug)]
pub struct StealQueue {
    deques: Vec<Mutex<VecDeque<Range<usize>>>>,
}

impl StealQueue {
    /// Splits `0..total` into `chunk`-sized ranges dealt contiguously to
    /// `workers` deques.
    pub fn new(workers: usize, total: usize, chunk: usize) -> Self {
        let workers = workers.max(1);
        let chunk = chunk.max(1);
        let mut deques: Vec<VecDeque<Range<usize>>> =
            (0..workers).map(|_| VecDeque::new()).collect();
        let chunks: Vec<Range<usize>> = (0..total)
            .step_by(chunk)
            .map(|lo| lo..(lo + chunk).min(total))
            .collect();
        let per = chunks.len().div_ceil(workers);
        for (i, c) in chunks.into_iter().enumerate() {
            deques[(i / per.max(1)).min(workers - 1)].push_back(c);
        }
        StealQueue {
            deques: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Next chunk for `worker`: its own front, else stolen from the back of
    /// the victim with the most remaining chunks. `None` when all deques
    /// are empty (workers then exit; chunks are never re-queued).
    pub fn pop(&self, worker: usize) -> Option<Range<usize>> {
        if let Some(c) = self.deques[worker].lock().expect("queue lock").pop_front() {
            return Some(c);
        }
        loop {
            let victim = self
                .deques
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != worker)
                .max_by_key(|(_, d)| d.lock().expect("queue lock").len())?;
            if victim.1.lock().expect("queue lock").is_empty() {
                return None;
            }
            if let Some(c) = victim.1.lock().expect("queue lock").pop_back() {
                return Some(c);
            }
            // Lost the race to another thief; look again.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_worker_drains_in_order() {
        let q = StealQueue::new(1, 10, 4);
        assert_eq!(q.pop(0), Some(0..4));
        assert_eq!(q.pop(0), Some(4..8));
        assert_eq!(q.pop(0), Some(8..10));
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn every_index_claimed_exactly_once() {
        let q = StealQueue::new(4, 103, 8);
        let mut seen = [false; 103];
        // Worker 3 drains everything (its own deque first, then steals).
        while let Some(r) = q.pop(3) {
            for i in r {
                assert!(!seen[i], "index {i} claimed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all indices claimed");
    }

    #[test]
    fn parallel_claims_are_disjoint_and_complete() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q = StealQueue::new(4, 1000, 7);
        let claimed: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        let (q, claimed) = (&q, &claimed);
        std::thread::scope(|s| {
            for w in 0..4 {
                s.spawn(move || {
                    while let Some(r) = q.pop(w) {
                        for i in r {
                            claimed[i].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(claimed.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }
}
