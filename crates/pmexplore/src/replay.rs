//! The PM-event replayer: rebuilds durable-vs-cached state at any trace
//! position without re-running the interpreter.
//!
//! A [`Replayer`] walks the PM events of one execution forward, maintaining
//! for every pool both the *durable* bytes (what the medium holds) and the
//! *cache* bytes (what the CPU sees), plus the dirty and pending line sets —
//! the same state machine as [`pmem_sim::Machine`], but driven from the
//! trace and the captured [`pmtrace::DataLog`] instead of from executing
//! instructions. Materializing a crash candidate `(position, persisted
//! lines)` is then a copy of the durable bytes with the chosen dirty lines
//! overlaid from the cache.

use pmem_sim::{layout::line_of, CrashImage, LineSet, PmMedia, CACHE_LINE};
use pmtrace::{DataLog, Event, EventKind, Trace};
use std::collections::BTreeMap;

/// `splitmix64` finalizer: a cheap full-avalanche bijection.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The hash term of one pool's identity (hint, base, byte length).
#[inline]
fn header_term(hint: u64, base: u64, len: u64) -> u64 {
    mix64(mix64(hint ^ 0xa076_1d64_78bd_642f) ^ mix64(base).wrapping_add(mix64(len)))
}

/// The hash term of one cache line's content at `(hint, off)`.
///
/// Terms are XOR-combined into a commutative image hash, so each term must
/// entangle position and content non-linearly: the content words are folded
/// *multiplicatively* into a position-seeded state (FNV-style chaining).
/// A plain `seed ^ content_hash` split would make swapping two lines'
/// contents a guaranteed hash collision.
#[inline]
fn line_term(hint: u64, off: u64, bytes: &[u8]) -> u64 {
    let mut h =
        0x243f_6a88_85a3_08d3u64 ^ mix64(hint) ^ mix64(off.wrapping_add(0x9e37_79b9_7f4a_7c15));
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = (h ^ w).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut w = [0u8; 8];
        w[..rest.len()].copy_from_slice(rest);
        h = (h ^ u64::from_le_bytes(w)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix64(h)
}

/// One pool's replayed state.
#[derive(Debug, Clone)]
struct PoolState {
    base: u64,
    durable: Vec<u8>,
    cache: Vec<u8>,
}

/// Forward-only PM state reconstruction over a trace.
#[derive(Debug, Clone)]
pub struct Replayer<'t> {
    events: &'t [Event],
    data: &'t DataLog,
    /// Index of the next event to apply.
    pos: usize,
    pools: BTreeMap<u64, PoolState>,
    /// Pool bases for address→pool lookup (base → hint).
    bases: BTreeMap<u64, u64>,
    dirty: LineSet,
    pending: LineSet,
    /// Rolling commutative hash of the *durable* image: the XOR of one
    /// [`header_term`] per pool and one [`line_term`] per durable cache
    /// line. Maintained incrementally at pool registration and line
    /// write-back, so [`Replayer::hash_with`] prices a crash candidate in
    /// O(|persisted|) line terms instead of re-hashing every pool byte.
    acc: u64,
}

impl<'t> Replayer<'t> {
    /// A replayer positioned before the first event. `initial` seeds pool
    /// contents for traces of runs booted from an existing medium.
    pub fn new(trace: &'t Trace, data: &'t DataLog, initial: Option<&PmMedia>) -> Self {
        let mut r = Replayer {
            events: &trace.events,
            data,
            pos: 0,
            pools: BTreeMap::new(),
            bases: BTreeMap::new(),
            dirty: LineSet::new(),
            pending: LineSet::new(),
            acc: 0,
        };
        if let Some(media) = initial {
            for (hint, p) in media.iter() {
                r.insert_pool(hint, p.base, p.bytes.clone());
            }
        }
        r
    }

    fn insert_pool(&mut self, hint: u64, base: u64, durable: Vec<u8>) {
        self.acc ^= header_term(hint, base, durable.len() as u64);
        for (i, line) in durable.chunks(CACHE_LINE as usize).enumerate() {
            self.acc ^= line_term(hint, (i * CACHE_LINE as usize) as u64, line);
        }
        let cache = durable.clone();
        self.bases.insert(base, hint);
        self.pools.insert(
            hint,
            PoolState {
                base,
                durable,
                cache,
            },
        );
    }

    /// The `(hint, byte offset)` of the line starting at `line`, if mapped.
    fn locate(&self, line: u64) -> Option<(u64, usize)> {
        let (&base, &hint) = self.bases.range(..=line).next_back()?;
        let p = &self.pools[&hint];
        if line < base + p.cache.len() as u64 {
            Some((hint, (line - base) as usize))
        } else {
            None
        }
    }

    /// Copies a line's cache bytes to the durable bytes and clears its
    /// dirty bit — exactly [`pmem_sim::Machine`]'s `write_back_line`
    /// (which, like the hardware, does *not* touch the pending set).
    fn write_back_line(&mut self, line: u64) {
        if let Some((hint, off)) = self.locate(line) {
            let p = self.pools.get_mut(&hint).expect("located");
            let end = (off + CACHE_LINE as usize).min(p.cache.len());
            let (durable, cache) = (&mut p.durable, &p.cache);
            self.acc ^= line_term(hint, off as u64, &durable[off..end]);
            durable[off..end].copy_from_slice(&cache[off..end]);
            self.acc ^= line_term(hint, off as u64, &durable[off..end]);
        }
        self.dirty.remove(line);
    }

    fn apply(&mut self, i: usize) {
        let (events, data) = (self.events, self.data);
        let e = &events[i];
        match &e.kind {
            EventKind::RegisterPool { hint, base, size } => {
                if !self.pools.contains_key(hint) {
                    // Pool sizes are line-aligned by the machine; mirror it.
                    let size = (*size).max(1).div_ceil(CACHE_LINE) * CACHE_LINE;
                    self.insert_pool(*hint, *base, vec![0; size as usize]);
                }
            }
            EventKind::Store { addr, len } => {
                if let Some(rec) = data.for_seq(e.seq) {
                    self.write_cache(rec.addr, &rec.bytes);
                } else {
                    // No captured bytes (data log disabled or partial):
                    // still track dirtiness so frontiers stay correct.
                    self.mark_dirty(*addr, *len);
                }
            }
            EventKind::Flush { kind, addr } => {
                let line = line_of(*addr);
                if !self.dirty.contains(line) {
                    return;
                }
                if kind.is_weakly_ordered() {
                    self.pending.insert(line);
                } else {
                    self.write_back_line(line);
                }
            }
            EventKind::Fence { .. } => {
                for line in self.pending.take_sorted() {
                    self.write_back_line(line);
                }
            }
            EventKind::CrashPoint | EventKind::ProgramEnd => {}
        }
    }

    fn mark_dirty(&mut self, addr: u64, len: u64) {
        self.dirty.insert_range(addr, len.max(1));
    }

    fn write_cache(&mut self, addr: u64, bytes: &[u8]) {
        if let Some((hint, off)) = self.locate(line_of(addr)) {
            let line_delta = (addr - line_of(addr)) as usize;
            let p = self.pools.get_mut(&hint).expect("located");
            let off = off + line_delta;
            let end = (off + bytes.len()).min(p.cache.len());
            p.cache[off..end].copy_from_slice(&bytes[..end - off]);
        }
        self.mark_dirty(addr, bytes.len() as u64);
    }

    /// Applies events up to and including sequence number `after_seq`.
    /// Sequence numbers only move forward; earlier positions need a fresh
    /// replayer.
    pub fn advance_to(&mut self, after_seq: u64) {
        while self.pos < self.events.len() && self.events[self.pos].seq <= after_seq {
            self.apply(self.pos);
            self.pos += 1;
        }
    }

    /// Dirty (not-yet-durable) PM lines at the current position, ascending.
    pub fn dirty_lines(&self) -> Vec<u64> {
        self.dirty.sorted()
    }

    /// Pending (flushed-but-unfenced) PM lines at the current position.
    pub fn pending_lines(&self) -> Vec<u64> {
        self.pending.sorted()
    }

    /// Generation counter of the dirty set — advances exactly when
    /// [`Replayer::dirty_lines`] would change. See [`LineSet::generation`].
    pub fn dirty_generation(&self) -> u64 {
        self.dirty.generation()
    }

    /// Generation counter of the pending set.
    pub fn pending_generation(&self) -> u64 {
        self.pending.generation()
    }

    /// Whether `line` is pending at the current position.
    pub fn is_pending(&self, line: u64) -> bool {
        self.pending.contains(line)
    }

    /// The content hash of the crash image [`Replayer::image_with`] would
    /// build for `persisted` — computed in O(|persisted|) line terms from
    /// the rolling durable hash, **without materializing the image**. Equal
    /// images always hash equal, so this is a sound memoization/dedup key;
    /// exploration only pays for the byte copy on a memo miss. `persisted`
    /// must be ascending (candidate line lists are); duplicates are
    /// ignored, as are non-dirty and unmapped entries, mirroring
    /// [`Replayer::image_with`].
    pub fn hash_with(&self, persisted: &[u64]) -> u64 {
        let mut h = self.acc;
        let mut prev = None;
        for &line in persisted {
            if prev == Some(line) || !self.dirty.contains(line) {
                continue;
            }
            prev = Some(line);
            if let Some((hint, off)) = self.locate(line) {
                let p = &self.pools[&hint];
                let end = (off + CACHE_LINE as usize).min(p.cache.len());
                // Persisting the line replaces its durable bytes with the
                // cache bytes: swap the line's term in the XOR accumulator.
                h ^= line_term(hint, off as u64, &p.durable[off..end]);
                h ^= line_term(hint, off as u64, &p.cache[off..end]);
            }
        }
        h
    }

    /// Materializes the crash image for "the machine died here and exactly
    /// the dirty lines in `persisted` raced to the medium first". Non-dirty
    /// entries are ignored.
    pub fn image_with(&self, persisted: &[u64]) -> CrashImage {
        let mut parts: BTreeMap<u64, (u64, Vec<u8>)> = self
            .pools
            .iter()
            .map(|(&hint, p)| (hint, (p.base, p.durable.clone())))
            .collect();
        for &line in persisted {
            if !self.dirty.contains(line) {
                continue;
            }
            if let Some((hint, off)) = self.locate(line) {
                let p = &self.pools[&hint];
                let end = (off + CACHE_LINE as usize).min(p.cache.len());
                parts.get_mut(&hint).expect("located").1[off..end]
                    .copy_from_slice(&p.cache[off..end]);
            }
        }
        CrashImage::from_parts(parts.into_iter().map(|(h, (b, bytes))| (h, b, bytes)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmvm::{Vm, VmOptions};

    fn run(src: &str) -> (pmir::Module, pmvm::RunResult) {
        let m = pmlang::compile_one("t.pmc", src).unwrap();
        let res = Vm::new(VmOptions::default().capture_pm_data())
            .run(&m, "main")
            .unwrap();
        (m, res)
    }

    #[test]
    fn replay_matches_vm_ground_truth_at_every_event() {
        // Cross-validate the replayer against the interpreter: for every
        // event position, the replayed adversarial image and the replayed
        // all-dirty image must equal what a real VM run stopped at that
        // event reports.
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(5, 4096);
                store8(p, 0, 17);
                clwb(p);
                store8(p, 64, 29);
                sfence();
                store8(p, 128, 43);
                clflush(p + 128);
                store8(p, 192, 51);
            }
        "#;
        let (m, res) = run(src);
        let trace = res.trace.as_ref().unwrap();
        let data = res.pm_data.as_ref().unwrap();
        for e in &trace.events {
            if matches!(e.kind, EventKind::ProgramEnd) {
                continue;
            }
            let vm = Vm::new(VmOptions::default().stop_at_event(e.seq))
                .run(&m, "main")
                .unwrap();
            assert_eq!(vm.ended, pmvm::Ended::AtEvent(e.seq));
            let mut r = Replayer::new(trace, data, None);
            r.advance_to(e.seq);
            assert_eq!(
                r.dirty_lines(),
                vm.machine.dirty_pm_lines(),
                "dirty sets diverge after event {}",
                e.seq
            );
            assert_eq!(
                r.pending_lines(),
                vm.machine.pending_pm_lines(),
                "pending sets diverge after event {}",
                e.seq
            );
            assert_eq!(
                r.image_with(&[]),
                vm.machine.crash_image(),
                "adversarial image diverges after event {}",
                e.seq
            );
            let all = r.dirty_lines();
            assert_eq!(
                r.image_with(&all),
                vm.machine.crash_image_with_lines(&all),
                "full-persist image diverges after event {}",
                e.seq
            );
        }
    }

    #[test]
    fn hash_with_agrees_with_materialized_images() {
        // The rolling hash must be a pure function of image content: at
        // every position and for every tried subset, equal materialized
        // images hash equal — and (for this data) distinct images hash
        // distinct, so dedup neither merges real states nor splits one.
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(5, 4096);
                var q: ptr = pmem_map(9, 4096);
                store8(p, 0, 17);
                clwb(p);
                store8(q, 64, 29);
                sfence();
                store8(p, 128, 43);
                clflush(p + 128);
                store8(q, 192, 51);
            }
        "#;
        let (_, res) = run(src);
        let trace = res.trace.as_ref().unwrap();
        let data = res.pm_data.as_ref().unwrap();
        let mut seen: Vec<(CrashImage, u64)> = vec![];
        let mut r = Replayer::new(trace, data, None);
        for e in &trace.events {
            r.advance_to(e.seq);
            let dirty = r.dirty_lines();
            let mut subsets: Vec<Vec<u64>> = vec![vec![], dirty.clone()];
            subsets.extend(dirty.iter().map(|&l| vec![l]));
            for sub in subsets {
                let img = r.image_with(&sub);
                let h = r.hash_with(&sub);
                for (other, oh) in &seen {
                    assert_eq!(
                        *other == img,
                        *oh == h,
                        "hash/image disagreement after event {} with {sub:?}",
                        e.seq
                    );
                }
                seen.push((img, h));
            }
        }
        assert!(seen.len() > 20, "the sweep must actually cover states");
    }

    #[test]
    fn swapped_line_contents_hash_differently() {
        // Commutative XOR accumulation must not cancel when two lines trade
        // contents — the classic weakness of position⊕content term splits.
        let img_for = |a: i64, b: i64| {
            let src = format!(
                "fn main() {{
                    var p: ptr = pmem_map(3, 4096);
                    store8(p, 0, {a});
                    store8(p, 64, {b});
                }}"
            );
            let (_, res) = run(&src);
            let trace = res.trace.as_ref().unwrap();
            let data = res.pm_data.as_ref().unwrap();
            let mut r = Replayer::new(trace, data, None);
            r.advance_to(u64::MAX);
            let all = r.dirty_lines();
            (r.image_with(&all), r.hash_with(&all))
        };
        let (i1, h1) = img_for(7, 11);
        let (i2, h2) = img_for(11, 7);
        assert_ne!(i1, i2);
        assert_ne!(h1, h2, "swapped line contents must not collide");
    }

    #[test]
    fn partial_subsets_overlay_only_chosen_lines() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                store8(p, 64, 2);
            }
        "#;
        let (_, res) = run(src);
        let trace = res.trace.as_ref().unwrap();
        let data = res.pm_data.as_ref().unwrap();
        let mut r = Replayer::new(trace, data, None);
        let last_store = trace
            .events
            .iter()
            .rev()
            .find(|e| matches!(e.kind, EventKind::Store { .. }))
            .unwrap()
            .seq;
        r.advance_to(last_store);
        let dirty = r.dirty_lines();
        assert_eq!(dirty.len(), 2);
        let only_second = r.image_with(&[dirty[1]]);
        assert_eq!(only_second.read_int(dirty[0], 8), Some(0));
        assert_eq!(only_second.read_int(dirty[1], 8), Some(2));
    }
}
