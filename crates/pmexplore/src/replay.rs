//! The PM-event replayer: rebuilds durable-vs-cached state at any trace
//! position without re-running the interpreter.
//!
//! A [`Replayer`] walks the PM events of one execution forward, maintaining
//! for every pool both the *durable* bytes (what the medium holds) and the
//! *cache* bytes (what the CPU sees), plus the dirty and pending line sets —
//! the same state machine as [`pmem_sim::Machine`], but driven from the
//! trace and the captured [`pmtrace::DataLog`] instead of from executing
//! instructions. Materializing a crash candidate `(position, persisted
//! lines)` is then a copy of the durable bytes with the chosen dirty lines
//! overlaid from the cache.

use pmem_sim::{layout::line_of, CrashImage, PmMedia, CACHE_LINE};
use pmtrace::{DataLog, Event, EventKind, Trace};
use std::collections::{BTreeMap, BTreeSet};

/// One pool's replayed state.
#[derive(Debug, Clone)]
struct PoolState {
    base: u64,
    durable: Vec<u8>,
    cache: Vec<u8>,
}

/// Forward-only PM state reconstruction over a trace.
#[derive(Debug, Clone)]
pub struct Replayer<'t> {
    events: &'t [Event],
    data: &'t DataLog,
    /// Index of the next event to apply.
    pos: usize,
    pools: BTreeMap<u64, PoolState>,
    /// Pool bases for address→pool lookup (base → hint).
    bases: BTreeMap<u64, u64>,
    dirty: BTreeSet<u64>,
    pending: BTreeSet<u64>,
}

impl<'t> Replayer<'t> {
    /// A replayer positioned before the first event. `initial` seeds pool
    /// contents for traces of runs booted from an existing medium.
    pub fn new(trace: &'t Trace, data: &'t DataLog, initial: Option<&PmMedia>) -> Self {
        let mut r = Replayer {
            events: &trace.events,
            data,
            pos: 0,
            pools: BTreeMap::new(),
            bases: BTreeMap::new(),
            dirty: BTreeSet::new(),
            pending: BTreeSet::new(),
        };
        if let Some(media) = initial {
            for (hint, p) in media.iter() {
                r.insert_pool(hint, p.base, p.bytes.clone());
            }
        }
        r
    }

    fn insert_pool(&mut self, hint: u64, base: u64, durable: Vec<u8>) {
        let cache = durable.clone();
        self.bases.insert(base, hint);
        self.pools.insert(
            hint,
            PoolState {
                base,
                durable,
                cache,
            },
        );
    }

    /// The `(hint, byte offset)` of the line starting at `line`, if mapped.
    fn locate(&self, line: u64) -> Option<(u64, usize)> {
        let (&base, &hint) = self.bases.range(..=line).next_back()?;
        let p = &self.pools[&hint];
        if line < base + p.cache.len() as u64 {
            Some((hint, (line - base) as usize))
        } else {
            None
        }
    }

    /// Copies a line's cache bytes to the durable bytes and clears its
    /// dirty bit — exactly [`pmem_sim::Machine`]'s `write_back_line`
    /// (which, like the hardware, does *not* touch the pending set).
    fn write_back_line(&mut self, line: u64) {
        if let Some((hint, off)) = self.locate(line) {
            let p = self.pools.get_mut(&hint).expect("located");
            let end = (off + CACHE_LINE as usize).min(p.cache.len());
            let (durable, cache) = (&mut p.durable, &p.cache);
            durable[off..end].copy_from_slice(&cache[off..end]);
        }
        self.dirty.remove(&line);
    }

    fn apply(&mut self, i: usize) {
        let (events, data) = (self.events, self.data);
        let e = &events[i];
        match &e.kind {
            EventKind::RegisterPool { hint, base, size } => {
                if !self.pools.contains_key(hint) {
                    // Pool sizes are line-aligned by the machine; mirror it.
                    let size = (*size).max(1).div_ceil(CACHE_LINE) * CACHE_LINE;
                    self.insert_pool(*hint, *base, vec![0; size as usize]);
                }
            }
            EventKind::Store { addr, len } => {
                if let Some(rec) = data.for_seq(e.seq) {
                    self.write_cache(rec.addr, &rec.bytes);
                } else {
                    // No captured bytes (data log disabled or partial):
                    // still track dirtiness so frontiers stay correct.
                    self.mark_dirty(*addr, *len);
                }
            }
            EventKind::Flush { kind, addr } => {
                let line = line_of(*addr);
                if !self.dirty.contains(&line) {
                    return;
                }
                if kind.is_weakly_ordered() {
                    self.pending.insert(line);
                } else {
                    self.write_back_line(line);
                }
            }
            EventKind::Fence { .. } => {
                for line in std::mem::take(&mut self.pending) {
                    self.write_back_line(line);
                }
            }
            EventKind::CrashPoint | EventKind::ProgramEnd => {}
        }
    }

    fn mark_dirty(&mut self, addr: u64, len: u64) {
        let mut line = line_of(addr);
        while line < addr + len.max(1) {
            self.dirty.insert(line);
            line += CACHE_LINE;
        }
    }

    fn write_cache(&mut self, addr: u64, bytes: &[u8]) {
        if let Some((hint, off)) = self.locate(line_of(addr)) {
            let line_delta = (addr - line_of(addr)) as usize;
            let p = self.pools.get_mut(&hint).expect("located");
            let off = off + line_delta;
            let end = (off + bytes.len()).min(p.cache.len());
            p.cache[off..end].copy_from_slice(&bytes[..end - off]);
        }
        self.mark_dirty(addr, bytes.len() as u64);
    }

    /// Applies events up to and including sequence number `after_seq`.
    /// Sequence numbers only move forward; earlier positions need a fresh
    /// replayer.
    pub fn advance_to(&mut self, after_seq: u64) {
        while self.pos < self.events.len() && self.events[self.pos].seq <= after_seq {
            self.apply(self.pos);
            self.pos += 1;
        }
    }

    /// Dirty (not-yet-durable) PM lines at the current position, ascending.
    pub fn dirty_lines(&self) -> Vec<u64> {
        self.dirty.iter().copied().collect()
    }

    /// Pending (flushed-but-unfenced) PM lines at the current position.
    pub fn pending_lines(&self) -> Vec<u64> {
        self.pending.iter().copied().collect()
    }

    /// Whether `line` is pending at the current position.
    pub fn is_pending(&self, line: u64) -> bool {
        self.pending.contains(&line)
    }

    /// Materializes the crash image for "the machine died here and exactly
    /// the dirty lines in `persisted` raced to the medium first". Non-dirty
    /// entries are ignored.
    pub fn image_with(&self, persisted: &[u64]) -> CrashImage {
        let mut parts: BTreeMap<u64, (u64, Vec<u8>)> = self
            .pools
            .iter()
            .map(|(&hint, p)| (hint, (p.base, p.durable.clone())))
            .collect();
        for &line in persisted {
            if !self.dirty.contains(&line) {
                continue;
            }
            if let Some((hint, off)) = self.locate(line) {
                let p = &self.pools[&hint];
                let end = (off + CACHE_LINE as usize).min(p.cache.len());
                parts.get_mut(&hint).expect("located").1[off..end]
                    .copy_from_slice(&p.cache[off..end]);
            }
        }
        CrashImage::from_parts(parts.into_iter().map(|(h, (b, bytes))| (h, b, bytes)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmvm::{Vm, VmOptions};

    fn run(src: &str) -> (pmir::Module, pmvm::RunResult) {
        let m = pmlang::compile_one("t.pmc", src).unwrap();
        let res = Vm::new(VmOptions::default().capture_pm_data())
            .run(&m, "main")
            .unwrap();
        (m, res)
    }

    #[test]
    fn replay_matches_vm_ground_truth_at_every_event() {
        // Cross-validate the replayer against the interpreter: for every
        // event position, the replayed adversarial image and the replayed
        // all-dirty image must equal what a real VM run stopped at that
        // event reports.
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(5, 4096);
                store8(p, 0, 17);
                clwb(p);
                store8(p, 64, 29);
                sfence();
                store8(p, 128, 43);
                clflush(p + 128);
                store8(p, 192, 51);
            }
        "#;
        let (m, res) = run(src);
        let trace = res.trace.as_ref().unwrap();
        let data = res.pm_data.as_ref().unwrap();
        for e in &trace.events {
            if matches!(e.kind, EventKind::ProgramEnd) {
                continue;
            }
            let vm = Vm::new(VmOptions::default().stop_at_event(e.seq))
                .run(&m, "main")
                .unwrap();
            assert_eq!(vm.ended, pmvm::Ended::AtEvent(e.seq));
            let mut r = Replayer::new(trace, data, None);
            r.advance_to(e.seq);
            assert_eq!(
                r.dirty_lines(),
                vm.machine.dirty_pm_lines(),
                "dirty sets diverge after event {}",
                e.seq
            );
            assert_eq!(
                r.pending_lines(),
                vm.machine.pending_pm_lines(),
                "pending sets diverge after event {}",
                e.seq
            );
            assert_eq!(
                r.image_with(&[]),
                vm.machine.crash_image(),
                "adversarial image diverges after event {}",
                e.seq
            );
            let all = r.dirty_lines();
            assert_eq!(
                r.image_with(&all),
                vm.machine.crash_image_with_lines(&all),
                "full-persist image diverges after event {}",
                e.seq
            );
        }
    }

    #[test]
    fn partial_subsets_overlay_only_chosen_lines() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                store8(p, 64, 2);
            }
        "#;
        let (_, res) = run(src);
        let trace = res.trace.as_ref().unwrap();
        let data = res.pm_data.as_ref().unwrap();
        let mut r = Replayer::new(trace, data, None);
        let last_store = trace
            .events
            .iter()
            .rev()
            .find(|e| matches!(e.kind, EventKind::Store { .. }))
            .unwrap()
            .seq;
        r.advance_to(last_store);
        let dirty = r.dirty_lines();
        assert_eq!(dirty.len(), 2);
        let only_second = r.image_with(&[dirty[1]]);
        assert_eq!(only_second.read_int(dirty[0], 8), Some(0));
        assert_eq!(only_second.read_int(dirty[1], 8), Some(2));
    }
}
