//! The budgeted, prioritized crash-candidate sampler.
//!
//! Small dirty sets are enumerated exhaustively (all `2^n` subsets); large
//! ones are sampled: the empty set (the adversarial crash pmemcheck
//! assumes), the full set, every singleton and co-singleton, plus
//! seeded-random extras. Candidates are then ranked so the states most
//! likely to expose *ordering* bugs — partial persists at frontiers with
//! two or more dirty lines — survive budget truncation first, and the
//! classic adversarial states come next. Everything is deterministic in
//! `(trace, seed, budget)`; thread count never changes the candidate list.

use crate::frontier::Frontier;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

/// Exhaustively enumerate subsets when the dirty set has at most this many
/// lines (`2^6 = 64` states per frontier at worst).
const EXHAUSTIVE_LINES: usize = 6;

/// Random extra subsets sampled per large frontier.
const RANDOM_EXTRAS: usize = 8;

/// How a candidate was generated — doubles as its priority (lower = keep
/// first under budget truncation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// A strict partial persist (neither none nor all of the dirty lines):
    /// only these can expose reordering between unfenced lines.
    Partial = 0,
    /// Nothing persisted — the adversarial crash.
    Adversarial = 1,
    /// Everything persisted — the most optimistic crash.
    Full = 2,
    /// A random extra subset from the seeded generator.
    Random = 3,
}

/// One crash state to evaluate: crash after `after_seq` with exactly
/// `lines` of the frontier's dirty set persisted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Index into the frontier list this candidate crashes at.
    pub frontier: usize,
    /// Sequence number of the event the crash follows (denormalized from
    /// the frontier for convenience).
    pub after_seq: u64,
    /// The persisted dirty lines, ascending.
    pub lines: Vec<u64>,
    /// Generation class / truncation priority.
    pub priority: Priority,
}

/// Generates the candidate list for `frontiers`, prioritized and truncated
/// to `budget` states. Deterministic in its arguments.
pub fn sample(frontiers: &[Frontier], budget: usize, seed: u64) -> Vec<Candidate> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut all: Vec<Candidate> = Vec::new();
    for (fi, f) in frontiers.iter().enumerate() {
        let n = f.dirty.len();
        let mk = |lines: Vec<u64>, priority: Priority| Candidate {
            frontier: fi,
            after_seq: f.after_seq,
            lines,
            priority,
        };
        all.push(mk(vec![], Priority::Adversarial));
        if n == 0 {
            continue;
        }
        all.push(mk(f.dirty.clone(), Priority::Full));
        if n <= EXHAUSTIVE_LINES {
            // ∅, the full set, and the proper-subset masks below are
            // pairwise distinct by construction — no dedup bookkeeping.
            for mask in 1..(1u64 << n) - 1 {
                let lines: Vec<u64> = f
                    .dirty
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &l)| l)
                    .collect();
                all.push(mk(lines, Priority::Partial));
            }
        } else {
            // Only random extras can collide (with ∅/full/singletons/
            // co-singletons or each other), so the dedup set is seeded
            // with everything pushed so far and consulted from here on.
            let mut seen: BTreeSet<Vec<u64>> = BTreeSet::new();
            seen.insert(vec![]);
            seen.insert(f.dirty.clone());
            for i in 0..n {
                all.push(mk(vec![f.dirty[i]], Priority::Partial));
                seen.insert(vec![f.dirty[i]]);
                let mut co: Vec<u64> = f.dirty.clone();
                co.remove(i);
                seen.insert(co.clone());
                all.push(mk(co, Priority::Partial));
            }
            for _ in 0..RANDOM_EXTRAS {
                let lines: Vec<u64> = f
                    .dirty
                    .iter()
                    .copied()
                    .filter(|_| rng.random::<u64>() & 1 == 1)
                    .collect();
                if seen.insert(lines.clone()) {
                    let priority = if lines.is_empty() {
                        Priority::Adversarial
                    } else if lines.len() == n {
                        Priority::Full
                    } else {
                        Priority::Partial
                    };
                    all.push(mk(lines, priority));
                }
            }
        }
    }
    // Stable sort: priority class first, then original (frontier, subset)
    // generation order — so truncation keeps the best classes and stays
    // deterministic.
    let mut indexed: Vec<(usize, Candidate)> = all.into_iter().enumerate().collect();
    indexed.sort_by(|(ia, a), (ib, b)| a.priority.cmp(&b.priority).then(ia.cmp(ib)));
    indexed.truncate(budget);
    let mut out: Vec<Candidate> = indexed.into_iter().map(|(_, c)| c).collect();
    // Workers replay forward; hand them the kept candidates in trace order.
    out.sort_by(|a, b| a.after_seq.cmp(&b.after_seq).then(a.lines.cmp(&b.lines)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frontier(after_seq: u64, dirty: Vec<u64>) -> Frontier {
        Frontier {
            after_seq,
            pending: vec![],
            dirty,
        }
    }

    #[test]
    fn small_sets_enumerated_exhaustively() {
        let f = [frontier(0, vec![0, 64])];
        let c = sample(&f, usize::MAX, 1);
        // ∅, {0}, {64}, {0,64}
        assert_eq!(c.len(), 4);
        assert!(c.iter().any(|c| c.lines == vec![0]));
        assert!(c.iter().any(|c| c.lines == vec![64]));
    }

    #[test]
    fn budget_keeps_partial_persists_first() {
        let f = [
            frontier(0, vec![]),
            frontier(1, vec![0, 64, 128]),
            frontier(2, vec![0]),
        ];
        let c = sample(&f, 6, 1);
        assert_eq!(c.len(), 6);
        let partials = c.iter().filter(|c| c.priority == Priority::Partial).count();
        assert_eq!(partials, 6, "partial persists outrank ∅/full under budget");
    }

    #[test]
    fn deterministic_in_seed() {
        let f = [frontier(0, (0..10).map(|i| i * 64).collect())];
        let a = sample(&f, 40, 7);
        let b = sample(&f, 40, 7);
        assert_eq!(a, b);
        let c = sample(&f, 40, 8);
        assert_ne!(a, c, "different seed, different random extras");
    }

    #[test]
    fn large_sets_get_singletons_and_cosingletons() {
        let dirty: Vec<u64> = (0..10).map(|i| i * 64).collect();
        let f = [frontier(3, dirty.clone())];
        let c = sample(&f, usize::MAX, 1);
        for &l in &dirty {
            assert!(c.iter().any(|c| c.lines == vec![l]));
            assert!(c
                .iter()
                .any(|c| c.lines.len() == 9 && !c.lines.contains(&l)));
        }
    }
}
