//! The parallel exploration driver.
//!
//! Pipeline: derive frontiers → sample candidates under the budget →
//! fan candidate chunks out over a work-stealing queue → each worker
//! replays to the candidate's position, dedups by the replayer's rolling
//! content hash (no image bytes are copied for states seen before), and
//! boots the recovery oracle on memo misses → inconsistencies are blamed
//! back onto the stores whose lost lines broke recovery and exported as a
//! `pmcheck`-shaped report.
//!
//! Results are deterministic in `(trace, seed, budget)`: the candidate
//! list is generated up front, a verdict is a pure function of the image
//! (so memoization races between workers are benign), and findings are
//! re-sorted into candidate order before deduplication.

use crate::frontier::{frontiers, Frontier};
use crate::oracle::{Failure, Oracle, Verdict};
use crate::replay::Replayer;
use crate::sample::{sample, Candidate};
use crate::steal::StealQueue;
use pmcheck::{Bug, BugKind, CheckReport, Checkpoint, Provenance};
use pmem_sim::PmMedia;
use pmir::Module;
use pmtrace::{DataLog, EventKind, Trace};
use pmvm::{Vm, VmError, VmOptions};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Mutex;

/// Candidate indices handed to a worker per queue transaction.
const CHUNK: usize = 8;

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Maximum crash states evaluated (after prioritized truncation).
    pub budget: usize,
    /// Seed for the candidate sampler's random extras.
    pub seed: u64,
    /// Worker threads. Results are identical for any value.
    pub jobs: usize,
    /// The recovery oracle; `None` derives one from the module (its
    /// `recover()` function when present, else re-running the entry).
    pub oracle: Option<Oracle>,
    /// Step budget per recovery boot.
    pub max_recovery_steps: u64,
    /// Medium the traced run was booted from, for traces of recovery runs.
    pub initial_media: Option<PmMedia>,
    /// Fault plan armed on the exploration machinery: worker panics and
    /// oracle panics are keyed by candidate index (deterministic under work
    /// stealing); a planned divergence makes the matching candidate's
    /// recovery run stick until the watchdog fires.
    pub fault: Option<pmfault::FaultPlan>,
    /// Wall-clock budget per recovery boot. Defaults to 250ms whenever the
    /// fault plan contains a stuck loop, so a diverging oracle can never
    /// hang a worker.
    pub recovery_watchdog_ms: Option<u64>,
    /// Observability handle: when attached, the explorer records
    /// `explore.*` spans (run, frontiers, sample, per-worker) and counters
    /// (candidates, distinct states, dedup hits, per-worker utilization).
    pub obs: pmobs::Obs,
    /// Cooperative cancellation ([`pmtx::Budget`]): workers stop taking new
    /// candidate chunks once the budget is exhausted, and the report notes
    /// the partial coverage. The unlimited default never cancels. (Named
    /// `cancel` because `budget` is the crash-state cap above.)
    pub cancel: pmtx::Budget,
    /// Execution tier for the traced run and every recovery boot.
    /// [`pmvm::ExecTier::Fast`] by default; results are tier-independent
    /// (the differential tier gate holds the tiers byte-identical).
    pub tier: pmvm::ExecTier,
    /// Restrict exploration to one shard of the frontier set:
    /// `Some((i, n))` keeps only frontiers whose index `% n == i`. The
    /// shard split is by deterministic frontier index — *before* sampling
    /// — so the union of the `n` shard reports covers exactly the same
    /// frontier set as an unsharded run, and each shard's report is
    /// byte-stable regardless of which worker (or how many retries) ran
    /// it. `None` (the default) explores everything.
    pub shard: Option<(u64, u64)>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            budget: 256,
            seed: 0,
            jobs: 1,
            oracle: None,
            max_recovery_steps: 50_000_000,
            initial_media: None,
            fault: None,
            recovery_watchdog_ms: None,
            obs: pmobs::Obs::default(),
            cancel: pmtx::Budget::default(),
            tier: pmvm::ExecTier::default(),
            shard: None,
        }
    }
}

/// A store whose lost line(s) broke recovery in one crash state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LostStore {
    /// Trace sequence number of the blamed store event.
    pub store_seq: u64,
    /// Durability-bug classification of the loss.
    pub kind: BugKind,
    /// The store's cache lines that were dirty and not persisted.
    pub lost_lines: Vec<u64>,
    /// The subset of `lost_lines` that was never even flushed.
    pub unflushed_lines: Vec<u64>,
}

/// One inconsistent crash state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// The crash position (trace event the crash follows).
    pub after_seq: u64,
    /// Dirty lines that were persisted in this state.
    pub persisted: Vec<u64>,
    /// Dirty lines that were lost in this state.
    pub lost: Vec<u64>,
    /// Content hash of the crash image (dedup key).
    pub image_hash: u64,
    /// What the oracle observed.
    pub failure: Failure,
    /// Stores blamed for the loss; empty when even the fully-persisted
    /// prefix fails (an atomicity violation no flush/fence can repair).
    pub blamed: Vec<LostStore>,
}

/// Exploration counters. All fields are deterministic in
/// `(trace, seed, budget)` — thread count never changes them.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreStats {
    /// Crash positions derived from the trace.
    pub frontiers: usize,
    /// Candidate states evaluated (post-truncation).
    pub candidates: usize,
    /// Distinct crash images among them (recovery boots needed).
    pub distinct_states: usize,
    /// Inconsistent states found (after image-level dedup).
    pub inconsistent: usize,
    /// Candidates whose oracle crashed (panic, divergence) instead of
    /// judging the state.
    pub oracle_crashes: usize,
    /// Candidates skipped because their worker panicked mid-enumeration;
    /// the pool drains the remaining frontier and reports the rest.
    pub worker_panics: usize,
}

/// The exploration outcome.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreReport {
    /// Inconsistent crash states, one per distinct failing image, in
    /// candidate order.
    pub findings: Vec<Finding>,
    /// Counters.
    pub stats: ExploreStats,
    /// The oracle that judged the states.
    pub oracle: Option<Oracle>,
    /// Structured one-line diagnostics for every faulted candidate (oracle
    /// crashes, worker panics), in candidate order. Empty on a healthy run.
    pub diagnostics: Vec<String>,
}

impl ExploreReport {
    /// Whether every explored state recovered cleanly.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Converts the findings into a `pmcheck`-shaped report
    /// ([`Provenance::Exploration`]) the repair engine consumes directly:
    /// one [`Bug`] per blamed store and kind, anchored at the crash
    /// state's trace position. Findings with no blamable store (atomicity
    /// failures) are not representable as durability bugs and are skipped.
    pub fn to_check_report(&self, trace: &Trace) -> CheckReport {
        let mut bugs: Vec<Bug> = vec![];
        let mut seen: std::collections::HashSet<(u64, BugKind)> = std::collections::HashSet::new();
        for f in &self.findings {
            for ls in &f.blamed {
                if !seen.insert((ls.store_seq, ls.kind)) {
                    continue;
                }
                let Some(e) = trace.events.iter().find(|e| e.seq == ls.store_seq) else {
                    continue;
                };
                let EventKind::Store { addr, len } = e.kind else {
                    continue;
                };
                bugs.push(Bug {
                    kind: ls.kind,
                    addr,
                    len,
                    store_at: e.at.clone(),
                    store_loc: e.loc.clone(),
                    stack: e.stack.clone(),
                    store_seq: ls.store_seq,
                    checkpoint: Checkpoint::Event(f.after_seq),
                    unflushed_lines: ls.unflushed_lines.clone(),
                });
            }
        }
        CheckReport {
            bugs,
            redundant_flushes: vec![],
            stores_checked: trace.count(|k| matches!(k, EventKind::Store { .. })) as u64,
            flushes_seen: trace.count(|k| matches!(k, EventKind::Flush { .. })) as u64,
            fences_seen: trace.count(|k| matches!(k, EventKind::Fence { .. })) as u64,
            provenance: Provenance::Exploration,
        }
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let s = &self.stats;
        let _ = writeln!(
            out,
            "pmexplore: {} frontier(s), {} candidate state(s), {} distinct image(s)",
            s.frontiers, s.candidates, s.distinct_states
        );
        if self.is_clean() {
            let _ = writeln!(out, "every explored crash state recovered cleanly");
        } else {
            let _ = writeln!(out, "{} inconsistent crash state(s):", self.findings.len());
            for f in &self.findings {
                let _ = writeln!(
                    out,
                    "  after event #{}: {} ({} line(s) persisted, {} lost)",
                    f.after_seq,
                    f.failure.what,
                    f.persisted.len(),
                    f.lost.len()
                );
                for ls in &f.blamed {
                    let _ = writeln!(
                        out,
                        "      {} blamed on store at event #{}",
                        ls.kind, ls.store_seq
                    );
                }
            }
        }
        if !self.diagnostics.is_empty() {
            let _ = writeln!(
                out,
                "{} faulted candidate(s) ({} oracle crash(es), {} worker panic(s)):",
                self.diagnostics.len(),
                self.stats.oracle_crashes,
                self.stats.worker_panics
            );
            for d in &self.diagnostics {
                let _ = writeln!(out, "  {d}");
            }
        }
        out
    }
}

/// Explores the crash states of one traced execution of `module`.
/// `entry` is only used to derive the fallback oracle; the trace and data
/// log drive everything else.
pub fn explore(
    module: &Module,
    entry: &str,
    trace: &Trace,
    data: &DataLog,
    opts: &ExploreOptions,
) -> ExploreReport {
    use pmfault::{FaultKind, FaultPlan, FaultSite, Injector, Trigger};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let run_span = opts.obs.span("explore.run");
    let oracle = opts
        .oracle
        .clone()
        .unwrap_or_else(|| Oracle::default_for(module, entry));
    let fronts = {
        let _span = opts.obs.span("explore.frontiers");
        let all = frontiers(trace, data, opts.initial_media.as_ref());
        match opts.shard {
            Some((i, n)) if n > 1 => all
                .into_iter()
                .enumerate()
                .filter(|(idx, _)| (*idx as u64) % n == i % n)
                .map(|(_, f)| f)
                .collect(),
            _ => all,
        }
    };
    let candidates = {
        let _span = opts.obs.span("explore.sample");
        sample(&fronts, opts.budget, opts.seed)
    };
    let jobs = opts.jobs.max(1).min(candidates.len().max(1));
    let queue = StealQueue::new(jobs, candidates.len(), CHUNK);
    let memo: Mutex<HashMap<u64, Verdict>> = Mutex::new(HashMap::new());
    let found: Mutex<Vec<(usize, Finding)>> = Mutex::new(vec![]);
    // Candidates actually evaluated, for the partial-coverage diagnostic
    // when the caller's cancellation budget trips mid-run.
    let evaluated = std::sync::atomic::AtomicUsize::new(0);
    // Faulted candidates: (idx, one-line diagnostic, was_worker_panic).
    let faulted: Mutex<Vec<(usize, String, bool)>> = Mutex::new(vec![]);
    // Explore-level faults are keyed by the *candidate index* via the
    // stateless `fires_at`, so results are deterministic no matter how work
    // stealing interleaves candidates across threads.
    let injector = opts
        .fault
        .clone()
        .map(|p| Injector::with_obs(p, opts.obs.clone()));

    // One decode of the program under test, shared by every worker's
    // recovery boots (the fast tier would otherwise re-decode per boot).
    let decoded = (opts.tier == pmvm::ExecTier::Fast).then(|| pmvm::DecodedModule::decode(module));
    std::thread::scope(|s| {
        for w in 0..jobs {
            let (queue, memo, found, faulted, candidates, fronts, oracle, injector, evaluated) = (
                &queue,
                &memo,
                &found,
                &faulted,
                &candidates,
                &fronts,
                &oracle,
                &injector,
                &evaluated,
            );
            let decoded = decoded.as_ref();
            let obs = opts.obs.clone();
            s.spawn(move || {
                let _worker_span = obs.span("explore.worker");
                let mut processed = 0u64;
                let mut replayer: Option<Replayer<'_>> = None;
                let mut at_seq = 0u64;
                while let Some(range) = queue.pop(w) {
                    // Cooperative cancellation: stop taking chunks once the
                    // caller's budget is exhausted. Already-popped candidates
                    // in this chunk are abandoned too — partial coverage is
                    // reported below, never silently.
                    if opts.cancel.is_exhausted() {
                        break;
                    }
                    for idx in range {
                        processed += 1;
                        evaluated.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        // Worker-panic isolation: a panic anywhere in one
                        // candidate's processing (injected or real) skips
                        // that candidate only. The loop — and the steal
                        // queue — keep draining, so a panicked worker never
                        // leaks the remaining frontier.
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            let c = &candidates[idx];
                            if let Some(inj) = injector.as_ref() {
                                if let Some(FaultKind::WorkerPanic) =
                                    inj.fires_at(FaultSite::ExploreWorker, idx as u64)
                                {
                                    panic!("pmfault: injected worker panic at candidate {idx}");
                                }
                            }
                            // The replayer is forward-only; a stolen chunk
                            // that jumps backwards restarts it.
                            if replayer.is_none() || at_seq > c.after_seq {
                                replayer =
                                    Some(Replayer::new(trace, data, opts.initial_media.as_ref()));
                            }
                            let r = replayer.as_mut().expect("created above");
                            r.advance_to(c.after_seq);
                            at_seq = c.after_seq;
                            // Hash the candidate from the rolling replayer
                            // hash — O(persisted lines). The full image (a
                            // copy of every pool's bytes) is materialized
                            // only when the memo misses and a recovery boot
                            // actually needs it.
                            let h = r.hash_with(&c.lines);

                            let oracle_panic = injector.as_ref().is_some_and(|i| {
                                matches!(
                                    i.fires_at(FaultSite::ExploreOracle, idx as u64),
                                    Some(FaultKind::OraclePanic)
                                )
                            });
                            let diverge = injector.as_ref().is_some_and(|i| {
                                matches!(
                                    i.fires_at(FaultSite::VmDiverge, idx as u64),
                                    Some(FaultKind::StuckLoop)
                                )
                            });
                            let injected = oracle_panic || diverge;
                            // Faulted candidates bypass the memo in both
                            // directions: the fault must manifest, and its
                            // verdict must not leak to other candidates
                            // that happen to share the image.
                            let known = if injected {
                                None
                            } else {
                                memo.lock().expect("memo lock").get(&h).cloned()
                            };
                            let verdict = match known {
                                Some(v) => v,
                                None => {
                                    let img = r.image_with(&c.lines);
                                    let watchdog = if diverge {
                                        Some(opts.recovery_watchdog_ms.unwrap_or(250))
                                    } else {
                                        opts.recovery_watchdog_ms
                                    };
                                    let fault = diverge.then(|| {
                                        FaultPlan::single(
                                            FaultSite::VmDiverge,
                                            Trigger::Always,
                                            FaultKind::StuckLoop,
                                        )
                                    });
                                    // Oracle-panic isolation: the pool
                                    // classifies the panic as an
                                    // OracleCrash verdict and keeps going.
                                    let v = catch_unwind(AssertUnwindSafe(|| {
                                        if oracle_panic {
                                            panic!(
                                                "pmfault: injected oracle panic at candidate {idx}"
                                            );
                                        }
                                        oracle.check_opts(
                                            module,
                                            img,
                                            opts.max_recovery_steps,
                                            watchdog,
                                            fault,
                                            opts.tier,
                                            decoded,
                                        )
                                    }))
                                    .unwrap_or_else(|p| Verdict::OracleCrash {
                                        what: format!(
                                            "recovery oracle panicked: {}",
                                            panic_text(p.as_ref())
                                        ),
                                    });
                                    // Only stable verdicts of un-faulted
                                    // candidates are image-memoizable.
                                    if !injected && !matches!(v, Verdict::OracleCrash { .. }) {
                                        memo.lock().expect("memo lock").insert(h, v.clone());
                                    }
                                    v
                                }
                            };
                            match verdict {
                                Verdict::Inconsistent(failure) => {
                                    let f = finding(trace, &fronts[c.frontier], c, h, failure);
                                    found.lock().expect("found lock").push((idx, f));
                                }
                                Verdict::OracleCrash { what } => {
                                    faulted.lock().expect("faulted lock").push((
                                        idx,
                                        format!(
                                            "candidate {idx} (after event {}): {what}",
                                            c.after_seq
                                        ),
                                        false,
                                    ));
                                }
                                Verdict::Consistent => {}
                            }
                        }));
                        if caught.is_err() {
                            // The replayer may have been mid-advance;
                            // discard it so the next candidate replays from
                            // a clean slate.
                            replayer = None;
                            faulted.lock().expect("faulted lock").push((
                                idx,
                                format!(
                                    "candidate {idx}: worker panicked mid-enumeration; \
                                     candidate skipped, queue drained"
                                ),
                                true,
                            ));
                        }
                    }
                }
                // Per-worker utilization: how evenly the steal queue spread
                // the candidates across the pool.
                obs.observe("explore.worker.candidates", processed as f64);
            });
        }
    });

    let mut raw = found.into_inner().expect("found lock");
    raw.sort_by_key(|(idx, _)| *idx);
    let mut findings = vec![];
    let mut failing_images = BTreeSet::new();
    for (_, f) in raw {
        if failing_images.insert(f.image_hash) {
            findings.push(f);
        }
    }
    let mut fault_log = faulted.into_inner().expect("faulted lock");
    fault_log.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    let worker_panics = fault_log.iter().filter(|(_, _, wp)| *wp).count();
    let stats = ExploreStats {
        frontiers: fronts.len(),
        candidates: candidates.len(),
        distinct_states: memo.into_inner().expect("memo lock").len(),
        inconsistent: findings.len(),
        oracle_crashes: fault_log.len() - worker_panics,
        worker_panics,
    };
    if opts.obs.is_enabled() {
        let obs = &opts.obs;
        obs.add("explore.frontiers", stats.frontiers as u64);
        obs.add("explore.candidates", stats.candidates as u64);
        obs.add("explore.distinct_states", stats.distinct_states as u64);
        obs.add("explore.crash_images", stats.candidates as u64);
        obs.add(
            "explore.dedup_hits",
            stats.candidates.saturating_sub(stats.distinct_states) as u64,
        );
        obs.add("explore.inconsistent", stats.inconsistent as u64);
        obs.add("explore.oracle_crashes", stats.oracle_crashes as u64);
        obs.add("explore.worker_panics", stats.worker_panics as u64);
    }
    drop(run_span);
    let mut diagnostics: Vec<String> = fault_log.into_iter().map(|(_, d, _)| d).collect();
    let done = evaluated.load(std::sync::atomic::Ordering::Relaxed);
    if opts.cancel.is_exhausted() && done < stats.candidates {
        diagnostics.push(format!(
            "exploration cancelled by budget: {done} of {} candidate(s) evaluated; \
             findings cover the evaluated prefix only",
            stats.candidates
        ));
        opts.obs.add(
            "explore.cancelled_candidates",
            (stats.candidates - done) as u64,
        );
    }
    ExploreReport {
        findings,
        stats,
        oracle: Some(oracle),
        diagnostics,
    }
}

/// Best-effort rendering of a caught panic payload.
fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Builds the finding for an inconsistent candidate: what was lost and
/// which stores to blame, classified the same way the dynamic checker
/// classifies (pending line → missing fence; otherwise missing flush when
/// a later fence exists, else missing flush&fence).
fn finding(
    trace: &Trace,
    frontier: &Frontier,
    c: &Candidate,
    image_hash: u64,
    failure: Failure,
) -> Finding {
    let persisted: BTreeSet<u64> = c.lines.iter().copied().collect();
    let pending: BTreeSet<u64> = frontier.pending.iter().copied().collect();
    let lost: Vec<u64> = frontier
        .dirty
        .iter()
        .copied()
        .filter(|l| !persisted.contains(l))
        .collect();

    // line → last store event at or before the crash that wrote it.
    let mut by_store: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for &line in &lost {
        let mut blamed: Option<u64> = None;
        for e in &trace.events {
            if e.seq > c.after_seq {
                break;
            }
            if let EventKind::Store { addr, len } = e.kind {
                let lo = addr & !63;
                if line >= lo && line < addr + len.max(1) {
                    blamed = Some(e.seq);
                }
            }
        }
        if let Some(seq) = blamed {
            by_store.entry(seq).or_default().push(line);
        }
    }

    let blamed = by_store
        .into_iter()
        .map(|(store_seq, lines)| {
            let unflushed: Vec<u64> = lines
                .iter()
                .copied()
                .filter(|l| !pending.contains(l))
                .collect();
            let kind = if unflushed.is_empty() {
                BugKind::MissingFence
            } else {
                let fence_after = trace.events.iter().any(|e| {
                    e.seq > store_seq
                        && e.seq <= c.after_seq
                        && matches!(e.kind, EventKind::Fence { .. })
                });
                if fence_after {
                    BugKind::MissingFlush
                } else {
                    BugKind::MissingFlushFence
                }
            };
            LostStore {
                store_seq,
                kind,
                lost_lines: lines,
                unflushed_lines: unflushed,
            }
        })
        .collect();

    Finding {
        after_seq: c.after_seq,
        persisted: c.lines.clone(),
        lost,
        image_hash,
        failure,
        blamed,
    }
}

/// The result of [`run_and_explore`]: the traced run plus the exploration
/// of its crash states.
#[derive(Debug)]
pub struct Exploration {
    /// The exploration outcome.
    pub report: ExploreReport,
    /// The traced execution the exploration covered.
    pub trace: Trace,
    /// The PM write-data log of that execution.
    pub data: DataLog,
}

/// Runs `entry` once with tracing and PM data capture, then explores the
/// crash states of that execution.
///
/// # Errors
///
/// Propagates a [`VmError`] if the traced run itself traps.
pub fn run_and_explore(
    module: &Module,
    entry: &str,
    opts: &ExploreOptions,
) -> Result<Exploration, VmError> {
    let vm_opts = VmOptions {
        capture_pm_data: true,
        media: opts.initial_media.clone(),
        obs: opts.obs.clone(),
        tier: opts.tier,
        ..VmOptions::default()
    };
    let res = {
        let _span = opts.obs.span("explore.traced_run");
        Vm::new(vm_opts).run(module, entry)?
    };
    let trace = res.trace.expect("tracing was on");
    let data = res.pm_data.expect("capture was on");
    let report = explore(module, entry, &trace, &data, opts);
    Ok(Exploration {
        trace,
        data,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical escape from checkpoint-based checking: `data` is
    /// flushed but not fenced before the `flag` store, so a crash can
    /// persist the flag (plain cache eviction) while the data write-back
    /// is still in flight. Every line is durable by the `crashpoint`, so
    /// the dynamic checker — and crash-point sampling — see nothing.
    const ORDERING_BUG: &str = r#"
        fn main() {
            var p: ptr = pmem_map(11, 4096);
            store8(p, 64, 4242);
            clwb(p + 64);
            store8(p, 0, 1);
            clwb(p);
            sfence();
            crashpoint();
        }
        fn recover() -> int {
            var p: ptr = pmem_map(11, 4096);
            if (load8(p, 0) == 1) {
                if (load8(p, 64) != 4242) { return 1; }
            }
            return 0;
        }
    "#;

    #[test]
    fn finds_reordering_the_dynamic_checker_misses() {
        let m = pmlang::compile_one("t.pmc", ORDERING_BUG).unwrap();
        let x = run_and_explore(&m, "main", &ExploreOptions::default()).unwrap();
        // The checkpoint-based dynamic checker is blind to this bug.
        assert!(
            pmcheck::check_trace(&x.trace).is_clean(),
            "program must be lint-clean for the test to mean anything"
        );
        assert!(
            !x.report.is_clean(),
            "exploration must catch the reordering"
        );
        let check = x.report.to_check_report(&x.trace);
        assert_eq!(check.provenance, Provenance::Exploration);
        // The first Store in the trace is the data store at `p + 64`.
        let data_store_seq = x
            .trace
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Store { .. }))
            .unwrap()
            .seq;
        assert!(
            check
                .bugs
                .iter()
                .any(|b| b.kind == BugKind::MissingFence && b.store_seq == data_store_seq),
            "the data store is blamed for a missing fence: {}",
            check.render()
        );
        assert!(check
            .bugs
            .iter()
            .all(|b| matches!(b.checkpoint, Checkpoint::Event(_))));
    }

    #[test]
    fn jobs_do_not_change_results() {
        let m = pmlang::compile_one("t.pmc", ORDERING_BUG).unwrap();
        let serial = run_and_explore(&m, "main", &ExploreOptions::default()).unwrap();
        let parallel = run_and_explore(
            &m,
            "main",
            &ExploreOptions {
                jobs: 4,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(serial.report, parallel.report);
    }

    #[test]
    fn clean_program_explores_clean() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(2, 4096);
                store8(p, 64, 7);
                clwb(p + 64);
                sfence();
                store8(p, 0, 1);
                clwb(p);
                sfence();
            }
            fn recover() -> int {
                var p: ptr = pmem_map(2, 4096);
                if (load8(p, 0) == 1) {
                    if (load8(p, 64) != 7) { return 1; }
                }
                return 0;
            }
        "#;
        let m = pmlang::compile_one("t.pmc", src).unwrap();
        let x = run_and_explore(&m, "main", &ExploreOptions::default()).unwrap();
        assert!(x.report.is_clean(), "{}", x.report.render());
        assert!(x.report.stats.candidates > 0);
        assert!(x.report.stats.distinct_states > 0);
    }

    #[test]
    fn injected_worker_panic_reports_partial_results_deterministically() {
        use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
        let m = pmlang::compile_one("t.pmc", ORDERING_BUG).unwrap();
        let with_fault = |jobs| {
            run_and_explore(
                &m,
                "main",
                &ExploreOptions {
                    jobs,
                    fault: Some(FaultPlan::single(
                        FaultSite::ExploreWorker,
                        Trigger::Nth(1),
                        FaultKind::WorkerPanic,
                    )),
                    ..ExploreOptions::default()
                },
            )
            .unwrap()
        };
        let serial = with_fault(1);
        assert_eq!(serial.report.stats.worker_panics, 1);
        assert_eq!(serial.report.diagnostics.len(), 1);
        assert!(serial.report.diagnostics[0].contains("worker panicked"));
        // The rest of the frontier was drained: all other candidates ran.
        let clean = run_and_explore(&m, "main", &ExploreOptions::default()).unwrap();
        assert_eq!(
            serial.report.stats.candidates,
            clean.report.stats.candidates
        );
        assert!(
            !serial.report.is_clean(),
            "surviving candidates still find the bug"
        );
        // And the outcome is identical under work stealing.
        let parallel = with_fault(4);
        assert_eq!(serial.report, parallel.report);
    }

    #[test]
    fn injected_oracle_panic_is_an_oracle_crash_not_a_bug() {
        use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
        let m = pmlang::compile_one("t.pmc", ORDERING_BUG).unwrap();
        let x = run_and_explore(
            &m,
            "main",
            &ExploreOptions {
                jobs: 2,
                fault: Some(FaultPlan::single(
                    FaultSite::ExploreOracle,
                    Trigger::Nth(0),
                    FaultKind::OraclePanic,
                )),
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(x.report.stats.oracle_crashes, 1);
        assert!(
            x.report.diagnostics[0].contains("oracle panicked"),
            "{:?}",
            x.report.diagnostics
        );
        // An oracle crash is never blamed on a store.
        let check = x.report.to_check_report(&x.trace);
        assert!(check.bugs.iter().all(|b| b.kind != BugKind::MissingFence
            || x.report
                .findings
                .iter()
                .any(|f| f.blamed.iter().any(|l| l.store_seq == b.store_seq))));
    }

    #[test]
    fn injected_divergence_hits_watchdog_and_pool_survives() {
        use pmfault::{FaultKind, FaultPlan, FaultSite, Trigger};
        let m = pmlang::compile_one("t.pmc", ORDERING_BUG).unwrap();
        let t0 = std::time::Instant::now();
        let x = run_and_explore(
            &m,
            "main",
            &ExploreOptions {
                recovery_watchdog_ms: Some(30),
                fault: Some(FaultPlan::single(
                    FaultSite::VmDiverge,
                    Trigger::Nth(2),
                    FaultKind::StuckLoop,
                )),
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert!(t0.elapsed().as_secs() < 30, "watchdog must bound the hang");
        assert_eq!(x.report.stats.oracle_crashes, 1);
        assert!(
            x.report.diagnostics[0].contains("watchdog"),
            "{:?}",
            x.report.diagnostics
        );
    }

    #[test]
    fn budget_caps_candidates() {
        let m = pmlang::compile_one("t.pmc", ORDERING_BUG).unwrap();
        let x = run_and_explore(
            &m,
            "main",
            &ExploreOptions {
                budget: 3,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert!(x.report.stats.candidates <= 3);
    }
}
