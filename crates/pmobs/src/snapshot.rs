//! The serialized form of a [`crate::Registry`]: the stable
//! `hippo.metrics.v1` JSON schema every pipeline stage, `hippoctl
//! --metrics` file, and `BENCH_*.json` artifact speaks.
//!
//! Schema (all maps sorted by key, spans by id):
//!
//! ```json
//! {
//!   "schema": "hippo.metrics.v1",
//!   "spans": [
//!     {"id": 0, "parent": null, "name": "repair.detect",
//!      "start_us": 12, "dur_us": 3456}
//!   ],
//!   "counters": {"vm.instructions": 1024},
//!   "gauges": {"bench.pass_rate": 1.0},
//!   "histograms": {
//!     "explore.worker.candidates": {
//!       "count": 4, "sum": 128.0, "min": 16.0, "max": 48.0,
//!       "buckets": [[4, 1], [5, 3]]
//!     }
//!   }
//! }
//! ```
//!
//! Histogram buckets are sparse `[log2_index, count]` pairs: bucket `i`
//! holds observations `v` with `2^i <= v < 2^(i+1)` (values below 1 land
//! in bucket 0).

use crate::json::{self, Value};
use std::collections::BTreeMap;

/// The schema identifier emitted and required by this version.
pub const SCHEMA: &str = "hippo.metrics.v1";

/// Number of log2 histogram buckets (covers u64 magnitudes).
pub const HIST_BUCKETS: usize = 64;

/// One completed (or still-open) span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// Dense id, in open order.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Dot-separated stage name, e.g. `repair.detect.exploration`.
    pub name: String,
    /// Microseconds from the registry's epoch to the span open.
    pub start_us: u64,
    /// Span duration in microseconds (0 for spans never closed).
    pub dur_us: u64,
}

/// A histogram summary: count/sum/min/max plus sparse log2 buckets.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Hist {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Sparse `[log2 index, count]` pairs, index-sorted.
    pub buckets: Vec<(u8, u64)>,
}

impl Hist {
    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let idx = bucket_index(v);
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// The log2 bucket an observation falls into.
fn bucket_index(v: f64) -> u8 {
    if v < 1.0 {
        return 0;
    }
    let b = v.log2().floor() as i64;
    b.clamp(0, HIST_BUCKETS as i64 - 1) as u8
}

/// A point-in-time copy of a registry's contents.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// All spans, id-ordered.
    pub spans: Vec<SpanRec>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms.
    pub histograms: BTreeMap<String, Hist>,
}

/// A schema violation found while parsing a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// What was malformed.
    pub message: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "metrics schema error: {}", self.message)
    }
}

impl std::error::Error for SchemaError {}

fn bad(message: impl Into<String>) -> SchemaError {
    SchemaError {
        message: message.into(),
    }
}

impl Snapshot {
    /// Serializes to the stable schema, pretty enough for humans (one
    /// top-level key per line) while staying deterministic.
    pub fn to_json(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert("schema".to_string(), Value::Str(SCHEMA.to_string()));
        root.insert(
            "spans".to_string(),
            Value::Arr(
                self.spans
                    .iter()
                    .map(|s| {
                        let mut m = BTreeMap::new();
                        m.insert("id".to_string(), Value::UInt(s.id));
                        m.insert(
                            "parent".to_string(),
                            s.parent.map_or(Value::Null, Value::UInt),
                        );
                        m.insert("name".to_string(), Value::Str(s.name.clone()));
                        m.insert("start_us".to_string(), Value::UInt(s.start_us));
                        m.insert("dur_us".to_string(), Value::UInt(s.dur_us));
                        Value::Obj(m)
                    })
                    .collect(),
            ),
        );
        root.insert(
            "counters".to_string(),
            Value::Obj(
                self.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                    .collect(),
            ),
        );
        root.insert(
            "gauges".to_string(),
            Value::Obj(
                self.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Num(*v)))
                    .collect(),
            ),
        );
        root.insert(
            "histograms".to_string(),
            Value::Obj(
                self.histograms
                    .iter()
                    .map(|(k, h)| {
                        let mut m = BTreeMap::new();
                        m.insert("count".to_string(), Value::UInt(h.count));
                        m.insert("sum".to_string(), Value::Num(h.sum));
                        m.insert("min".to_string(), Value::Num(h.min));
                        m.insert("max".to_string(), Value::Num(h.max));
                        m.insert(
                            "buckets".to_string(),
                            Value::Arr(
                                h.buckets
                                    .iter()
                                    .map(|&(i, c)| {
                                        Value::Arr(vec![Value::UInt(u64::from(i)), Value::UInt(c)])
                                    })
                                    .collect(),
                            ),
                        );
                        (k.clone(), Value::Obj(m))
                    })
                    .collect(),
            ),
        );
        // One top-level key per line: big files stay diffable.
        let mut out = String::from("{\n");
        for (i, key) in ["schema", "spans", "counters", "gauges", "histograms"]
            .iter()
            .enumerate()
        {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  ");
            out.push_str(&Value::Str((*key).to_string()).to_json());
            out.push_str(": ");
            out.push_str(&root[*key].to_json());
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses a snapshot from its JSON form.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, a missing/mismatched `schema` tag, or any
    /// field of the wrong shape.
    pub fn from_json(text: &str) -> Result<Snapshot, SchemaError> {
        let v = json::parse(text).map_err(|e| bad(e.to_string()))?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing `schema` tag"))?;
        if schema != SCHEMA {
            return Err(bad(format!("unsupported schema `{schema}`")));
        }
        let mut snap = Snapshot::default();
        for sv in v
            .get("spans")
            .and_then(Value::as_arr)
            .ok_or_else(|| bad("`spans` must be an array"))?
        {
            let field_u64 = |k: &str| {
                sv.get(k)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| bad(format!("span field `{k}` must be a u64")))
            };
            snap.spans.push(SpanRec {
                id: field_u64("id")?,
                parent: match sv.get("parent") {
                    None | Some(Value::Null) => None,
                    Some(p) => Some(
                        p.as_u64()
                            .ok_or_else(|| bad("span `parent` must be null or a u64"))?,
                    ),
                },
                name: sv
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("span `name` must be a string"))?
                    .to_string(),
                start_us: field_u64("start_us")?,
                dur_us: field_u64("dur_us")?,
            });
        }
        for (k, cv) in v
            .get("counters")
            .and_then(Value::as_obj)
            .ok_or_else(|| bad("`counters` must be an object"))?
        {
            snap.counters.insert(
                k.clone(),
                cv.as_u64()
                    .ok_or_else(|| bad(format!("counter `{k}` must be a u64")))?,
            );
        }
        for (k, gv) in v
            .get("gauges")
            .and_then(Value::as_obj)
            .ok_or_else(|| bad("`gauges` must be an object"))?
        {
            snap.gauges.insert(
                k.clone(),
                gv.as_f64()
                    .ok_or_else(|| bad(format!("gauge `{k}` must be a number")))?,
            );
        }
        for (k, hv) in v
            .get("histograms")
            .and_then(Value::as_obj)
            .ok_or_else(|| bad("`histograms` must be an object"))?
        {
            let num = |f: &str| {
                hv.get(f)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| bad(format!("histogram `{k}.{f}` must be a number")))
            };
            let mut h = Hist {
                count: hv
                    .get("count")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| bad(format!("histogram `{k}.count` must be a u64")))?,
                sum: num("sum")?,
                min: num("min")?,
                max: num("max")?,
                buckets: vec![],
            };
            for b in hv
                .get("buckets")
                .and_then(Value::as_arr)
                .ok_or_else(|| bad(format!("histogram `{k}.buckets` must be an array")))?
            {
                let pair = b
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| bad(format!("histogram `{k}` bucket must be a pair")))?;
                let idx = pair[0]
                    .as_u64()
                    .filter(|&i| i < HIST_BUCKETS as u64)
                    .ok_or_else(|| bad(format!("histogram `{k}` bucket index out of range")))?;
                let cnt = pair[1]
                    .as_u64()
                    .ok_or_else(|| bad(format!("histogram `{k}` bucket count must be a u64")))?;
                h.buckets.push((idx as u8, cnt));
            }
            snap.histograms.insert(k.clone(), h);
        }
        Ok(snap)
    }

    /// Renders the per-stage timings breakdown `hippoctl fix --timings`
    /// prints: spans aggregated by name with call counts, total/mean
    /// milliseconds, and share of the root wall time.
    pub fn render_timings(&self) -> String {
        use std::fmt::Write as _;
        let mut agg: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = agg.entry(&s.name).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.dur_us;
        }
        let wall_us = self
            .spans
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .max()
            .unwrap_or(0)
            .saturating_sub(self.spans.iter().map(|s| s.start_us).min().unwrap_or(0));
        let mut rows: Vec<(&str, u64, u64)> =
            agg.into_iter().map(|(n, (c, d))| (n, c, d)).collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
        let name_w = rows
            .iter()
            .map(|(n, _, _)| n.len())
            .max()
            .unwrap_or(5)
            .max("stage".len());
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>6}  {:>10}  {:>9}  {:>6}",
            "stage", "calls", "total ms", "mean ms", "%wall"
        );
        for (name, calls, dur_us) in rows {
            let total_ms = dur_us as f64 / 1e3;
            let mean_ms = total_ms / calls as f64;
            let pct = if wall_us > 0 {
                dur_us as f64 * 100.0 / wall_us as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{name:<name_w$}  {calls:>6}  {total_ms:>10.3}  {mean_ms:>9.3}  {pct:>5.1}%"
            );
        }
        if self.spans.is_empty() {
            let _ = writeln!(out, "(no spans recorded)");
        }
        out
    }

    /// The distinct pipeline stages covered: first dotted component of
    /// every span name (e.g. `repair`, `explore`, `vm`, `trace`).
    pub fn span_stages(&self) -> std::collections::BTreeSet<String> {
        self.spans
            .iter()
            .map(|s| {
                s.name
                    .split('.')
                    .next()
                    .unwrap_or(s.name.as_str())
                    .to_string()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_are_log2() {
        let mut h = Hist::default();
        for v in [0.0, 0.5, 1.0, 1.9, 2.0, 1000.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 1000.0);
        // 0.0 and 0.5, 1.0 and 1.9 share buckets 0; 2.0 in 1; 1000 in 9.
        assert_eq!(h.buckets, vec![(0, 4), (1, 1), (9, 1)]);
        assert!((h.mean() - (1005.4 / 6.0)).abs() < 1e-9);
    }

    #[test]
    fn timings_table_aggregates_by_name() {
        let snap = Snapshot {
            spans: vec![
                SpanRec {
                    id: 0,
                    parent: None,
                    name: "repair.detect".into(),
                    start_us: 0,
                    dur_us: 3000,
                },
                SpanRec {
                    id: 1,
                    parent: Some(0),
                    name: "vm.run".into(),
                    start_us: 100,
                    dur_us: 2000,
                },
                SpanRec {
                    id: 2,
                    parent: None,
                    name: "vm.run".into(),
                    start_us: 3200,
                    dur_us: 800,
                },
            ],
            ..Snapshot::default()
        };
        let t = snap.render_timings();
        assert!(t.contains("repair.detect"), "{t}");
        assert!(t.contains("vm.run"), "{t}");
        // vm.run appears once, aggregated over 2 calls.
        assert_eq!(t.matches("vm.run").count(), 1, "{t}");
        assert_eq!(
            snap.span_stages().into_iter().collect::<Vec<_>>(),
            vec!["repair".to_string(), "vm".to_string()]
        );
    }
}
