//! The thread-safe metrics registry and the [`Obs`] handle the pipeline
//! threads through its options structs.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled is free.** Every [`Obs`] method starts with one branch on
//!    `Option::is_none`; a pipeline built with `Obs::default()` pays
//!    nothing else — no allocation, no clock read, no lock.
//! 2. **Thread-safe.** Exploration workers share one registry; span
//!    parenthood is tracked per thread so concurrent spans nest correctly.
//! 3. **Cheap to clone.** `Obs` is an `Option<Arc>`; cloning it into
//!    `VmOptions`/`ExploreOptions` is a refcount bump.

use crate::snapshot::{Hist, Snapshot, SpanRec};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

#[derive(Debug, Default)]
struct Inner {
    spans: Vec<SpanRec>,
    /// Per-thread stack of open span ids (span parenthood).
    stacks: HashMap<ThreadId, Vec<u64>>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Hist>,
}

/// A thread-safe recorder of spans, counters, gauges, and histograms.
#[derive(Debug, Clone)]
pub struct Registry {
    epoch: Instant,
    inner: Arc<Mutex<Inner>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Creates an empty registry; all span times are relative to this
    /// moment.
    pub fn new() -> Registry {
        Registry {
            epoch: Instant::now(),
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned registry would mean a panic while holding the lock
        // below — all such sections are tiny and panic-free; recover the
        // data rather than cascade.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn open_span(&self, name: &str) -> u64 {
        let start_us = self.epoch.elapsed().as_micros() as u64;
        let tid = std::thread::current().id();
        let mut g = self.lock();
        let id = g.spans.len() as u64;
        let parent = g.stacks.get(&tid).and_then(|s| s.last()).copied();
        g.spans.push(SpanRec {
            id,
            parent,
            name: name.to_string(),
            start_us,
            dur_us: 0,
        });
        g.stacks.entry(tid).or_default().push(id);
        id
    }

    fn close_span(&self, id: u64) {
        let now_us = self.epoch.elapsed().as_micros() as u64;
        let tid = std::thread::current().id();
        let mut g = self.lock();
        if let Some(stack) = g.stacks.get_mut(&tid) {
            if let Some(pos) = stack.iter().rposition(|&s| s == id) {
                stack.truncate(pos);
            }
        }
        if let Some(s) = g.spans.get_mut(id as usize) {
            s.dur_us = now_us.saturating_sub(s.start_us);
        }
    }

    fn add(&self, name: &str, delta: u64) {
        let mut g = self.lock();
        match g.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                g.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn gauge(&self, name: &str, v: f64) {
        self.lock().gauges.insert(name.to_string(), v);
    }

    fn gauge_add(&self, name: &str, delta: f64) {
        *self.lock().gauges.entry(name.to_string()).or_insert(0.0) += delta;
    }

    fn observe(&self, name: &str, v: f64) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// A point-in-time copy of everything recorded so far. Open spans
    /// appear with `dur_us: 0`.
    ///
    /// The registry mutex is held only while the raw collections are
    /// cloned; assembling (and, in callers, serializing or rendering) the
    /// snapshot happens outside the lock. A slow consumer — the daemon's
    /// live `hippo.metrics.v1` endpoint polling mid-campaign — can
    /// therefore never stall pipeline workers on a recording site.
    pub fn snapshot(&self) -> Snapshot {
        let (spans, counters, gauges, histograms) = {
            let g = self.lock();
            (
                g.spans.clone(),
                g.counters.clone(),
                g.gauges.clone(),
                g.histograms.clone(),
            )
        };
        Snapshot {
            spans,
            counters,
            gauges,
            histograms,
        }
    }

    /// The snapshot serialized as `hippo.metrics.v1` JSON. The lock
    /// discipline of [`Registry::snapshot`] applies: serialization runs
    /// strictly after the registry mutex is released.
    pub fn snapshot_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// The handle pipeline stages record through. `Obs::default()` is the
/// disabled handle: every method is a single branch and returns
/// immediately. [`Obs::enabled`] (or [`Obs::attached`]) carries a shared
/// [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct Obs(Option<Registry>);

impl Obs {
    /// A handle recording into a fresh registry.
    pub fn enabled() -> Obs {
        Obs(Some(Registry::new()))
    }

    /// A handle recording into an existing registry.
    pub fn attached(registry: &Registry) -> Obs {
        Obs(Some(registry.clone()))
    }

    /// The explicit spelling of `Obs::default()`.
    pub fn disabled() -> Obs {
        Obs(None)
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The backing registry, when enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.0.as_ref()
    }

    /// Opens a span; it closes (records its duration) when the returned
    /// guard drops. Spans opened while another span is open on the same
    /// thread become its children.
    #[must_use = "a span records its duration when the guard drops"]
    pub fn span(&self, name: &str) -> Span {
        match &self.0 {
            None => Span(None),
            Some(r) => Span(Some((r.clone(), r.open_span(name)))),
        }
    }

    /// Increments counter `name` by `delta` (saturating).
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(r) = &self.0 {
            r.add(name, delta);
        }
    }

    /// Sets gauge `name` (last write wins).
    pub fn gauge(&self, name: &str, v: f64) {
        if let Some(r) = &self.0 {
            r.gauge(name, v);
        }
    }

    /// Adds `delta` to gauge `name` (accumulating gauge, e.g. total
    /// re-verify milliseconds).
    pub fn gauge_add(&self, name: &str, delta: f64) {
        if let Some(r) = &self.0 {
            r.gauge_add(name, delta);
        }
    }

    /// Records one observation into histogram `name`.
    pub fn observe(&self, name: &str, v: f64) {
        if let Some(r) = &self.0 {
            r.observe(name, v);
        }
    }

    /// A snapshot of the backing registry (empty when disabled).
    pub fn snapshot(&self) -> Snapshot {
        self.0.as_ref().map(Registry::snapshot).unwrap_or_default()
    }
}

/// An open span; closes on drop. The disabled variant is a no-op.
#[derive(Debug)]
pub struct Span(Option<(Registry, u64)>);

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((r, id)) = self.0.take() {
            r.close_span(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::default();
        assert!(!obs.is_enabled());
        assert!(obs.registry().is_none());
        {
            let _s = obs.span("never.recorded");
            obs.add("never", 7);
            obs.gauge("never", 1.0);
            obs.gauge_add("never", 1.0);
            obs.observe("never", 1.0);
        }
        let snap = obs.snapshot();
        assert_eq!(snap, Snapshot::default());
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn spans_nest_and_counters_accumulate() {
        let obs = Obs::enabled();
        {
            let _outer = obs.span("repair.detect");
            {
                let _inner = obs.span("vm.run");
                obs.add("vm.instructions", 10);
            }
            obs.add("vm.instructions", 5);
        }
        let _sibling = obs.span("repair.apply");
        drop(_sibling);
        let snap = obs.snapshot();
        assert_eq!(snap.counters["vm.instructions"], 15);
        assert_eq!(snap.spans.len(), 3);
        assert_eq!(snap.spans[0].name, "repair.detect");
        assert_eq!(snap.spans[0].parent, None);
        assert_eq!(snap.spans[1].name, "vm.run");
        assert_eq!(snap.spans[1].parent, Some(0));
        assert_eq!(snap.spans[2].parent, None, "sibling after close");
    }

    #[test]
    fn spans_on_other_threads_get_their_own_stack() {
        let obs = Obs::enabled();
        let _root = obs.span("root");
        std::thread::scope(|s| {
            for _ in 0..2 {
                let obs = obs.clone();
                s.spawn(move || {
                    let _w = obs.span("worker");
                    obs.add("work", 1);
                });
            }
        });
        let snap = obs.snapshot();
        assert_eq!(snap.counters["work"], 2);
        // Worker spans must not parent under `root` (different threads).
        for w in snap.spans.iter().filter(|s| s.name == "worker") {
            assert_eq!(w.parent, None);
        }
    }

    #[test]
    fn gauges_and_histograms() {
        let obs = Obs::enabled();
        obs.gauge("g", 1.0);
        obs.gauge("g", 2.5);
        obs.gauge_add("acc", 1.0);
        obs.gauge_add("acc", 2.0);
        obs.observe("h", 3.0);
        obs.observe("h", 5.0);
        let snap = obs.snapshot();
        assert_eq!(snap.gauges["g"], 2.5, "last write wins");
        assert_eq!(snap.gauges["acc"], 3.0, "accumulating gauge sums");
        assert_eq!(snap.histograms["h"].count, 2);
        assert_eq!(snap.histograms["h"].sum, 8.0);
    }

    #[test]
    fn serializing_a_snapshot_never_stalls_recording_threads() {
        // Seed the registry with enough spans that serialization takes
        // real work, then hammer it from recorder threads while a consumer
        // thread serializes in a loop. With serialization inside the lock
        // this test livelocks recorders behind multi-millisecond JSON
        // rendering; with the short-lock discipline both sides make
        // progress and every recorded count lands.
        let reg = Registry::new();
        let obs = Obs::attached(&reg);
        for i in 0..2000 {
            let _s = obs.span(&format!("seed.{i}"));
        }
        const RECORDERS: u64 = 4;
        const PER_THREAD: u64 = 500;
        std::thread::scope(|s| {
            for _ in 0..RECORDERS {
                let obs = obs.clone();
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        let _sp = obs.span("hot");
                        obs.add("hot.count", 1);
                    }
                });
            }
            let reg = reg.clone();
            s.spawn(move || {
                for _ in 0..50 {
                    let json = reg.snapshot_json();
                    assert!(json.contains("seed.0"));
                }
            });
        });
        assert_eq!(reg.snapshot().counters["hot.count"], RECORDERS * PER_THREAD);
    }

    #[test]
    fn attached_handles_share_one_registry() {
        let reg = Registry::new();
        let a = Obs::attached(&reg);
        let b = Obs::attached(&reg);
        a.add("c", 1);
        b.add("c", 2);
        assert_eq!(reg.snapshot().counters["c"], 3);
    }
}
