//! A minimal JSON value model with an emitter and a recursive-descent
//! parser — just enough for the metrics schema, with zero dependencies.
//!
//! Numbers are kept in two lanes so the schema round-trips exactly:
//! unsigned integers (counters, span ids, bucket counts) stay `u64`;
//! everything else is `f64`, emitted with Rust's shortest round-tripping
//! float formatting.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects use a `BTreeMap` so emission is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (no `.`, no exponent, no sign in the input).
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key`, when this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a `u64`, accepting integral floats.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Num(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// This value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(n) => Some(*n as f64),
            Value::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// This value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Emits compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Num(f) => {
                // JSON has no NaN/Infinity; clamp to null like serde_json.
                if f.is_finite() {
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first malformed byte.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = vec![];
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            s.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor on the `u`), including a
    /// following low surrogate when the first unit is a high surrogate.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        self.pos += 1; // consume `u`
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: require `\uXXXX` low half.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(cp).ok_or_else(|| self.err("bad surrogate pair"));
                    }
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        if !fractional && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let src = r#"{"a":[1,2.5,-3,"x\ny",true,null],"b":{"c":18446744073709551615}}"#;
        let v = parse(src).unwrap();
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [0.1, 1e-9, 123456.789, f64::MAX, -0.0] {
            let v = Value::Num(f);
            let back = parse(&v.to_json()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), f.to_bits(), "{f}");
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let s = "quote\" backslash\\ newline\n tab\t nul\u{1} emoji\u{1F600}";
        let v = Value::Str(s.to_string());
        assert_eq!(parse(&v.to_json()).unwrap().as_str(), Some(s));
        // A surrogate-pair escape parses to the astral char.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("\u{1F600}")
        );
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "nul",
            "1.2.3",
            "\"\\u12\"",
            "{} x",
        ] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }
}
