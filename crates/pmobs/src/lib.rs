//! `pmobs` — the pipeline-wide observability layer: hierarchical spans,
//! typed counters/gauges/histograms, and the stable `hippo.metrics.v1`
//! JSON schema that `hippoctl --metrics`, CI bench artifacts, and the
//! bench-regression gate all speak.
//!
//! # Zero dependencies, zero disabled cost
//!
//! The crate depends on nothing (its JSON emitter and parser are
//! hand-rolled in [`json`]), and a disabled [`Obs`] handle — the
//! `Default` — reduces every recording call to a single `Option` branch.
//! Pipeline crates thread an `Obs` through their options structs
//! (`VmOptions::obs`, `ExploreOptions::obs`, `RepairOptions::obs`, …) and
//! never pay for instrumentation unless a registry is attached.
//!
//! # Naming conventions
//!
//! Metric and span names are dot-separated, rooted at the pipeline stage:
//!
//! | prefix     | stage |
//! |------------|-------|
//! | `trace.`   | `pmtrace` ingest (events parsed, bytes, parse errors) |
//! | `static.`  | `pmstatic` (fixpoint iterations, summaries) |
//! | `vm.`      | `pmvm`/`pmem-sim` (instructions, flushes, fences, fuel) |
//! | `explore.` | `pmexplore` (frontiers, candidates, dedup, workers) |
//! | `fault.`   | `pmfault` (injections by site and kind) |
//! | `check.`   | `pmcheck` trace audits |
//! | `repair.`  | `core::engine` (attempts, retries, fixes by kind) |
//! | `cli.`     | `hippoctl` (source loading, per-command wall time) |
//! | `bench.`   | `bench` binaries (headline numbers the CI gate reads) |
//!
//! # Example
//!
//! ```
//! let obs = pmobs::Obs::enabled();
//! {
//!     let _detect = obs.span("repair.detect");
//!     obs.add("vm.instructions", 1024);
//! }
//! obs.gauge("bench.pass_rate", 1.0);
//! let json = obs.snapshot().to_json();
//! let back = pmobs::Snapshot::from_json(&json).unwrap();
//! assert_eq!(back.counters["vm.instructions"], 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod registry;
pub mod snapshot;

pub use registry::{Obs, Registry, Span};
pub use snapshot::{Hist, SchemaError, Snapshot, SpanRec, HIST_BUCKETS, SCHEMA};
