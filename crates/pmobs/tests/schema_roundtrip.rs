//! Schema round-trip guarantees: any snapshot a registry can produce
//! serializes to `hippo.metrics.v1` JSON and parses back **equal**.

use pmobs::{Obs, Snapshot};

/// A registry exercising every feature: nested + cross-thread spans,
/// counters, gauges (set and accumulating), and histograms with values
/// across many buckets.
fn busy_snapshot() -> Snapshot {
    let obs = Obs::enabled();
    {
        let _root = obs.span("repair.iteration");
        let _detect = obs.span("repair.detect");
        {
            let _vm = obs.span("vm.run");
            obs.add("vm.instructions", 123_456);
            obs.add("vm.flushes", 7);
        }
        std::thread::scope(|s| {
            for w in 0..3 {
                let obs = obs.clone();
                s.spawn(move || {
                    let _span = obs.span("explore.worker");
                    obs.observe("explore.worker.candidates", (w * 17 + 1) as f64);
                });
            }
        });
    }
    obs.add("trace.ingest.events", u64::MAX); // extreme counter survives
    obs.gauge("bench.pass_rate", 1.0);
    obs.gauge("bench.wall_ms", 1234.5678);
    obs.gauge("weird \"name\"\\with\nescapes", -0.0);
    obs.gauge_add("repair.reverify_ms", 0.25);
    obs.gauge_add("repair.reverify_ms", 0.125);
    for v in [0.0, 0.9, 1.0, 2.0, 3.5, 1e12, 6.02e23] {
        obs.observe("hist.wide", v);
    }
    obs.snapshot()
}

#[test]
fn serialize_parse_equal() {
    let snap = busy_snapshot();
    let json = snap.to_json();
    let back = Snapshot::from_json(&json).expect("own output parses");
    assert_eq!(back, snap, "round-trip must be lossless");
    // And it is a fixpoint: a second trip emits byte-identical JSON.
    assert_eq!(back.to_json(), json);
}

#[test]
fn empty_snapshot_roundtrips() {
    let snap = Obs::enabled().snapshot();
    let back = Snapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(back, snap);
    assert_eq!(back, Snapshot::default());
}

#[test]
fn schema_tag_is_enforced() {
    let json = busy_snapshot().to_json();
    let wrong = json.replace("hippo.metrics.v1", "hippo.metrics.v0");
    let err = Snapshot::from_json(&wrong).unwrap_err();
    assert!(err.to_string().contains("unsupported schema"), "{err}");
    assert!(Snapshot::from_json("{}").is_err(), "missing tag rejected");
    assert!(Snapshot::from_json("not json").is_err());
}

#[test]
fn spans_preserve_parent_links() {
    let snap = busy_snapshot();
    let back = Snapshot::from_json(&snap.to_json()).unwrap();
    let detect = back
        .spans
        .iter()
        .find(|s| s.name == "repair.detect")
        .expect("detect span present");
    let root = back
        .spans
        .iter()
        .find(|s| s.name == "repair.iteration")
        .expect("root span present");
    assert_eq!(detect.parent, Some(root.id));
    assert_eq!(root.parent, None);
    let vm = back.spans.iter().find(|s| s.name == "vm.run").unwrap();
    assert_eq!(vm.parent, Some(detect.id));
}

#[test]
fn disabled_registry_snapshot_is_empty_json() {
    let obs = Obs::default();
    obs.add("c", 1);
    obs.observe("h", 1.0);
    let _span = obs.span("s");
    let snap = obs.snapshot();
    assert_eq!(snap, Snapshot::default());
    let back = Snapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(back, Snapshot::default());
}
