//! The redundancy analysis: a forward *must*-durability dataflow over pmir
//! CFGs, dual to `pmstatic`'s missing-flush lattice.
//!
//! Where `pmstatic` tracks stores that might still be dirty (a *may*
//! analysis whose sound direction is reporting too much), this pass tracks
//! cache lines that are provably already flushed — so its sound direction
//! is claiming too *little*. Per program point it keeps the set of
//! structural cache lines flushed on **every** incoming path (key
//! intersection at joins), each at one of two levels: `Flushed` (a
//! weakly-ordered flush covered it, no fence yet) or `Durable` (fenced, or
//! strongly flushed). A persistent store kills every line it may overlap;
//! only provable disjointness (same structural base with disjoint
//! line-rounded intervals, or disjoint points-to sets) lets a line
//! survive. Calls kill through a transitive may-write set and re-introduce
//! the callee's guaranteed (must) flush effects from the converged
//! `pmstatic` summaries.
//!
//! A separate *may* bit (`unordered`) drives fence findings: it is set by
//! any potentially-persistent store or flush on any path since the last
//! fence, and only a fence clears it. A fence reached with the bit clear
//! orders nothing and is sinkable.
//!
//! A second, *backward* must pass catches the dual shape the repair engine
//! itself produces (one flush per store of the same line): a weak flush is
//! *dead* when its line is provably flushed again before the next fence,
//! call, crashpoint, or return on every outgoing path — a weakly-ordered
//! flush only matters at the next fence, and there the later flush covers
//! the line. Intervening stores do not block this direction (the later
//! flush persists them too; removing the earlier flush only *shrinks* the
//! set of possible crash states). Line identity here uses a symbolic
//! address (`SymLine`) that keeps non-constant `gep` hops distinct, so
//! `pool + k + 0/8/16` trains coalesce while `pool + k` and `pool + j`
//! never alias. As everywhere in this crate, line rounding follows the
//! repo's structural convention (bases are treated as line-aligned); the
//! transactional optimizer re-verifies every applied round dynamically, so
//! an alignment-confounded claim cannot ship.

use crate::finding::{Finding, FindingKind, Witness, WitnessEvent, WitnessRole};
use pmalias::{ObjId, ObjKind, PmMarking};
use pmem_sim::CostModel;
use pmir::cfg::Cfg;
use pmir::{FenceKind, FuncId, Function, InstId, Module, Op, Operand, ValueId, ValueKind};
use pmstatic::loc::{const_of, rebase, Base};
use pmstatic::{Loc, Resolver, StaticChecker};
use pmtrace::TraceLoc;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// Cap on witness events kept per tracked line: enough to show the
/// store/flush/fence chain without ballooning join states.
const WITNESS_CAP: usize = 6;

/// Cap on distinct lines a bounded callee flush effect may introduce; a
/// wider effect is ignored (sound: fewer tracked lines).
const CALLEE_EFFECT_LINES: i64 = 8;

/// A failure to run the redundancy analysis (currently: unknown entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedundError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for RedundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "redundancy analysis failed: {}", self.message)
    }
}

impl std::error::Error for RedundError {}

/// How durable a tracked line provably is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Level {
    /// Covered by a weakly-ordered flush on every path; durable at the
    /// next fence.
    Flushed,
    /// Flushed and fenced (or strongly flushed) on every path.
    Durable,
}

/// One provably-flushed cache line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LineFact {
    level: Level,
    /// Points-to set of the pointer(s) the covering flushes used — the
    /// fallback evidence for store-kill disjointness.
    pts: BTreeSet<ObjId>,
    /// Witness events (capped, deduplicated, sorted at merges).
    events: Vec<WitnessEvent>,
}

impl LineFact {
    fn push_event(&mut self, ev: WitnessEvent) {
        if !self.events.contains(&ev) {
            self.events.push(ev);
            if self.events.len() > WITNESS_CAP {
                self.events.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
                self.events.truncate(WITNESS_CAP);
            }
        }
    }
}

/// The abstract state at a program point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct RState {
    /// Lines flushed on every incoming path, keyed by line-rounded
    /// structural address.
    lines: BTreeMap<Loc, LineFact>,
    /// May-bit: some path performed a potentially-persistent store or a
    /// weakly-ordered flush with possible effect since the last fence.
    /// Function entry starts `true`: callers may have pending work a
    /// leading fence is ordering.
    unordered: bool,
    /// Events witnessing the most recent fence(s) on the incoming paths.
    last_fences: Vec<WitnessEvent>,
    /// Whether a predecessor initialized this state.
    reached: bool,
}

impl RState {
    fn entry() -> RState {
        RState {
            lines: BTreeMap::new(),
            unordered: true,
            last_fences: vec![],
            reached: true,
        }
    }

    /// Joins `other` into `self`; returns whether `self` changed. Lines
    /// intersect (levels meet toward `Flushed`), the may-bit ORs.
    fn join(&mut self, other: &RState) -> bool {
        if !other.reached {
            return false;
        }
        if !self.reached {
            *self = other.clone();
            return true;
        }
        let before = self.clone();
        self.lines.retain(|k, _| other.lines.contains_key(k));
        for (k, mine) in self.lines.iter_mut() {
            let theirs = &other.lines[k];
            mine.level = mine.level.min(theirs.level);
            mine.pts.extend(theirs.pts.iter().copied());
            for ev in &theirs.events {
                if !mine.events.contains(ev) {
                    mine.events.push(ev.clone());
                }
            }
            if mine.events.len() > WITNESS_CAP {
                mine.events.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
                mine.events.truncate(WITNESS_CAP);
            }
        }
        self.unordered |= other.unordered;
        for ev in &other.last_fences {
            if !self.last_fences.contains(ev) {
                self.last_fences.push(ev.clone());
            }
        }
        if self.last_fences.len() > WITNESS_CAP {
            self.last_fences
                .sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
            self.last_fences.truncate(WITNESS_CAP);
        }
        *self != before
    }
}

/// Symbolic cache-line identity for the backward dead-flush pass. Unlike
/// [`Loc`], which drops non-constant `gep` offsets entirely, this keeps
/// each runtime hop as `(offset value, constant displacement below it)` —
/// so two addresses are the same line only when they share the root, the
/// exact chain of runtime offsets, and the line-rounded final
/// displacement.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SymLine {
    /// Root of the chain, in [`Loc`] base terms.
    base: Base,
    /// Non-constant `gep` hops, outermost last.
    steps: Vec<(ValueId, i64)>,
    /// Line-rounded constant displacement above the last hop.
    line: i64,
}

impl SymLine {
    /// The plain structural form, when one exists (no runtime hops).
    fn as_loc(&self) -> Option<Loc> {
        self.steps.is_empty().then(|| Loc {
            base: self.base.clone(),
            offset: Some(self.line),
        })
    }
}

/// The backward must-reflush state: lines provably flushed again before
/// the next fence/call/crashpoint/return, with the covering flush events.
type ReflushMap = BTreeMap<SymLine, Vec<WitnessEvent>>;

/// Syntactic store map for single-store slot forwarding (the same rule
/// [`Resolver`] applies internally).
fn syntactic_slot_stores(func: &Function) -> HashMap<ValueId, Vec<Operand>> {
    let mut map: HashMap<ValueId, Vec<Operand>> = HashMap::new();
    for (_, i) in func.linked_insts() {
        if let Op::Store { addr, value, .. } = func.inst(i).op {
            if let Some(v) = addr.as_value() {
                map.entry(v).or_default().push(value);
            }
        }
    }
    map
}

/// Resolves an operand to its symbolic line, chasing constant `gep`s,
/// recording runtime `gep` hops, and forwarding loads from single-store
/// slots. `None` when the chain hits a forwarding cycle or a runtime
/// offset that is not a value (nothing to key on) — such flushes neither
/// die nor cover.
fn sym_line(
    func: &Function,
    slot_stores: &HashMap<ValueId, Vec<Operand>>,
    res: &mut Resolver<'_>,
    seen: &mut HashSet<ValueId>,
    op: Operand,
) -> Option<SymLine> {
    let (base, steps, delta) = sym_addr(func, slot_stores, res, seen, op)?;
    Some(SymLine {
        base,
        steps,
        line: delta.div_euclid(64) * 64,
    })
}

#[allow(clippy::type_complexity)]
fn sym_addr(
    func: &Function,
    slot_stores: &HashMap<ValueId, Vec<Operand>>,
    res: &mut Resolver<'_>,
    seen: &mut HashSet<ValueId>,
    op: Operand,
) -> Option<(Base, Vec<(ValueId, i64)>, i64)> {
    let v = match op {
        Operand::Const(c) => return Some((Base::Abs, vec![], c)),
        Operand::Null => return Some((Base::Abs, vec![], 0)),
        Operand::Value(v) => v,
    };
    if !seen.insert(v) {
        return None; // forwarding cycle: opaque
    }
    let r =
        match func.value(v).kind {
            ValueKind::Arg(i) => Some((Base::Arg(i), vec![], 0)),
            ValueKind::Inst(i) => match &func.inst(i).op {
                Op::Gep { base, offset } => sym_addr(func, slot_stores, res, seen, *base).and_then(
                    |(b, mut steps, delta)| match const_of(*offset) {
                        Some(c) => Some((b, steps, delta + c)),
                        None => {
                            steps.push((offset.as_value()?, delta));
                            Some((b, steps, 0))
                        }
                    },
                ),
                Op::Load { addr, .. } => {
                    let forwarded = addr.as_value().and_then(|slot| {
                        match slot_stores.get(&slot).map(Vec::as_slice) {
                            Some(&[w]) => Some(w),
                            _ => None,
                        }
                    });
                    match forwarded {
                        Some(w) => sym_addr(func, slot_stores, res, seen, w),
                        None => Some((Base::Slot(Box::new(res.resolve(*addr))), vec![], 0)),
                    }
                }
                _ => Some((Base::Anchor(i), vec![], 0)),
            },
        };
    seen.remove(&v);
    r
}

/// Transitive may-effects of calling a function, for the kill rules.
#[derive(Debug, Clone, Default)]
struct MayEffects {
    /// Points-to union of every store target in the function and its
    /// transitive callees; `None` when some target is unresolvable
    /// (clobbers everything).
    writes: Option<BTreeSet<ObjId>>,
    /// The function (transitively) stores to or flushes possibly-persistent
    /// memory: a call sets the fence may-bit.
    touches_pm: bool,
}

/// The redundancy analysis over one module: converged `pmstatic` summaries
/// plus the per-function must-durability dataflow.
pub struct RedundAnalysis<'m> {
    m: &'m Module,
    checker: StaticChecker<'m>,
    marking: PmMarking,
    may: HashMap<FuncId, MayEffects>,
    /// Per-function exit state: the join of this analysis' state at every
    /// `ret`, computed bottom-up (callee-first; in-cycle callees fall back
    /// to no effect, which is sound for a must analysis).
    exit: HashMap<FuncId, RState>,
    cost: CostModel,
}

impl<'m> RedundAnalysis<'m> {
    /// Analyzes the module: alias facts and function summaries (via
    /// [`StaticChecker`]), then the per-call transitive may-write sets.
    pub fn new(m: &'m Module) -> Self {
        let checker = StaticChecker::new(m);
        let marking = PmMarking::full(checker.alias());
        let mut analysis = RedundAnalysis {
            m,
            checker,
            marking,
            may: HashMap::new(),
            exit: HashMap::new(),
            cost: CostModel::optane_like(),
        };
        analysis.may = analysis.may_effects();
        for f in analysis.postorder() {
            let e = analysis.compute_exit(f);
            analysis.exit.insert(f, e);
        }
        analysis
    }

    /// Callee-first traversal order over the whole module (cycle-safe:
    /// back edges are skipped, so recursive groups see no effect for the
    /// in-cycle call, an under-approximation).
    fn postorder(&self) -> Vec<FuncId> {
        let mut order = vec![];
        let mut seen = HashSet::new();
        let mut roots: Vec<FuncId> = self.m.func_ids().collect();
        roots.sort();
        for root in roots {
            if seen.contains(&root) {
                continue;
            }
            // (func, next-callee-index) DFS without recursion.
            let mut stack = vec![(root, self.callees(root).into_iter().collect::<Vec<_>>(), 0)];
            seen.insert(root);
            while let Some((f, cs, idx)) = stack.last_mut() {
                if let Some(&c) = cs.get(*idx) {
                    *idx += 1;
                    if seen.insert(c) {
                        let f = c;
                        stack.push((f, self.callees(f).into_iter().collect(), 0));
                    }
                } else {
                    order.push(*f);
                    stack.pop();
                }
            }
        }
        order
    }

    /// The join of the analysis state at every `ret` of `f`: the lines the
    /// function provably leaves flushed or durable, in its own frame.
    fn compute_exit(&self, f: FuncId) -> RState {
        let func = self.m.function(f);
        let cfg = Cfg::of(func);
        let input = self.block_states(f, &cfg);
        let mut exit = RState::default();
        for &b in cfg.reverse_postorder() {
            if !input[b.0 as usize].reached {
                continue;
            }
            let mut state = input[b.0 as usize].clone();
            let mut res = Resolver::new(func);
            for &i in &func.block(b).insts {
                if matches!(func.inst(i).op, Op::Ret { .. }) {
                    exit.join(&state);
                }
                self.transfer_inst(f, i, &mut state, &mut res, None);
            }
        }
        exit
    }

    /// The underlying static checker (converged summaries + alias facts).
    pub fn checker(&self) -> &StaticChecker<'m> {
        &self.checker
    }

    /// Whether an operand may point into persistent memory. Unresolvable
    /// pointers (empty points-to) count as persistent.
    fn may_be_pm(&self, f: FuncId, op: Operand) -> bool {
        match op.as_value() {
            None => true, // constant address: no alias facts, assume the worst
            Some(v) => {
                let pts = self.checker.alias().points_to(f, v);
                pts.is_empty()
                    || pts
                        .iter()
                        .any(|&o| self.checker.alias().object(o).kind == ObjKind::Pm)
            }
        }
    }

    fn pts_of(&self, f: FuncId, op: Operand) -> BTreeSet<ObjId> {
        op.as_value()
            .map(|v| {
                self.checker
                    .alias()
                    .points_to(f, v)
                    .iter()
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }

    fn callees(&self, f: FuncId) -> BTreeSet<FuncId> {
        let func = self.m.function(f);
        func.linked_insts()
            .filter_map(|(_, i)| match func.inst(i).op {
                Op::Call { callee, .. } => Some(callee),
                _ => None,
            })
            .collect()
    }

    fn reachable_from(&self, entry: FuncId) -> Vec<FuncId> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([entry]);
        seen.insert(entry);
        while let Some(f) = queue.pop_front() {
            for c in self.callees(f) {
                if seen.insert(c) {
                    queue.push_back(c);
                }
            }
        }
        let mut v: Vec<FuncId> = seen.into_iter().collect();
        v.sort();
        v
    }

    /// Per-function transitive may-effects: what calling it can clobber.
    fn may_effects(&self) -> HashMap<FuncId, MayEffects> {
        let mut out = HashMap::new();
        for f in self.m.func_ids() {
            let mut writes: Option<BTreeSet<ObjId>> = Some(BTreeSet::new());
            let mut touches_pm = false;
            for g in self.reachable_from(f) {
                let func = self.m.function(g);
                for (_, i) in func.linked_insts() {
                    match &func.inst(i).op {
                        op if op.is_pm_storeish() => {
                            let addr = match op {
                                Op::Store { addr, .. } => *addr,
                                Op::Memcpy { dst, .. } | Op::Memset { dst, .. } => *dst,
                                _ => unreachable!("is_pm_storeish covers these"),
                            };
                            let pts = self.pts_of(g, addr);
                            if pts.is_empty() {
                                writes = None;
                            } else if let Some(w) = &mut writes {
                                w.extend(pts.iter().copied());
                            }
                            touches_pm |= self.may_be_pm(g, addr);
                        }
                        Op::Flush { addr, .. } => {
                            touches_pm |= self.may_be_pm(g, *addr);
                        }
                        _ => {}
                    }
                }
            }
            out.insert(f, MayEffects { writes, touches_pm });
        }
        out
    }

    /// All findings in the functions reachable from `entry`, sorted by
    /// descending estimated payoff.
    ///
    /// # Errors
    ///
    /// Fails when `entry` names no function.
    pub fn findings(&self, entry: &str) -> Result<Vec<Finding>, RedundError> {
        let entry_id = self.m.function_by_name(entry).ok_or_else(|| RedundError {
            message: format!("entry function `{entry}` not found"),
        })?;
        let mut out = vec![];
        let mut dead = vec![];
        for f in self.reachable_from(entry_id) {
            self.emit_function(f, &mut out);
            self.emit_dead_flushes(f, &mut dead);
        }
        // A site can be flagged by both directions (forward coalescing and
        // the backward dead-flush pass): the forward claim wins. A dead
        // flush whose covering flushes are all themselves flagged for
        // removal is dropped too — applying the whole set at once would
        // leave the line uncovered (`clwb; clwb; sfence` must keep one).
        // The per-round dynamic re-verification remains the final word.
        let forward: HashSet<(FuncId, u32)> = out.iter().map(|fi| (fi.func, fi.inst.0)).collect();
        let dead_sites: HashSet<(FuncId, u32)> =
            dead.iter().map(|fi| (fi.func, fi.inst.0)).collect();
        dead.retain(|fi| {
            !forward.contains(&(fi.func, fi.inst.0))
                && fi.witness.events.iter().any(|ev| {
                    !forward.contains(&(fi.func, ev.inst))
                        && !dead_sites.contains(&(fi.func, ev.inst))
                })
        });
        out.extend(dead);
        out.sort_by(|a, b| {
            b.est_cycles_saved
                .cmp(&a.est_cycles_saved)
                .then_with(|| a.function.cmp(&b.function))
                .then_with(|| a.inst.cmp(&b.inst))
        });
        Ok(out)
    }

    // ---- dataflow ---------------------------------------------------------

    fn block_states(&self, f: FuncId, cfg: &Cfg) -> Vec<RState> {
        let func = self.m.function(f);
        let mut input: Vec<RState> = vec![RState::default(); func.block_count()];
        input[func.entry().0 as usize] = RState::entry();
        let rpo: Vec<pmir::BlockId> = cfg.reverse_postorder().to_vec();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if !input[b.0 as usize].reached {
                    continue;
                }
                let mut state = input[b.0 as usize].clone();
                let mut res = Resolver::new(func);
                for &i in &func.block(b).insts {
                    self.transfer_inst(f, i, &mut state, &mut res, None);
                }
                for &s in cfg.succs(b) {
                    changed |= input[s.0 as usize].join(&state);
                }
            }
        }
        input
    }

    fn emit_function(&self, f: FuncId, out: &mut Vec<Finding>) {
        let func = self.m.function(f);
        let cfg = Cfg::of(func);
        let input = self.block_states(f, &cfg);
        for &b in cfg.reverse_postorder() {
            if !input[b.0 as usize].reached {
                continue;
            }
            let mut state = input[b.0 as usize].clone();
            let mut res = Resolver::new(func);
            for &i in &func.block(b).insts {
                self.transfer_inst(f, i, &mut state, &mut res, Some(out));
            }
        }
    }

    // ---- transfer ---------------------------------------------------------

    fn transfer_inst(
        &self,
        f: FuncId,
        i: InstId,
        state: &mut RState,
        res: &mut Resolver<'_>,
        mut sink: Option<&mut Vec<Finding>>,
    ) {
        let func = self.m.function(f);
        match &func.inst(i).op {
            op if op.is_pm_storeish() => {
                let (addr, len) = match op {
                    Op::Store { ty, addr, .. } => (*addr, Some(ty.size())),
                    Op::Memcpy { dst, len, .. } | Op::Memset { dst, len, .. } => {
                        (*dst, const_of(*len).and_then(|c| u64::try_from(c).ok()))
                    }
                    _ => unreachable!("is_pm_storeish covers these"),
                };
                self.kill_for_store(f, addr, len, state, res);
                if self.may_be_pm(f, addr) {
                    state.unordered = true;
                }
            }
            Op::Flush { kind, addr } => {
                let loc = res.resolve(*addr);
                let pts = self.pts_of(f, *addr);
                let weak = kind.is_weakly_ordered();
                let line = loc.offset.map(|o| Loc {
                    base: loc.base.clone(),
                    offset: Some(o.div_euclid(64) * 64),
                });
                if let (Some(line), Some(sink)) = (&line, sink.as_deref_mut()) {
                    self.check_flush(f, i, *addr, line, weak, state, sink);
                }
                match line {
                    Some(line) => {
                        let ev = self.event(WitnessRole::Flush, f, i);
                        let level = if weak { Level::Flushed } else { Level::Durable };
                        match state.lines.get_mut(&line) {
                            Some(fact) => {
                                fact.level = fact.level.max(level);
                                fact.pts.extend(pts.iter().copied());
                                fact.push_event(ev);
                                if weak && fact.level == Level::Durable {
                                    // A weak flush of an already-durable
                                    // line is a no-op: the next fence has
                                    // nothing new to order.
                                } else if weak {
                                    state.unordered = true;
                                }
                            }
                            None => {
                                state.lines.insert(
                                    line,
                                    LineFact {
                                        level,
                                        pts,
                                        events: vec![ev],
                                    },
                                );
                                if weak {
                                    state.unordered = true;
                                }
                            }
                        }
                    }
                    None => {
                        // Unknown offset (range-flush loop): tracked lines
                        // only get *more* durable, nothing to kill; but the
                        // fence may-bit must rise if the target may be PM.
                        if weak && self.may_be_pm(f, *addr) {
                            state.unordered = true;
                        }
                    }
                }
            }
            Op::Fence { .. } => {
                if let Some(sink) = sink.as_mut() {
                    self.check_fence(f, i, state, sink);
                }
                let ev = self.event(WitnessRole::Fence, f, i);
                for fact in state.lines.values_mut() {
                    if fact.level == Level::Flushed {
                        fact.level = Level::Durable;
                        fact.push_event(ev.clone());
                    }
                }
                state.unordered = false;
                state.last_fences = vec![ev];
            }
            Op::Call { callee, args } => {
                self.apply_call(f, i, *callee, args, state, res);
            }
            _ => {}
        }
    }

    /// Kills every tracked line a store may overlap. A line survives only
    /// with a *proof* of disjointness: same structural base with disjoint
    /// line-rounded intervals, or disjoint non-empty points-to sets.
    fn kill_for_store(
        &self,
        f: FuncId,
        addr: Operand,
        len: Option<u64>,
        state: &mut RState,
        res: &mut Resolver<'_>,
    ) {
        let sl = res.resolve(addr);
        let sp = self.pts_of(f, addr);
        state.lines.retain(|line, fact| {
            if line.base == sl.base {
                if let (Some(lo), Some(so)) = (line.offset, sl.offset) {
                    let n = len.unwrap_or(0).max(1) as i64;
                    // Store interval [so, so+n) vs line [lo, lo+64), only
                    // when the store length is known.
                    if len.is_some() && (so + n <= lo || so >= lo + 64) {
                        return true;
                    }
                }
                return false;
            }
            // Distinct bases prove nothing by themselves (unlike the
            // optimistic direction in pmstatic): require points-to
            // disjointness.
            !sp.is_empty() && !fact.pts.is_empty() && sp.is_disjoint(&fact.pts)
        });
    }

    fn apply_call(
        &self,
        f: FuncId,
        i: InstId,
        callee: FuncId,
        args: &[Operand],
        state: &mut RState,
        res: &mut Resolver<'_>,
    ) {
        let me = &self.may[&callee];
        // 1. Kill what the callee may overwrite.
        match &me.writes {
            None => state.lines.clear(),
            Some(w) if !w.is_empty() => {
                state
                    .lines
                    .retain(|_, fact| !fact.pts.is_empty() && fact.pts.is_disjoint(w));
            }
            Some(_) => {}
        }
        // 2. A guaranteed fence inside the callee orders every flush that
        //    preceded the call.
        let summary = self.checker.summary(callee);
        if summary.fences_all_paths {
            let ev = self.event(WitnessRole::CalleeEffect, f, i);
            for fact in state.lines.values_mut() {
                if fact.level == Level::Flushed {
                    fact.level = Level::Durable;
                    fact.push_event(ev.clone());
                }
            }
        }
        // 3. Re-introduce the lines the callee provably leaves flushed or
        //    durable at return — its own exit state, rebased into this
        //    frame (bounded; callee-local anchors fail to rebase and drop
        //    out, which is the sound direction).
        if let Some(exit) = self.exit.get(&callee) {
            let ret = self.m.function(f).inst(i).result;
            let ev = self.event(WitnessRole::CalleeEffect, f, i);
            let mut inserted: i64 = 0;
            for (loc, eff) in &exit.lines {
                if inserted >= CALLEE_EFFECT_LINES {
                    break;
                }
                let Some(rb) = rebase(loc, args, ret, res) else {
                    continue;
                };
                let Some(off) = rb.offset else { continue };
                let line = Loc {
                    base: rb.base,
                    offset: Some(off.div_euclid(64) * 64),
                };
                inserted += 1;
                match state.lines.get_mut(&line) {
                    Some(fact) => {
                        fact.level = fact.level.max(eff.level);
                        fact.pts.extend(eff.pts.iter().copied());
                        fact.push_event(ev.clone());
                    }
                    None => {
                        let mut fact = eff.clone();
                        fact.push_event(ev.clone());
                        state.lines.insert(line, fact);
                    }
                }
            }
        }
        // 4. The fence may-bit rises whenever the callee may do PM work.
        if me.touches_pm {
            state.unordered = true;
        }
    }

    // ---- backward dead-flush pass -----------------------------------------

    /// Emits the dead flushes of `f`: weak flushes whose line is provably
    /// flushed again before the next fence, call, crashpoint, or return on
    /// every outgoing path. Computed as a backward must fixpoint from ⊥
    /// (loop-carried coverage is dropped — the sound direction).
    fn emit_dead_flushes(&self, f: FuncId, out: &mut Vec<Finding>) {
        let func = self.m.function(f);
        let cfg = Cfg::of(func);
        let slot_stores = syntactic_slot_stores(func);
        let mut input: Vec<ReflushMap> = vec![ReflushMap::new(); func.block_count()];
        // Postorder so most successors are computed before their
        // predecessors; iterate to a fixpoint for loops.
        let po: Vec<pmir::BlockId> = cfg.reverse_postorder().iter().rev().copied().collect();
        loop {
            let mut changed = false;
            for &b in &po {
                let s = self.dead_flow_block(f, func, b, &cfg, &slot_stores, &input, None);
                if s != input[b.0 as usize] {
                    input[b.0 as usize] = s;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for &b in cfg.reverse_postorder() {
            self.dead_flow_block(f, func, b, &cfg, &slot_stores, &input, Some(out));
        }
    }

    /// One backward transfer of block `b`: meet (key intersection) over
    /// the successors' in-states, then the instructions in reverse.
    #[allow(clippy::too_many_arguments)]
    fn dead_flow_block(
        &self,
        f: FuncId,
        func: &Function,
        b: pmir::BlockId,
        cfg: &Cfg,
        slot_stores: &HashMap<ValueId, Vec<Operand>>,
        input: &[ReflushMap],
        mut sink: Option<&mut Vec<Finding>>,
    ) -> ReflushMap {
        let mut state = ReflushMap::new();
        for (k, &s) in cfg.succs(b).iter().enumerate() {
            let succ = &input[s.0 as usize];
            if k == 0 {
                state = succ.clone();
                continue;
            }
            state.retain(|key, _| succ.contains_key(key));
            for (key, evs) in state.iter_mut() {
                for ev in &succ[key] {
                    if !evs.contains(ev) {
                        evs.push(ev.clone());
                    }
                }
                if evs.len() > WITNESS_CAP {
                    evs.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
                    evs.truncate(WITNESS_CAP);
                }
            }
        }
        let mut res = Resolver::new(func);
        for &i in func.block(b).insts.iter().rev() {
            match &func.inst(i).op {
                Op::Flush { kind, addr } => {
                    let mut seen = HashSet::new();
                    let Some(line) = sym_line(func, slot_stores, &mut res, &mut seen, *addr) else {
                        continue;
                    };
                    if kind.is_weakly_ordered() {
                        if let (Some(evs), Some(sink)) = (state.get(&line), sink.as_deref_mut()) {
                            let score = addr
                                .as_value()
                                .map(|v| self.marking.score(self.checker.alias(), f, v))
                                .unwrap_or(0);
                            sink.push(Finding {
                                kind: FindingKind::CoalescableFlush,
                                function: func.name().to_string(),
                                func: f,
                                inst: i,
                                loc: self.trace_loc(f, i),
                                line: line.as_loc(),
                                witness: Witness {
                                    claim: "the line is flushed again before the next fence \
                                            on every path; the flushes coalesce into the later one"
                                        .to_string(),
                                    events: evs.clone(),
                                },
                                est_cycles_saved: self.cost.flush_issue,
                                score,
                            });
                        }
                    }
                    // Any flush (weak or strong) covers the line for
                    // everything earlier.
                    let ev = self.event(WitnessRole::Flush, f, i);
                    let evs = state.entry(line).or_default();
                    if !evs.contains(&ev) {
                        evs.push(ev);
                        if evs.len() > WITNESS_CAP {
                            evs.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
                            evs.truncate(WITNESS_CAP);
                        }
                    }
                }
                // A fence makes earlier flushes observable; a call may
                // fence or crash inside; a crashpoint or return is an
                // observation point of its own.
                Op::Fence { .. } | Op::Call { .. } | Op::CrashPoint | Op::Ret { .. } => {
                    state.clear();
                }
                _ => {}
            }
        }
        state
    }

    // ---- findings ---------------------------------------------------------

    fn event(&self, role: WitnessRole, f: FuncId, i: InstId) -> WitnessEvent {
        let func = self.m.function(f);
        WitnessEvent {
            role,
            function: func.name().to_string(),
            inst: i.0,
            loc: self.trace_loc(f, i),
        }
    }

    fn trace_loc(&self, f: FuncId, i: InstId) -> Option<TraceLoc> {
        let func = self.m.function(f);
        func.inst(i).loc.map(|l| TraceLoc {
            file: self.m.file_name(l.file).to_string(),
            line: l.line,
            col: l.col,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn check_flush(
        &self,
        f: FuncId,
        i: InstId,
        addr: Operand,
        line: &Loc,
        weak: bool,
        state: &RState,
        sink: &mut Vec<Finding>,
    ) {
        let Some(fact) = state.lines.get(line) else {
            return;
        };
        let (kind, claim) = match fact.level {
            Level::Durable => (
                FindingKind::RedundantFlush,
                "the flushed line is durable on every path reaching this flush",
            ),
            // Only a *weak* re-flush of a pending line coalesces; a strong
            // flush of a pending line still forces the write-back
            // synchronously and must stay.
            Level::Flushed if weak => (
                FindingKind::CoalescableFlush,
                "the line is already flushed on every path and no store intervenes",
            ),
            Level::Flushed => return,
        };
        let score = addr
            .as_value()
            .map(|v| self.marking.score(self.checker.alias(), f, v))
            .unwrap_or(0);
        sink.push(Finding {
            kind,
            function: self.m.function(f).name().to_string(),
            func: f,
            inst: i,
            loc: self.trace_loc(f, i),
            line: Some(line.clone()),
            witness: Witness {
                claim: claim.to_string(),
                events: fact.events.clone(),
            },
            est_cycles_saved: self.cost.flush_issue,
            score,
        });
    }

    fn check_fence(&self, f: FuncId, i: InstId, state: &RState, sink: &mut Vec<Finding>) {
        if state.unordered {
            return;
        }
        let func = self.m.function(f);
        let est = match &func.inst(i).op {
            Op::Fence {
                kind: FenceKind::Mfence,
            } => self.cost.mfence_base,
            _ => self.cost.sfence_base,
        };
        sink.push(Finding {
            kind: FindingKind::SinkableFence,
            function: func.name().to_string(),
            func: f,
            inst: i,
            loc: self.trace_loc(f, i),
            line: None,
            witness: Witness {
                claim: "no persistent store or flush since the previous fence on any path"
                    .to_string(),
                events: state.last_fences.clone(),
            },
            est_cycles_saved: est,
            score: 0,
        });
    }
}

/// Convenience wrapper: analyze `m` and report the findings reachable from
/// `entry`.
///
/// # Errors
///
/// Fails when `entry` names no function.
pub fn analyze_module(m: &Module, entry: &str) -> Result<Vec<Finding>, RedundError> {
    RedundAnalysis::new(m).findings(entry)
}
