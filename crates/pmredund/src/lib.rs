//! `pmredund` — proof-carrying redundant-flush/fence analysis and the
//! "inverse Hippocrates" optimizer.
//!
//! Hippocrates only ever *inserts* flushes and fences, so a healed module
//! is correct but often slower than it needs to be. This crate is the
//! dual: a flow-sensitive **must**-durability analysis over [`pmir`] CFGs
//! that computes, per program point, the set of cache lines already
//! durable on every incoming path (structural addresses from
//! [`pmstatic`], may/must aliasing from [`pmalias`], interprocedural
//! precision from the converged bottom-up function summaries), and emits
//! proof-carrying findings:
//!
//! - [`FindingKind::RedundantFlush`] — the flushed line is durable on all
//!   paths; the flush changes no crash state.
//! - [`FindingKind::CoalescableFlush`] — the line is already flushed (not
//!   yet fenced) with no intervening store, or — the backward direction —
//!   provably flushed again before the next fence on every path; the two
//!   flushes coalesce.
//! - [`FindingKind::SinkableFence`] — no persistent store or flush since
//!   the previous fence on any path; the fence orders nothing.
//!
//! Every finding carries the happens-before [`Witness`] that justifies it
//! and an estimated cycle payoff under the calibrated cost model. The
//! [`optimize_module`] pass applies findings as [`pmir::ModulePatch`]
//! transactional rounds — commit only when re-verification with
//! [`pmcheck`] and [`pmexplore`] shows zero new bugs and byte-identical
//! output, byte-identical rollback plus quarantine otherwise — so an
//! unsound optimization can never ship, mirroring the repair engine's
//! do-no-harm contract in the opposite direction.
//!
//! # Example
//!
//! ```
//! use pmredund::{analyze_module, FindingKind};
//!
//! // The second clwb hits a line the first clwb + sfence already made
//! // durable; the analysis proves it and says why.
//! let m = pmlang::compile_one(
//!     "demo.pmc",
//!     r#"
//!     fn main() {
//!         var p: ptr = pmem_map(0, 4096);
//!         store8(p, 0, 1);
//!         clwb(p);
//!         sfence();
//!         clwb(p);
//!         sfence();
//!     }
//!     "#,
//! )
//! .unwrap();
//! let findings = analyze_module(&m, "main").unwrap();
//! assert!(findings
//!     .iter()
//!     .any(|f| f.kind == FindingKind::RedundantFlush));
//! assert!(findings
//!     .iter()
//!     .all(|f| !f.witness.events.is_empty() || !f.witness.claim.is_empty()));
//! ```

pub mod analyze;
pub mod finding;
pub mod optimize;

pub use analyze::{analyze_module, RedundAnalysis, RedundError};
pub use finding::{Finding, FindingKind, Witness, WitnessEvent, WitnessRole};
pub use optimize::{
    apply_findings, optimize_module, AppliedOpt, OptimizeError, OptimizeOptions, OptimizeOutcome,
    QuarantinedOpt,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> pmir::Module {
        pmlang::compile_one("t.pmc", src).unwrap()
    }

    fn kinds(src: &str) -> Vec<FindingKind> {
        let m = compile(src);
        analyze_module(&m, "main")
            .unwrap()
            .into_iter()
            .map(|f| f.kind)
            .collect()
    }

    #[test]
    fn duplicate_flush_after_fence_is_redundant() {
        let ks = kinds(
            r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                sfence();
                clwb(p);
                sfence();
            }
            "#,
        );
        assert!(ks.contains(&FindingKind::RedundantFlush), "{ks:?}");
    }

    #[test]
    fn double_flush_without_fence_coalesces() {
        let ks = kinds(
            r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                clwb(p);
                sfence();
            }
            "#,
        );
        assert!(ks.contains(&FindingKind::CoalescableFlush), "{ks:?}");
    }

    #[test]
    fn back_to_back_fence_is_sinkable() {
        let ks = kinds(
            r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                sfence();
                sfence();
            }
            "#,
        );
        assert_eq!(
            ks.iter()
                .filter(|k| **k == FindingKind::SinkableFence)
                .count(),
            1,
            "exactly the second fence sinks: {ks:?}"
        );
    }

    #[test]
    fn same_line_flush_train_coalesces_backward() {
        // One flush per store of the same line (exactly the shape the
        // repair engine emits): the first clwb is dead — the line is
        // flushed again before the fence, and the later clwb persists
        // both stores.
        let m = compile(
            r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                store8(p, 8, 2);
                clwb(p + 8);
                sfence();
            }
            "#,
        );
        let fs = analyze_module(&m, "main").unwrap();
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].kind, FindingKind::CoalescableFlush);
        assert!(
            fs[0]
                .witness
                .events
                .iter()
                .any(|e| e.role == WitnessRole::Flush),
            "witness must name the covering later flush: {:?}",
            fs[0].witness
        );
    }

    #[test]
    fn runtime_base_flush_train_coalesces_but_distinct_runtime_bases_do_not() {
        // `e = p + k` with a runtime k: the +0/+8 train on `e` coalesces
        // (same symbolic hop), but a flush through a *different* runtime
        // offset never covers it.
        let ks = kinds(
            r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                var k: int = load8(p, 1024);
                var e: ptr = p + k;
                store8(e, 0, 1);
                clwb(e);
                store8(e, 8, 2);
                clwb(e + 8);
                sfence();
            }
            "#,
        );
        assert_eq!(ks, vec![FindingKind::CoalescableFlush], "{ks:?}");
        let ks = kinds(
            r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                var k: int = load8(p, 1024);
                var j: int = load8(p, 1032);
                store8(p + k, 0, 1);
                clwb(p + k);
                store8(p + j, 0, 2);
                clwb(p + j);
                sfence();
            }
            "#,
        );
        assert!(ks.is_empty(), "distinct runtime hops never alias: {ks:?}");
    }

    #[test]
    fn intervening_store_blocks_everything() {
        let ks = kinds(
            r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                sfence();
                store8(p, 8, 2);
                clwb(p);
                sfence();
            }
            "#,
        );
        assert!(ks.is_empty(), "the second store dirties the line: {ks:?}");
    }

    #[test]
    fn store_to_provably_disjoint_line_keeps_durability() {
        // The second store hits line 1 (offset 64); line 0 stays durable,
        // so the re-flush of line 0 is still redundant.
        let ks = kinds(
            r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                sfence();
                store8(p, 64, 2);
                clwb(p);
                clwb(p + 64);
                sfence();
            }
            "#,
        );
        assert!(ks.contains(&FindingKind::RedundantFlush), "{ks:?}");
    }

    #[test]
    fn conditional_path_without_flush_blocks_the_finding() {
        // On the else path the line is never flushed: the join drops it,
        // and the final clwb is load-bearing.
        let ks = kinds(
            r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                var c: int = load8(p, 512);
                store8(p, 0, 1);
                if (c) { clwb(p); sfence(); }
                clwb(p);
                sfence();
            }
            "#,
        );
        assert!(
            !ks.contains(&FindingKind::RedundantFlush)
                && !ks.contains(&FindingKind::CoalescableFlush),
            "{ks:?}"
        );
    }

    #[test]
    fn callee_fence_promotes_pending_lines() {
        // persist() fences on all paths: the line flushed before the call
        // is durable after it, so the re-flush is redundant.
        let ks = kinds(
            r#"
            fn persist(q: ptr) { clwb(q); sfence(); }
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                persist(p + 128);
                clwb(p);
                sfence();
            }
            "#,
        );
        assert!(ks.contains(&FindingKind::RedundantFlush), "{ks:?}");
    }

    #[test]
    fn callee_must_flush_effect_reaches_the_caller() {
        // persist(p) flushes and fences p's line; the caller's own clwb(p)
        // afterwards is provably redundant, interprocedurally.
        let ks = kinds(
            r#"
            fn persist(q: ptr) { clwb(q); sfence(); }
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                persist(p);
                clwb(p);
                sfence();
            }
            "#,
        );
        assert!(ks.contains(&FindingKind::RedundantFlush), "{ks:?}");
    }

    #[test]
    fn calls_that_may_store_kill_tracked_lines() {
        let ks = kinds(
            r#"
            fn scribble(q: ptr) { store8(q, 0, 9); }
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                sfence();
                scribble(p);
                clwb(p);
                sfence();
            }
            "#,
        );
        assert!(
            !ks.contains(&FindingKind::RedundantFlush),
            "the callee stores to the same object: {ks:?}"
        );
    }

    #[test]
    fn findings_carry_witnesses_and_estimates() {
        let m = compile(
            r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                sfence();
                clwb(p);
                sfence();
            }
            "#,
        );
        let fs = analyze_module(&m, "main").unwrap();
        let rf = fs
            .iter()
            .find(|f| f.kind == FindingKind::RedundantFlush)
            .expect("redundant flush finding");
        assert!(!rf.witness.claim.is_empty());
        assert!(
            rf.witness
                .events
                .iter()
                .any(|e| e.role == WitnessRole::Flush),
            "witness must name the covering flush: {:?}",
            rf.witness
        );
        assert!(
            rf.witness
                .events
                .iter()
                .any(|e| e.role == WitnessRole::Fence),
            "witness must name the ordering fence: {:?}",
            rf.witness
        );
        assert!(rf.est_cycles_saved > 0);
    }

    #[test]
    fn optimize_removes_and_verifies() {
        let mut m = compile(
            r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                sfence();
                clwb(p);
                sfence();
                print(load8(p, 0));
            }
            "#,
        );
        let before = pmir::snapshot::digest_hex(&m);
        let out = optimize_module(&mut m, &OptimizeOptions::default()).unwrap();
        assert!(out.flushes_removed() >= 1, "{out}");
        assert!(out.fences_sunk() >= 1, "{out}");
        assert!(out.quarantined.is_empty(), "{out}");
        assert_ne!(pmir::snapshot::digest_hex(&m), before);
        // The optimized module is still clean and behaves identically.
        let checked = pmcheck::run_and_check(&m, "main", pmvm::VmOptions::default()).unwrap();
        assert!(checked.report.is_clean());
        assert_eq!(checked.run.output, vec![1]);
        // And every committed removal carries a witness.
        assert!(out
            .applied
            .iter()
            .all(|a| !a.finding.witness.claim.is_empty()));
    }

    #[test]
    fn unsound_forced_removal_rolls_back_and_quarantines() {
        // Hand the applier the *load-bearing* flush: re-verification must
        // reject it, restore the module byte-identically, and quarantine.
        let mut m = compile(
            r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                sfence();
                crashpoint();
                print(load8(p, 0));
            }
            "#,
        );
        let f = m.function_by_name("main").unwrap();
        let func = m.function(f);
        let flush = func
            .linked_insts()
            .find_map(|(_, i)| match func.inst(i).op {
                pmir::Op::Flush { .. } => Some(i),
                _ => None,
            })
            .expect("the load-bearing flush");
        let forced = Finding {
            kind: FindingKind::RedundantFlush,
            function: "main".to_string(),
            func: f,
            inst: flush,
            loc: None,
            line: None,
            witness: Witness::default(),
            est_cycles_saved: 6,
            score: 0,
        };
        let before = pmir::snapshot::ModuleSnapshot::capture(&m);
        let out = apply_findings(&mut m, vec![forced], &OptimizeOptions::default()).unwrap();
        assert!(before.matches(&m), "rollback must be byte-identical");
        assert_eq!(out.applied.len(), 0);
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(out.rounds_rolled_back, 1);
    }
}
