//! Proof-carrying optimization findings.
//!
//! Every finding names one removable instruction and carries the
//! happens-before *witness* that justifies the removal: the chain of
//! store/flush/fence events (with source locations) that already made the
//! affected cache line durable — or, for a fence, the preceding fence since
//! which no persistent-memory work happened. The witness is what a reviewer
//! (or the lint renderer) reads; the transactional optimizer additionally
//! re-verifies every applied round with the dynamic checker and the
//! crash-state explorer, so a wrong witness can never ship.

use pmir::{FuncId, InstId};
use pmstatic::Loc;
use pmtrace::TraceLoc;

/// What kind of removable instruction a finding names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingKind {
    /// A flush of a cache line that is already durable on every incoming
    /// path: removing it changes no crash state.
    RedundantFlush,
    /// A weakly-ordered flush that coalesces with another flush of the
    /// same line: either the line is already flushed (but not yet fenced)
    /// on every incoming path with no intervening store, or it is provably
    /// flushed *again* before the next fence on every outgoing path — a
    /// weak flush only matters at the next fence, and there the other
    /// flush covers the line.
    CoalescableFlush,
    /// A fence with no preceding unflushed persistent-memory work on any
    /// path since the last fence: it orders nothing and sinks into its
    /// predecessor.
    SinkableFence,
}

impl std::fmt::Display for FindingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FindingKind::RedundantFlush => "redundant flush",
            FindingKind::CoalescableFlush => "coalescable flush",
            FindingKind::SinkableFence => "sinkable fence",
        })
    }
}

/// The role one event plays in a happens-before witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WitnessRole {
    /// The store whose line the witness argues about.
    Store,
    /// A flush that already covered the line.
    Flush,
    /// A fence that ordered an earlier flush (made the line durable).
    Fence,
    /// A callee's summarized flush/fence effect, attributed to the call.
    CalleeEffect,
}

impl std::fmt::Display for WitnessRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WitnessRole::Store => "store",
            WitnessRole::Flush => "flush",
            WitnessRole::Fence => "fence",
            WitnessRole::CalleeEffect => "callee effect",
        })
    }
}

/// One event in a happens-before witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessEvent {
    /// What the event did.
    pub role: WitnessRole,
    /// Function containing the event instruction.
    pub function: String,
    /// The event instruction (id within its function).
    pub inst: u32,
    /// Source location, when the front end attached one.
    pub loc: Option<TraceLoc>,
}

impl WitnessEvent {
    /// Deterministic ordering key (source locations excluded: they mirror
    /// the instruction identity).
    pub fn sort_key(&self) -> (&str, u32, WitnessRole) {
        (&self.function, self.inst, self.role)
    }
}

impl std::fmt::Display for WitnessEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {}#%{}", self.role, self.function, self.inst)?;
        if let Some(l) = &self.loc {
            write!(f, " ({}:{}:{})", l.file, l.line, l.col)?;
        }
        Ok(())
    }
}

/// The happens-before argument attached to a finding.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Witness {
    /// One-line statement of what the events prove.
    pub claim: String,
    /// The events, in happens-before order where meaningful (joins merge
    /// per-path chains, so the order is best-effort across branches).
    pub events: Vec<WitnessEvent>,
}

/// One removable instruction, with its proof and its estimated payoff.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// What can be removed and why.
    pub kind: FindingKind,
    /// Name of the containing function.
    pub function: String,
    /// The containing function.
    pub func: FuncId,
    /// The removable flush/fence instruction.
    pub inst: InstId,
    /// Source location of that instruction, when known.
    pub loc: Option<TraceLoc>,
    /// The structural cache line the finding argues about (`None` for
    /// fences).
    pub line: Option<Loc>,
    /// The happens-before witness justifying the removal.
    pub witness: Witness,
    /// Estimated cycles saved per execution of the instruction, under the
    /// calibrated cost model.
    pub est_cycles_saved: u64,
    /// The pmalias marking score of the flushed pointer (0 for fences):
    /// higher means the analysis is more confident the pointer is the
    /// persistent object it looks like.
    pub score: i64,
}

impl Finding {
    /// Stable identity of the targeted instruction (`function#inst`), the
    /// key quarantine entries are tracked under.
    pub fn site_key(&self) -> String {
        format!("{}#{}", self.function, self.inst.0)
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} in `{}` (%{})", self.kind, self.function, self.inst.0)?;
        if let Some(l) = &self.loc {
            write!(f, " at {}:{}:{}", l.file, l.line, l.col)?;
        }
        write!(f, ", ~{} cycles", self.est_cycles_saved)
    }
}
