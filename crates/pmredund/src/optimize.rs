//! The transactional optimizer: applies redundancy findings as
//! [`ModulePatch`]-backed rounds, committing only when re-verification with
//! the dynamic checker **and** the crash-state explorer shows no new bug
//! and byte-identical program output — the inverse of the Hippocrates
//! repair loop, under the same do-no-harm contract.
//!
//! A round that fails re-verification rolls back byte-identically (the
//! snapshot restore is asserted against the captured text) and is bisected:
//! halves retry independently, and a single finding that cannot survive
//! verification lands in quarantine, keyed by its instruction, so later
//! analysis rounds never retry it.

use crate::analyze::{analyze_module, RedundError};
use crate::finding::{Finding, FindingKind};
use pmcheck::CheckReport;
use pmir::snapshot::{ModulePatch, ModuleSnapshot};
use pmir::verify::verify_module;
use pmir::{rewrite, Module, Op};
use pmvm::VmOptions;
use std::collections::{BTreeMap, HashSet};

/// Knobs for [`optimize_module`].
#[derive(Debug, Clone)]
pub struct OptimizeOptions {
    /// Entry function executed for re-verification.
    pub entry: String,
    /// Crash-state budget per exploration re-verify.
    pub explore_budget: usize,
    /// Exploration seed.
    pub explore_seed: u64,
    /// Exploration worker threads.
    pub explore_jobs: usize,
    /// Analysis rounds: removals cascade (a sunk fence exposes the next),
    /// so the module is re-analyzed after each committed batch until no
    /// fresh finding remains or the cap is hit.
    pub max_rounds: usize,
    /// Observability handle for `opt.*` counters and spans.
    pub obs: pmobs::Obs,
    /// Execution tier for re-verification runs (tiers are
    /// result-identical; this only changes how fast verification goes).
    pub tier: pmvm::ExecTier,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            entry: "main".to_string(),
            explore_budget: 128,
            explore_seed: 0,
            explore_jobs: 1,
            max_rounds: 4,
            obs: pmobs::Obs::default(),
            tier: pmvm::ExecTier::default(),
        }
    }
}

/// A failure to optimize. Per-finding verification failures are *not*
/// errors — they roll back and quarantine; this covers the baseline run
/// itself failing or an invalid entry.
#[derive(Debug)]
pub enum OptimizeError {
    /// The redundancy analysis could not run.
    Analyze(RedundError),
    /// The baseline execution of the unmodified module failed.
    Baseline(String),
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizeError::Analyze(e) => write!(f, "optimize: {e}"),
            OptimizeError::Baseline(e) => {
                write!(f, "optimize: baseline run failed: {e}")
            }
        }
    }
}

impl std::error::Error for OptimizeError {}

/// One committed optimization.
#[derive(Debug, Clone)]
pub struct AppliedOpt {
    /// The finding that was applied (with its witness).
    pub finding: Finding,
    /// Which analysis round committed it (1-based).
    pub round: u64,
}

/// One optimization that failed re-verification and was rolled back.
#[derive(Debug, Clone)]
pub struct QuarantinedOpt {
    /// The finding that could not ship.
    pub finding: Finding,
    /// Why verification rejected it.
    pub reason: String,
}

/// What [`optimize_module`] did.
#[derive(Debug, Clone, Default)]
pub struct OptimizeOutcome {
    /// Every committed removal, with its witness, in commit order.
    pub applied: Vec<AppliedOpt>,
    /// Findings that failed re-verification and were rolled back.
    pub quarantined: Vec<QuarantinedOpt>,
    /// Transactional rounds committed.
    pub rounds_committed: u64,
    /// Transactional rounds rolled back (including bisection steps).
    pub rounds_rolled_back: u64,
    /// Total findings the analysis produced across all rounds.
    pub findings_seen: u64,
    /// Estimated cycles saved per pass over the removed instructions,
    /// under the calibrated cost model.
    pub est_cycles_saved: u64,
    /// The committed patches, in order (replayable via
    /// [`ModulePatch::apply`]).
    pub patches: Vec<ModulePatch>,
}

impl OptimizeOutcome {
    /// Committed flush removals (redundant + coalescable).
    pub fn flushes_removed(&self) -> u64 {
        self.applied
            .iter()
            .filter(|a| {
                matches!(
                    a.finding.kind,
                    FindingKind::RedundantFlush | FindingKind::CoalescableFlush
                )
            })
            .count() as u64
    }

    /// Committed fence sinks.
    pub fn fences_sunk(&self) -> u64 {
        self.applied
            .iter()
            .filter(|a| a.finding.kind == FindingKind::SinkableFence)
            .count() as u64
    }
}

impl std::fmt::Display for OptimizeOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "removed {} flushes, sank {} fences (~{} cycles/pass saved), \
             {} committed / {} rolled back, {} quarantined",
            self.flushes_removed(),
            self.fences_sunk(),
            self.est_cycles_saved,
            self.rounds_committed,
            self.rounds_rolled_back,
            self.quarantined.len(),
        )
    }
}

/// The do-no-harm reference the optimizer verifies every round against.
struct Baseline {
    /// Observable output of the unmodified module.
    output: Vec<i64>,
    /// Worst bug severity per store site (dynamic check + exploration),
    /// `pmcheck::BugKind::repair_rank` ranked. Optimizing a still-buggy
    /// module is allowed — it just must not add or worsen a site.
    site_sevs: BTreeMap<String, u32>,
}

fn site_sevs(reports: &[&CheckReport]) -> BTreeMap<String, u32> {
    let mut sevs = BTreeMap::new();
    for report in reports {
        for bug in &report.bugs {
            let key = match &bug.store_at {
                Some(r) => format!("{}#{}", r.function, r.inst),
                None => format!("@addr:{:#x}", bug.addr),
            };
            let rank = bug.kind.repair_rank();
            let e = sevs.entry(key).or_insert(0);
            if rank > *e {
                *e = rank;
            }
        }
    }
    sevs
}

/// Runs check + exploration on the current module and returns the
/// (output, site-severity) pair, or the failure reason.
fn observe(
    m: &Module,
    opts: &OptimizeOptions,
) -> Result<(Vec<i64>, BTreeMap<String, u32>), String> {
    let vm_opts = VmOptions {
        tier: opts.tier,
        ..VmOptions::default()
    };
    let checked =
        pmcheck::run_and_check(m, &opts.entry, vm_opts).map_err(|e| format!("run failed: {e}"))?;
    let x_opts = pmexplore::ExploreOptions {
        budget: opts.explore_budget,
        seed: opts.explore_seed,
        jobs: opts.explore_jobs,
        obs: opts.obs.clone(),
        tier: opts.tier,
        ..Default::default()
    };
    let x = pmexplore::run_and_explore(m, &opts.entry, &x_opts)
        .map_err(|e| format!("exploration run failed: {e}"))?;
    let x_report = x.report.to_check_report(&x.trace);
    Ok((checked.run.output, site_sevs(&[&checked.report, &x_report])))
}

/// Whether the post-removal observation harms the baseline: any new or
/// worsened bug site, or any change in observable output.
fn harms(base: &Baseline, output: &[i64], sevs: &BTreeMap<String, u32>) -> Option<String> {
    if output != base.output {
        return Some("observable output changed".to_string());
    }
    for (site, &rank) in sevs {
        let before = base.site_sevs.get(site).copied().unwrap_or(0);
        if rank > before {
            return Some(format!("new or worsened bug at {site}"));
        }
    }
    None
}

/// Whether `finding` still names a removable (linked, value-free,
/// non-terminator flush/fence) instruction in `m`.
fn removable(m: &Module, finding: &Finding) -> Result<(), String> {
    if finding.func.0 as usize >= m.func_ids().count() {
        return Err("function out of range".to_string());
    }
    let func = m.function(finding.func);
    if func.find_inst_pos(finding.inst).is_none() {
        return Err("instruction is not linked".to_string());
    }
    match &func.inst(finding.inst).op {
        Op::Flush { .. } | Op::Fence { .. } => Ok(()),
        op => Err(format!("not a flush or fence: {op:?}")),
    }
}

/// Applies `findings` to `m` in transactional rounds against `base`:
/// batch-apply, re-verify, commit or roll back byte-identically and bisect.
/// Returns what happened; `m` holds every committed removal.
#[allow(clippy::too_many_arguments)]
fn apply_group(
    m: &mut Module,
    findings: Vec<Finding>,
    base: &Baseline,
    opts: &OptimizeOptions,
    round: u64,
    out: &mut OptimizeOutcome,
) {
    let mut stack = vec![findings];
    while let Some(group) = stack.pop() {
        if group.is_empty() {
            continue;
        }
        // A finding that no longer names a removable instruction (the
        // forced path can hand us anything) is quarantined up front.
        let (group, bad): (Vec<_>, Vec<_>) =
            group.into_iter().partition(|f| removable(m, f).is_ok());
        for f in bad {
            let reason = removable(m, &f).unwrap_err();
            opts.obs.add("opt.quarantined", 1);
            out.quarantined.push(QuarantinedOpt { finding: f, reason });
        }
        if group.is_empty() {
            continue;
        }
        let snapshot = ModuleSnapshot::capture(m);
        for f in &group {
            rewrite::unlink(m.function_mut(f.func), f.inst);
        }
        let failure = verify_module(m)
            .map_err(|e| format!("module verification failed: {e}"))
            .and_then(|()| {
                let (output, sevs) = observe(m, opts)?;
                match harms(base, &output, &sevs) {
                    Some(h) => Err(h),
                    None => Ok(()),
                }
            })
            .err();
        match failure {
            None => {
                out.patches.push(ModulePatch::between(&snapshot, m));
                out.rounds_committed += 1;
                opts.obs.add("opt.rounds_committed", 1);
                for f in group {
                    match f.kind {
                        FindingKind::SinkableFence => opts.obs.add("opt.fences_sunk", 1),
                        _ => opts.obs.add("opt.flushes_removed", 1),
                    }
                    out.est_cycles_saved += f.est_cycles_saved;
                    out.applied.push(AppliedOpt { finding: f, round });
                }
            }
            Some(reason) => {
                snapshot.restore(m);
                assert!(
                    snapshot.matches(m),
                    "rollback must restore the module byte-identically"
                );
                out.rounds_rolled_back += 1;
                opts.obs.add("opt.rounds_rolled_back", 1);
                if group.len() == 1 {
                    let f = group.into_iter().next().expect("len checked");
                    opts.obs.add("opt.quarantined", 1);
                    out.quarantined.push(QuarantinedOpt { finding: f, reason });
                } else {
                    // Bisect: some member of the batch is the harm; retry
                    // the halves independently.
                    let mid = group.len() / 2;
                    let mut group = group;
                    let tail = group.split_off(mid);
                    stack.push(tail);
                    stack.push(group);
                }
            }
        }
    }
}

/// Applies a caller-supplied finding list through the same transactional
/// verify/rollback/quarantine machinery as [`optimize_module`] — one
/// analysis round's worth. This is the building block the do-no-harm tests
/// drive with deliberately-unsound findings.
///
/// # Errors
///
/// Fails when the baseline run of the unmodified module fails.
pub fn apply_findings(
    m: &mut Module,
    findings: Vec<Finding>,
    opts: &OptimizeOptions,
) -> Result<OptimizeOutcome, OptimizeError> {
    let (output, sevs) = observe(m, opts).map_err(OptimizeError::Baseline)?;
    let base = Baseline {
        output,
        site_sevs: sevs,
    };
    let mut out = OptimizeOutcome {
        findings_seen: findings.len() as u64,
        ..Default::default()
    };
    apply_group(m, findings, &base, opts, 1, &mut out);
    opts.obs
        .gauge("opt.est_cycles_saved", out.est_cycles_saved as f64);
    Ok(out)
}

/// Analyzes `m`, removes every redundancy finding that survives
/// re-verification (dynamic check + crash-state exploration, byte-identical
/// output), and re-analyzes until no fresh finding remains. Every committed
/// removal carries its happens-before witness in the outcome; a finding
/// that fails verification is rolled back byte-identically and quarantined.
///
/// # Errors
///
/// Fails when `entry` is unknown or the baseline run fails. Verification
/// failures of candidate removals are not errors (see
/// [`OptimizeOutcome::quarantined`]).
pub fn optimize_module(
    m: &mut Module,
    opts: &OptimizeOptions,
) -> Result<OptimizeOutcome, OptimizeError> {
    let _span = opts.obs.span("opt.optimize");
    let (output, sevs) = observe(m, opts).map_err(OptimizeError::Baseline)?;
    let base = Baseline {
        output,
        site_sevs: sevs,
    };
    let mut out = OptimizeOutcome::default();
    let mut quarantined_sites: HashSet<(pmir::FuncId, pmir::InstId)> = HashSet::new();
    for round in 1..=opts.max_rounds as u64 {
        let findings = analyze_module(m, &opts.entry).map_err(OptimizeError::Analyze)?;
        let fresh: Vec<Finding> = findings
            .into_iter()
            .filter(|f| !quarantined_sites.contains(&(f.func, f.inst)))
            .collect();
        if fresh.is_empty() {
            break;
        }
        out.findings_seen += fresh.len() as u64;
        opts.obs.add("opt.findings", fresh.len() as u64);
        let committed_before = out.rounds_committed;
        let quarantined_before = out.quarantined.len();
        apply_group(m, fresh, &base, opts, round, &mut out);
        for q in &out.quarantined[quarantined_before..] {
            quarantined_sites.insert((q.finding.func, q.finding.inst));
        }
        if out.rounds_committed == committed_before {
            // Nothing shipped this round: re-analysis would reproduce the
            // same quarantined set.
            break;
        }
    }
    opts.obs
        .gauge("opt.est_cycles_saved", out.est_cycles_saved as f64);
    Ok(out)
}
