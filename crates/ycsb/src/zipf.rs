//! The zipfian request-distribution generator (Gray et al., as used by
//! YCSB's `ZipfianGenerator`).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Draws values in `1..=n` with zipfian popularity (`theta` typically 0.99).
#[derive(Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    rng: StdRng,
}

impl Zipfian {
    /// Creates a generator over `1..=n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "empty zipfian domain");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the next value in `1..=n`.
    pub fn next_value(&mut self) -> u64 {
        let u: f64 = self.rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 1;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 2;
        }
        let v = 1.0 + (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)).floor();
        (v as u64).clamp(1, self.n)
    }

    /// Grows the domain to `n` (used by insert-heavy workloads). Recomputes
    /// the normalization constants.
    pub fn grow(&mut self, n: u64) {
        if n <= self.n {
            return;
        }
        self.n = n;
        self.zetan = zeta(n, self.theta);
        let zeta2 = zeta(2, self.theta);
        self.eta = (1.0 - (2.0 / n as f64).powf(1.0 - self.theta)) / (1.0 - zeta2 / self.zetan);
    }

    /// The current domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Direct summation; domains here are ≤ a few hundred thousand.
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_item_is_most_popular() {
        let mut z = Zipfian::new(100, 0.99, 1);
        let mut counts = [0u32; 101];
        for _ in 0..20_000 {
            counts[z.next_value() as usize] += 1;
        }
        let max_idx = (1..=100).max_by_key(|&i| counts[i]).unwrap();
        assert_eq!(max_idx, 1);
    }

    #[test]
    fn grow_extends_domain() {
        let mut z = Zipfian::new(10, 0.99, 2);
        z.grow(1000);
        assert_eq!(z.domain(), 1000);
        let mut saw_large = false;
        for _ in 0..5000 {
            if z.next_value() > 10 {
                saw_large = true;
                break;
            }
        }
        assert!(saw_large);
    }

    #[test]
    #[should_panic(expected = "empty zipfian domain")]
    fn zero_domain_panics() {
        let _ = Zipfian::new(0, 0.99, 0);
    }
}
