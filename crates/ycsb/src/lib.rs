//! `ycsb` — the Yahoo! Cloud Serving Benchmark workload generator used by
//! the paper's Redis case study (§6.3, Fig. 4).
//!
//! Implements the six core workloads plus the load phase:
//!
//! | Workload | Mix                      | Request distribution |
//! |----------|--------------------------|----------------------|
//! | Load     | 100 % insert             | sequential           |
//! | A        | 50 % read / 50 % update  | zipfian              |
//! | B        | 95 % read / 5 % update   | zipfian              |
//! | C        | 100 % read               | zipfian              |
//! | D        | 95 % read / 5 % insert   | latest               |
//! | E        | 95 % scan / 5 % insert   | zipfian              |
//! | F        | 50 % read / 50 % RMW     | zipfian              |
//!
//! The zipfian generator follows the classic Gray et al. rejection-free
//! construction used by YCSB itself.

pub mod generator;
pub mod zipf;

pub use generator::{Generator, KvOp, OpKind, Workload};
pub use zipf::Zipfian;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_produce_requested_counts() {
        let g = Generator::new(1000, 500, 64, 42);
        assert_eq!(g.load_ops().len(), 1000);
        for w in Workload::ALL {
            assert_eq!(g.run_ops(w).len(), 500, "{w:?}");
        }
    }

    #[test]
    fn load_is_sequential_inserts() {
        let g = Generator::new(10, 10, 64, 1);
        let ops = g.load_ops();
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.kind, OpKind::Insert);
            assert_eq!(op.key, i as u64 + 1);
        }
    }

    #[test]
    fn workload_mixes_roughly_match() {
        let g = Generator::new(1000, 10_000, 64, 7);
        let ops = g.run_ops(Workload::B);
        let reads = ops.iter().filter(|o| o.kind == OpKind::Read).count();
        let updates = ops.iter().filter(|o| o.kind == OpKind::Update).count();
        assert!(reads > 9_200 && reads < 9_800, "reads={reads}");
        assert_eq!(reads + updates, 10_000);

        let ops = g.run_ops(Workload::C);
        assert!(ops.iter().all(|o| o.kind == OpKind::Read));

        let ops = g.run_ops(Workload::E);
        let scans = ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Scan(_)))
            .count();
        assert!(scans > 9_200, "scans={scans}");

        let ops = g.run_ops(Workload::F);
        let rmw = ops
            .iter()
            .filter(|o| o.kind == OpKind::ReadModifyWrite)
            .count();
        assert!(rmw > 4_500 && rmw < 5_500, "rmw={rmw}");
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let mut z = Zipfian::new(1000, 0.99, 99);
        let mut counts = vec![0u32; 1001];
        for _ in 0..50_000 {
            let v = z.next_value();
            assert!((1..=1000).contains(&v));
            counts[v as usize] += 1;
        }
        // The most popular item should dominate the median item massively.
        let hot = *counts.iter().max().unwrap();
        assert!(hot > 2_000, "zipfian not skewed: hot={hot}");
        assert!(counts[500] < hot / 10);
    }

    #[test]
    fn inserts_extend_the_keyspace() {
        let g = Generator::new(100, 2000, 64, 3);
        let ops = g.run_ops(Workload::D);
        let max_key = ops.iter().map(|o| o.key).max().unwrap();
        assert!(max_key > 100, "D inserts new keys");
        // Reads may target newly inserted ("latest") keys, never key 0.
        assert!(ops.iter().all(|o| o.key >= 1));
    }

    #[test]
    fn deterministic_per_seed() {
        let g1 = Generator::new(100, 100, 64, 5);
        let g2 = Generator::new(100, 100, 64, 5);
        assert_eq!(g1.run_ops(Workload::A), g2.run_ops(Workload::A));
        let g3 = Generator::new(100, 100, 64, 6);
        assert_ne!(g1.run_ops(Workload::A), g3.run_ops(Workload::A));
    }

    #[test]
    fn scan_lengths_bounded() {
        let g = Generator::new(100, 1000, 64, 11);
        for op in g.run_ops(Workload::E) {
            if let OpKind::Scan(n) = op.kind {
                assert!((1..=20).contains(&n));
            }
        }
    }
}
