//! Workload definitions and the operation-stream generator.

use crate::zipf::Zipfian;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A key-value operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Insert a new record.
    Insert,
    /// Read one record.
    Read,
    /// Update (overwrite) one record.
    Update,
    /// Scan this many consecutive records.
    Scan(u64),
    /// Read-modify-write one record.
    ReadModifyWrite,
}

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvOp {
    /// The operation.
    pub kind: OpKind,
    /// Target key (1-based).
    pub key: u64,
}

/// The YCSB core workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// 50/50 read/update, zipfian.
    A,
    /// 95/5 read/update, zipfian.
    B,
    /// Read-only, zipfian.
    C,
    /// 95/5 read/insert, latest.
    D,
    /// 95/5 scan/insert, zipfian.
    E,
    /// 50/50 read/read-modify-write, zipfian.
    F,
}

impl Workload {
    /// All six, in Fig. 4 order.
    pub const ALL: [Workload; 6] = [
        Workload::A,
        Workload::B,
        Workload::C,
        Workload::D,
        Workload::E,
        Workload::F,
    ];

    /// The display label used by the Fig. 4 table.
    pub fn label(self) -> &'static str {
        match self {
            Workload::A => "A",
            Workload::B => "B",
            Workload::C => "C",
            Workload::D => "D",
            Workload::E => "E",
            Workload::F => "F",
        }
    }
}

/// Generates deterministic operation streams for a `(record_count,
/// op_count, value_len, seed)` configuration.
#[derive(Debug, Clone)]
pub struct Generator {
    record_count: u64,
    op_count: u64,
    value_len: u64,
    seed: u64,
}

impl Generator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `record_count == 0`.
    pub fn new(record_count: u64, op_count: u64, value_len: u64, seed: u64) -> Self {
        assert!(record_count > 0, "record_count must be positive");
        Generator {
            record_count,
            op_count,
            value_len,
            seed,
        }
    }

    /// The configured value length in bytes.
    pub fn value_len(&self) -> u64 {
        self.value_len
    }

    /// The load phase: sequential inserts of every record.
    pub fn load_ops(&self) -> Vec<KvOp> {
        (1..=self.record_count)
            .map(|key| KvOp {
                kind: OpKind::Insert,
                key,
            })
            .collect()
    }

    /// The run phase for `workload`.
    pub fn run_ops(&self, workload: Workload) -> Vec<KvOp> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut zipf = Zipfian::new(self.record_count, 0.99, self.seed.wrapping_add(1));
        let mut next_insert = self.record_count + 1;
        let mut ops = Vec::with_capacity(self.op_count as usize);
        for _ in 0..self.op_count {
            let p: f64 = rng.random();
            let op = match workload {
                Workload::A => {
                    if p < 0.5 {
                        KvOp {
                            kind: OpKind::Read,
                            key: zipf.next_value(),
                        }
                    } else {
                        KvOp {
                            kind: OpKind::Update,
                            key: zipf.next_value(),
                        }
                    }
                }
                Workload::B => {
                    if p < 0.95 {
                        KvOp {
                            kind: OpKind::Read,
                            key: zipf.next_value(),
                        }
                    } else {
                        KvOp {
                            kind: OpKind::Update,
                            key: zipf.next_value(),
                        }
                    }
                }
                Workload::C => KvOp {
                    kind: OpKind::Read,
                    key: zipf.next_value(),
                },
                Workload::D => {
                    if p < 0.95 {
                        // "Latest": skew toward recently inserted keys.
                        let newest = next_insert - 1;
                        let back = zipf.next_value().min(newest);
                        KvOp {
                            kind: OpKind::Read,
                            key: newest - back + 1,
                        }
                    } else {
                        let key = next_insert;
                        next_insert += 1;
                        KvOp {
                            kind: OpKind::Insert,
                            key,
                        }
                    }
                }
                Workload::E => {
                    if p < 0.95 {
                        let len = rng.random_range(1..=20u64);
                        KvOp {
                            kind: OpKind::Scan(len),
                            key: zipf.next_value(),
                        }
                    } else {
                        let key = next_insert;
                        next_insert += 1;
                        KvOp {
                            kind: OpKind::Insert,
                            key,
                        }
                    }
                }
                Workload::F => {
                    if p < 0.5 {
                        KvOp {
                            kind: OpKind::Read,
                            key: zipf.next_value(),
                        }
                    } else {
                        KvOp {
                            kind: OpKind::ReadModifyWrite,
                            key: zipf.next_value(),
                        }
                    }
                }
            };
            ops.push(op);
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Workload::A.label(), "A");
        assert_eq!(Workload::ALL.len(), 6);
    }

    #[test]
    fn d_reads_stay_near_latest() {
        let g = Generator::new(1000, 5000, 64, 9);
        let ops = g.run_ops(Workload::D);
        // Reads under "latest" should be heavily biased toward the top of
        // the (growing) keyspace.
        let reads: Vec<u64> = ops
            .iter()
            .filter(|o| o.kind == OpKind::Read)
            .map(|o| o.key)
            .collect();
        let near_top = reads.iter().filter(|&&k| k > 900).count();
        assert!(near_top * 2 > reads.len(), "latest bias missing");
    }
}
