//! `pmalias` — inclusion-based (Andersen-style) points-to analysis over
//! `pmir`, plus the PM/not-PM pointer marking and alias-count scoring that
//! drive Hippocrates's interprocedural-fix heuristic (paper §4.3).
//!
//! The analysis is flow- and context-insensitive and field-insensitive, one
//! abstract object per allocation site (`alloca`, `heapalloc`, `pmemmap`,
//! global) — the same design point as the Andersen implementation the paper
//! uses.
//!
//! Two PM-marking modes mirror the paper's §6.1 heuristics:
//!
//! * **Full-AA** ([`PmMarking::full`]): an object is PM iff its allocation
//!   site is a `pmemmap`.
//! * **Trace-AA** ([`PmMarking::from_trace`]): an object is PM iff the bug
//!   finder actually observed its pool registration in the trace.
//!
//! A pointer value is *marked PM* when it may point to a PM object and
//! *marked not-PM* when it may point to a volatile object (both can hold).
//! The heuristic score of a pointer is `#PM-only aliases − #notPM-only
//! aliases` over its may-alias set — exactly the Listing 6 calculation,
//! which is reproduced in this crate's tests.

pub mod marking;
pub mod solver;

pub use marking::{Mark, PmMarking};
pub use solver::{AliasAnalysis, ObjId, ObjKind, Object};

#[cfg(test)]
mod tests {
    use super::*;
    use pmir::Module;

    fn compile(src: &str) -> Module {
        pmlang::compile_one("t.pmc", src).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Find the pointer value that is the address operand of the first
    /// store-like instruction in `func` that stores to a non-slot address
    /// (i.e. a `gep` result or parameter, not a local variable slot).
    fn store_addr_value(m: &Module, func: &str) -> (pmir::FuncId, pmir::ValueId) {
        let fid = m.function_by_name(func).unwrap();
        let f = m.function(fid);
        for (_, i) in f.linked_insts() {
            if let pmir::Op::Store {
                addr: pmir::Operand::Value(v),
                ..
            } = &f.inst(i).op
            {
                // Skip stores into alloca slots (variable bookkeeping).
                let is_slot = matches!(
                    f.value(*v).kind,
                    pmir::ValueKind::Inst(def)
                        if matches!(f.inst(def).op, pmir::Op::Alloca { .. })
                );
                if is_slot {
                    continue;
                }
                return (fid, *v);
            }
        }
        panic!("no non-slot store in {func}");
    }

    #[test]
    fn distinguishes_heap_and_pm() {
        let src = r#"
            fn main() {
                var h: ptr = alloc(64);
                var p: ptr = pmem_map(0, 4096);
                store8(h, 0, 1);
                store8(p, 0, 2);
            }
        "#;
        let m = compile(src);
        let aa = AliasAnalysis::analyze(&m);
        let marking = PmMarking::full(&aa);
        let fid = m.function_by_name("main").unwrap();
        let f = m.function(fid);
        // Find the values loaded from the h and p slots by their defining
        // loads: the store8 address operands.
        let mut marks = vec![];
        for (_, i) in f.linked_insts() {
            if let pmir::Op::Store {
                addr: pmir::Operand::Value(v),
                ty,
                ..
            } = &f.inst(i).op
            {
                if ty.is_int() && !aa.points_to(fid, *v).is_empty() {
                    marks.push(marking.mark(&aa, fid, *v));
                }
            }
        }
        // One store through a heap-only pointer, one through a PM-only one.
        assert!(marks.iter().any(|m| m.pm && !m.non_pm));
        assert!(marks.iter().any(|m| !m.pm && m.non_pm));
    }

    #[test]
    fn flows_through_calls_and_memory() {
        let src = r#"
            fn write(dst: ptr) { store8(dst, 0, 1); }
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                var holder: ptr = alloc(8);
                storep(holder, 0, p);
                var q: ptr = loadp(holder, 0);
                write(q);
            }
        "#;
        let m = compile(src);
        let aa = AliasAnalysis::analyze(&m);
        let marking = PmMarking::full(&aa);
        // The `dst` parameter inside `write` must be marked PM via
        // holder-mediated flow.
        let (fid, v) = store_addr_value(&m, "write");
        let mark = marking.mark(&aa, fid, v);
        assert!(mark.pm, "dst should reach the PM object through memory");
        assert!(!mark.non_pm);
    }

    /// The paper's Listing 6 example, scores included.
    #[test]
    fn listing6_scores() {
        let src = r#"
            fn update(addr: ptr, idx: int, val: int) {
                store1(addr, idx, val);
            }
            fn modify(addr: ptr) {
                update(addr, 0, 1);
            }
            fn main() {
                var vol_addr: ptr = alloc(4096);
                var pm_addr: ptr = pmem_map(0, 4096);
                var i: int = 0;
                while (i < 100) {
                    modify(vol_addr);
                    i = i + 1;
                }
                modify(pm_addr);
            }
        "#;
        let m = compile(src);
        let aa = AliasAnalysis::analyze(&m);
        let marking = PmMarking::full(&aa);

        // Score at the store inside `update` (its address pointer).
        let (upd_f, upd_addr) = store_addr_value(&m, "update");
        assert_eq!(marking.score(&aa, upd_f, upd_addr), 0, "line 3 score");

        // Score of `addr` as passed by modify -> update.
        let mod_f = m.function_by_name("modify").unwrap();
        let addr_param_flow = {
            // The argument operand of the call inside modify.
            let f = m.function(mod_f);
            f.linked_insts()
                .find_map(|(_, i)| match &f.inst(i).op {
                    pmir::Op::Call { args, .. } => args.iter().find_map(|a| a.as_value()),
                    _ => None,
                })
                .expect("call with value arg in modify")
        };
        assert_eq!(
            marking.score(&aa, mod_f, addr_param_flow),
            0,
            "line 7 score"
        );

        // Score of `pm_addr` at the `modify(pm_addr)` call site: +1.
        let main_f = m.function_by_name("main").unwrap();
        let f = m.function(main_f);
        let mut call_arg_scores = vec![];
        for (_, i) in f.linked_insts() {
            if let pmir::Op::Call { callee, args } = &f.inst(i).op {
                if m.function(*callee).name() == "modify" {
                    let v = args[0].as_value().unwrap();
                    call_arg_scores.push(marking.score(&aa, main_f, v));
                }
            }
        }
        call_arg_scores.sort_unstable();
        assert_eq!(
            call_arg_scores,
            vec![-1, 1],
            "vol call scores -1, pm call scores +1"
        );
    }

    #[test]
    fn trace_aa_matches_full_aa_when_all_pools_observed() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                clwb(p);
                sfence();
            }
        "#;
        let m = compile(src);
        let aa = AliasAnalysis::analyze(&m);
        let run = pmvm::Vm::new(pmvm::VmOptions::default())
            .run(&m, "main")
            .unwrap();
        let trace = run.trace.unwrap();
        let full = PmMarking::full(&aa);
        let traced = PmMarking::from_trace(&m, &aa, &trace);
        let (fid, v) = store_addr_value(&m, "main");
        assert_eq!(full.mark(&aa, fid, v), traced.mark(&aa, fid, v));
        assert_eq!(full.score(&aa, fid, v), traced.score(&aa, fid, v));
    }

    #[test]
    fn unobserved_pool_is_unmarked_in_trace_aa() {
        let src = r#"
            fn main() {
                var flag: int = 0;
                var p: ptr = alloc(8);
                if (flag) { p = pmem_map(0, 4096); }
                store8(p, 0, 1);
            }
        "#;
        let m = compile(src);
        let aa = AliasAnalysis::analyze(&m);
        let run = pmvm::Vm::new(pmvm::VmOptions::default())
            .run(&m, "main")
            .unwrap();
        let traced = PmMarking::from_trace(&m, &aa, &run.trace.unwrap());
        let (fid, v) = store_addr_value(&m, "main");
        // Full-AA sees potential PM flow; Trace-AA never saw the pool map.
        let full = PmMarking::full(&aa);
        assert!(full.mark(&aa, fid, v).pm);
        assert!(!traced.mark(&aa, fid, v).pm);
    }

    #[test]
    fn globals_are_volatile_objects() {
        let src = r#"
            fn main() {
                var s: ptr = bytes("xyz");
                store1(s, 0, 65);
            }
        "#;
        let m = compile(src);
        let aa = AliasAnalysis::analyze(&m);
        let marking = PmMarking::full(&aa);
        let (fid, v) = store_addr_value(&m, "main");
        let mark = marking.mark(&aa, fid, v);
        assert!(!mark.pm);
        assert!(mark.non_pm);
    }

    #[test]
    fn gep_preserves_target() {
        let src = r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                var q: ptr = p + 128;
                store8(q, 0, 1);
            }
        "#;
        let m = compile(src);
        let aa = AliasAnalysis::analyze(&m);
        let marking = PmMarking::full(&aa);
        let (fid, v) = store_addr_value(&m, "main");
        assert!(marking.mark(&aa, fid, v).pm);
    }

    #[test]
    fn return_values_flow_back() {
        let src = r#"
            fn get_pool() -> ptr { return pmem_map(0, 4096); }
            fn main() {
                var p: ptr = get_pool();
                store8(p, 0, 1);
            }
        "#;
        let m = compile(src);
        let aa = AliasAnalysis::analyze(&m);
        let marking = PmMarking::full(&aa);
        let (fid, v) = store_addr_value(&m, "main");
        assert!(marking.mark(&aa, fid, v).pm);
    }
}
