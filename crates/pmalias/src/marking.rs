//! PM / not-PM pointer marking and the heuristic alias-count score
//! (paper §4.3).

use crate::solver::{AliasAnalysis, ObjId, ObjKind};
use pmir::{FuncId, InstId, Module, ValueId};
use pmtrace::{EventKind, Trace};
use std::collections::HashSet;

/// The PM-ness of a pointer value. Both flags may hold (a pointer that may
/// target either kind of memory — like `memcpy`'s `dst`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mark {
    /// May point to persistent memory.
    pub pm: bool,
    /// May point to volatile memory.
    pub non_pm: bool,
}

impl Mark {
    /// The score contribution of one alias class with this mark: `+1` for
    /// PM-only, `-1` for volatile-only, `0` for mixed or unknown.
    pub fn score(self) -> i64 {
        match (self.pm, self.non_pm) {
            (true, false) => 1,
            (false, true) => -1,
            _ => 0,
        }
    }
}

/// A set of objects considered persistent, with mode-specific construction.
#[derive(Debug, Clone)]
pub struct PmMarking {
    pm_objs: HashSet<ObjId>,
}

impl PmMarking {
    /// **Full-AA**: every static `pmemmap` site is PM.
    pub fn full(aa: &AliasAnalysis) -> Self {
        let pm_objs = aa
            .objects()
            .filter(|(_, o)| o.kind == ObjKind::Pm)
            .map(|(id, _)| id)
            .collect();
        PmMarking { pm_objs }
    }

    /// **Trace-AA**: only pools whose registration the bug finder observed
    /// are PM (the `RegisterPool` events' IR references are matched against
    /// `pmemmap` allocation sites).
    pub fn from_trace(m: &Module, aa: &AliasAnalysis, trace: &Trace) -> Self {
        let mut observed: HashSet<(FuncId, InstId)> = HashSet::new();
        for e in &trace.events {
            if matches!(e.kind, EventKind::RegisterPool { .. }) {
                if let Some(at) = &e.at {
                    if let Some(fid) = m.function_by_name(&at.function) {
                        observed.insert((fid, InstId(at.inst)));
                    }
                }
            }
        }
        let pm_objs = aa
            .objects()
            .filter(|(_, o)| {
                o.kind == ObjKind::Pm
                    && matches!((o.func, o.inst), (Some(f), Some(i)) if observed.contains(&(f, i)))
            })
            .map(|(id, _)| id)
            .collect();
        PmMarking { pm_objs }
    }

    /// The PM objects in this marking.
    pub fn pm_objects(&self) -> &HashSet<ObjId> {
        &self.pm_objs
    }

    fn mark_set<'a>(&self, aa: &AliasAnalysis, objs: impl Iterator<Item = &'a ObjId>) -> Mark {
        let mut mark = Mark::default();
        for &o in objs {
            if self.pm_objs.contains(&o) {
                mark.pm = true;
            } else if aa.object(o).kind != ObjKind::Pm {
                mark.non_pm = true;
            }
            // Pm-kind objects *not* in pm_objs (unobserved pools under
            // Trace-AA) stay unknown: they contribute to neither flag.
        }
        mark
    }

    /// Marks a pointer value PM / not-PM by its points-to set.
    pub fn mark(&self, aa: &AliasAnalysis, f: FuncId, v: ValueId) -> Mark {
        self.mark_set(aa, aa.points_to(f, v).iter())
    }

    /// The heuristic score of a pointer (paper §4.3, Listing 6): the sum of
    /// per-alias-class scores over every alias class that may alias `v`,
    /// including `v`'s own class. Alias classes are distinct points-to
    /// signatures, which matches the paper's variable-level counting
    /// independent of how many times a variable is reloaded.
    pub fn score(&self, aa: &AliasAnalysis, f: FuncId, v: ValueId) -> i64 {
        let pv = aa.points_to(f, v);
        if pv.is_empty() {
            return 0;
        }
        let mut total = 0;
        for sig in aa.signatures() {
            if sig.iter().any(|o| pv.contains(o)) {
                total += self.mark_set(aa, sig.iter()).score();
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmir::{FunctionBuilder, Type};

    #[test]
    fn mark_score_values() {
        assert_eq!(
            Mark {
                pm: true,
                non_pm: false
            }
            .score(),
            1
        );
        assert_eq!(
            Mark {
                pm: false,
                non_pm: true
            }
            .score(),
            -1
        );
        assert_eq!(
            Mark {
                pm: true,
                non_pm: true
            }
            .score(),
            0
        );
        assert_eq!(Mark::default().score(), 0);
    }

    #[test]
    fn full_marking_finds_pm_sites() {
        let mut m = Module::new();
        let f = m.declare_function("f", vec![], Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let p = b.pmem_map(4096i64, 0);
        let h = b.heap_alloc(8i64);
        b.store(Type::int(8), p, 1i64);
        b.store(Type::int(8), h, 1i64);
        b.ret(None);
        b.finish();
        let aa = AliasAnalysis::analyze(&m);
        let mk = PmMarking::full(&aa);
        assert_eq!(mk.pm_objects().len(), 1);
        assert_eq!(
            mk.mark(&aa, f, p),
            Mark {
                pm: true,
                non_pm: false
            }
        );
        assert_eq!(
            mk.mark(&aa, f, h),
            Mark {
                pm: false,
                non_pm: true
            }
        );
        assert_eq!(mk.score(&aa, f, p), 1);
        assert_eq!(mk.score(&aa, f, h), -1);
    }
}
