//! Constraint generation and the inclusion-constraint solver.

use pmir::{FuncId, GlobalId, InstId, Module, Op, Operand, Type, ValueId};
use std::collections::{BTreeSet, HashMap};

/// Identifies an abstract memory object (an allocation site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

/// What kind of memory an abstract object is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// `alloca` site.
    Stack,
    /// `heapalloc` site.
    Heap,
    /// `pmemmap` site — persistent memory.
    Pm,
    /// A module global.
    Global,
}

/// An abstract object: one per allocation site, context-insensitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Object {
    /// Memory kind.
    pub kind: ObjKind,
    /// The allocating function, for site-based objects.
    pub func: Option<FuncId>,
    /// The allocating instruction, for site-based objects.
    pub inst: Option<InstId>,
    /// The global, for [`ObjKind::Global`] objects.
    pub global: Option<GlobalId>,
}

#[derive(Debug, Clone, Copy)]
enum Complex {
    /// `*addr ⊇ value`
    StoreInto { addr: usize, value: usize },
    /// `result ⊇ *addr`
    LoadFrom { addr: usize, result: usize },
    /// `**dst ⊇ **src` (memcpy may move pointers)
    ContentCopy { dst: usize, src: usize },
}

/// The solved points-to relation over a module.
#[derive(Debug)]
pub struct AliasAnalysis {
    objects: Vec<Object>,
    val_index: HashMap<(FuncId, ValueId), usize>,
    val_list: Vec<(FuncId, ValueId)>,
    /// Per node (pointer values, then object contents): the set of objects
    /// it may point to.
    pts: Vec<BTreeSet<ObjId>>,
    /// Distinct nonempty points-to signatures over pointer *values* — the
    /// paper's "aliases" are counted per signature (alias class).
    signatures: Vec<BTreeSet<ObjId>>,
    empty: BTreeSet<ObjId>,
}

impl AliasAnalysis {
    /// Runs the analysis over a module to a fixpoint.
    pub fn analyze(m: &Module) -> Self {
        Builder::new(m).solve()
    }

    /// Number of abstract objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// The object table entry.
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of range.
    pub fn object(&self, o: ObjId) -> &Object {
        &self.objects[o.0 as usize]
    }

    /// Iterates over `(id, object)` pairs.
    pub fn objects(&self) -> impl Iterator<Item = (ObjId, &Object)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjId(i as u32), o))
    }

    /// The points-to set of a pointer value (empty for untracked values).
    pub fn points_to(&self, f: FuncId, v: ValueId) -> &BTreeSet<ObjId> {
        match self.val_index.get(&(f, v)) {
            Some(&n) => &self.pts[n],
            None => &self.empty,
        }
    }

    /// Whether two pointer values may alias (their points-to sets
    /// intersect). Values with empty sets alias nothing.
    pub fn may_alias(&self, a: (FuncId, ValueId), b: (FuncId, ValueId)) -> bool {
        let pa = self.points_to(a.0, a.1);
        let pb = self.points_to(b.0, b.1);
        pa.iter().any(|o| pb.contains(o))
    }

    /// All tracked pointer values.
    pub fn pointer_values(&self) -> impl Iterator<Item = (FuncId, ValueId)> + '_ {
        self.val_list.iter().copied()
    }

    /// The distinct nonempty points-to signatures across all pointer values
    /// (alias classes).
    pub fn signatures(&self) -> &[BTreeSet<ObjId>] {
        &self.signatures
    }
}

struct Builder<'m> {
    m: &'m Module,
    objects: Vec<Object>,
    val_index: HashMap<(FuncId, ValueId), usize>,
    val_list: Vec<(FuncId, ValueId)>,
    /// node id -> points-to set; value nodes first, then object contents.
    pts: Vec<BTreeSet<ObjId>>,
    edges: Vec<(usize, usize)>,
    complex: Vec<Complex>,
    /// pointer-typed return values per function.
    rets: HashMap<FuncId, Vec<usize>>,
}

impl<'m> Builder<'m> {
    fn new(m: &'m Module) -> Self {
        Builder {
            m,
            objects: vec![],
            val_index: HashMap::new(),
            val_list: vec![],
            pts: vec![],
            edges: vec![],
            complex: vec![],
            rets: HashMap::new(),
        }
    }

    fn val_node(&mut self, f: FuncId, v: ValueId) -> usize {
        if let Some(&n) = self.val_index.get(&(f, v)) {
            return n;
        }
        let n = self.val_list.len();
        self.val_index.insert((f, v), n);
        self.val_list.push((f, v));
        n
    }

    fn operand_node(&mut self, f: FuncId, op: Operand) -> Option<usize> {
        match op {
            Operand::Value(v) if self.m.function(f).value(v).ty.is_ptr() => {
                Some(self.val_node(f, v))
            }
            _ => None,
        }
    }

    fn add_object(&mut self, obj: Object) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(obj);
        id
    }

    fn solve(mut self) -> AliasAnalysis {
        // Pass 0: register all pointer-typed values so node ids are dense
        // before object-content nodes are appended.
        for (fid, f) in self.m.functions() {
            for v in f.value_ids() {
                if f.value(v).ty.is_ptr() {
                    self.val_node(fid, v);
                }
            }
        }

        // Global objects.
        let mut global_objs = HashMap::new();
        for (gid, _) in self.m.globals() {
            let o = self.add_object(Object {
                kind: ObjKind::Global,
                func: None,
                inst: None,
                global: Some(gid),
            });
            global_objs.insert(gid, o);
        }

        // Base constraints per instruction.
        #[derive(Debug)]
        enum Seed {
            Base { node: usize, obj: ObjId },
        }
        let mut seeds: Vec<Seed> = vec![];
        for (fid, f) in self.m.functions() {
            for (_, i) in f.linked_insts() {
                let inst = f.inst(i);
                match &inst.op {
                    Op::Alloca { .. } | Op::HeapAlloc { .. } | Op::PmemMap { .. } => {
                        let kind = match inst.op {
                            Op::Alloca { .. } => ObjKind::Stack,
                            Op::HeapAlloc { .. } => ObjKind::Heap,
                            _ => ObjKind::Pm,
                        };
                        let obj = self.add_object(Object {
                            kind,
                            func: Some(fid),
                            inst: Some(i),
                            global: None,
                        });
                        let r = inst.result.expect("allocations produce a value");
                        let node = self.val_node(fid, r);
                        seeds.push(Seed::Base { node, obj });
                    }
                    Op::GlobalAddr { global } => {
                        let r = inst.result.expect("globaladdr produces a value");
                        let node = self.val_node(fid, r);
                        seeds.push(Seed::Base {
                            node,
                            obj: global_objs[global],
                        });
                    }
                    Op::Gep { base, .. } => {
                        if let Some(b) = self.operand_node(fid, *base) {
                            let r = inst.result.expect("gep produces a value");
                            let rn = self.val_node(fid, r);
                            self.edges.push((b, rn));
                        }
                    }
                    Op::Load { ty, addr } if ty.is_ptr() => {
                        if let Some(a) = self.operand_node(fid, *addr) {
                            let r = inst.result.expect("load produces a value");
                            let rn = self.val_node(fid, r);
                            self.complex.push(Complex::LoadFrom {
                                addr: a,
                                result: rn,
                            });
                        }
                    }
                    Op::Store { ty, addr, value } if ty.is_ptr() => {
                        if let (Some(a), Some(v)) = (
                            self.operand_node(fid, *addr),
                            self.operand_node(fid, *value),
                        ) {
                            self.complex.push(Complex::StoreInto { addr: a, value: v });
                        }
                    }
                    Op::Memcpy { dst, src, .. } => {
                        if let (Some(d), Some(s)) =
                            (self.operand_node(fid, *dst), self.operand_node(fid, *src))
                        {
                            self.complex.push(Complex::ContentCopy { dst: d, src: s });
                        }
                    }
                    Op::Call { callee, args } => {
                        let callee_f = self.m.function(*callee);
                        let params: Vec<Type> = callee_f.params().to_vec();
                        for (idx, (&arg, &pty)) in args.iter().zip(&params).enumerate() {
                            if pty.is_ptr() {
                                if let Some(an) = self.operand_node(fid, arg) {
                                    let pn = self.val_node(*callee, ValueId(idx as u32));
                                    self.edges.push((an, pn));
                                }
                            }
                        }
                        if callee_f.ret_type().is_ptr() {
                            if let Some(r) = inst.result {
                                let rn = self.val_node(fid, r);
                                // Connected after return collection below via
                                // rets; record a pending edge using a marker.
                                self.rets.entry(*callee).or_default();
                                // Store as a special edge from each return
                                // value (added later once rets are known).
                                self.edges.push((RET_EDGE_BASE + callee.0 as usize, rn));
                            }
                        }
                    }
                    Op::Ret { value: Some(v) } if self.m.function(fid).ret_type().is_ptr() => {
                        if let Some(vn) = self.operand_node(fid, *v) {
                            self.rets.entry(fid).or_default().push(vn);
                        }
                    }
                    _ => {}
                }
            }
        }

        // Expand virtual return-edges into concrete value edges.
        const RET_EDGE_BASE: usize = usize::MAX / 2;
        let mut concrete_edges: Vec<(usize, usize)> = vec![];
        for (from, to) in std::mem::take(&mut self.edges) {
            if from >= RET_EDGE_BASE {
                let callee = FuncId((from - RET_EDGE_BASE) as u32);
                for &rn in self.rets.get(&callee).into_iter().flatten() {
                    concrete_edges.push((rn, to));
                }
            } else {
                concrete_edges.push((from, to));
            }
        }
        self.edges = concrete_edges;

        // Allocate pts sets: one per value node, one per object content.
        let nvals = self.val_list.len();
        let nobjs = self.objects.len();
        self.pts = vec![BTreeSet::new(); nvals + nobjs];
        for s in &seeds {
            let Seed::Base { node, obj } = s;
            self.pts[*node].insert(*obj);
        }

        let content = |o: ObjId| nvals + o.0 as usize;

        // Fixpoint iteration.
        loop {
            let mut changed = false;
            for &(from, to) in &self.edges {
                changed |= union_into(&mut self.pts, from, to);
            }
            for c in self.complex.clone() {
                match c {
                    Complex::StoreInto { addr, value } => {
                        let objs: Vec<ObjId> = self.pts[addr].iter().copied().collect();
                        for o in objs {
                            changed |= union_into(&mut self.pts, value, content(o));
                        }
                    }
                    Complex::LoadFrom { addr, result } => {
                        let objs: Vec<ObjId> = self.pts[addr].iter().copied().collect();
                        for o in objs {
                            changed |= union_into(&mut self.pts, content(o), result);
                        }
                    }
                    Complex::ContentCopy { dst, src } => {
                        let ds: Vec<ObjId> = self.pts[dst].iter().copied().collect();
                        let ss: Vec<ObjId> = self.pts[src].iter().copied().collect();
                        for &d in &ds {
                            for &s in &ss {
                                changed |= union_into(&mut self.pts, content(s), content(d));
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Collect distinct nonempty signatures over value nodes.
        let mut sigs: Vec<BTreeSet<ObjId>> = vec![];
        let mut seen = std::collections::HashSet::new();
        for n in 0..nvals {
            if self.pts[n].is_empty() {
                continue;
            }
            let key: Vec<ObjId> = self.pts[n].iter().copied().collect();
            if seen.insert(key) {
                sigs.push(self.pts[n].clone());
            }
        }

        AliasAnalysis {
            objects: self.objects,
            val_index: self.val_index,
            val_list: self.val_list,
            pts: self.pts,
            signatures: sigs,
            empty: BTreeSet::new(),
        }
    }
}

fn union_into(pts: &mut [BTreeSet<ObjId>], from: usize, to: usize) -> bool {
    if from == to {
        return false;
    }
    let add: Vec<ObjId> = pts[from].difference(&pts[to]).copied().collect();
    if add.is_empty() {
        return false;
    }
    pts[to].extend(add);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmir::{FunctionBuilder, Operand};

    #[test]
    fn basic_seed_and_gep() {
        let mut m = Module::new();
        let f = m.declare_function("f", vec![], pmir::Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let h = b.heap_alloc(64i64);
        let g = b.gep(h, 8i64);
        let p = b.pmem_map(4096i64, 0);
        b.store(pmir::Type::int(8), g, 1i64);
        b.store(pmir::Type::int(8), p, 1i64);
        b.ret(None);
        b.finish();
        let aa = AliasAnalysis::analyze(&m);
        assert_eq!(aa.object_count(), 2);
        assert!(aa.may_alias((f, h), (f, g)));
        assert!(!aa.may_alias((f, h), (f, p)));
        // Two distinct signatures: {heap} and {pm}.
        assert_eq!(aa.signatures().len(), 2);
    }

    #[test]
    fn store_load_through_memory() {
        let mut m = Module::new();
        let f = m.declare_function("f", vec![], pmir::Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let slot = b.alloca(8);
        let p = b.pmem_map(4096i64, 0);
        b.store(pmir::Type::Ptr, slot, p);
        let q = b.load(pmir::Type::Ptr, slot);
        b.store(pmir::Type::int(8), q, 1i64);
        b.ret(None);
        b.finish();
        let aa = AliasAnalysis::analyze(&m);
        assert!(aa.may_alias((f, p), (f, q)));
        let pm_objs: Vec<_> = aa
            .points_to(f, q)
            .iter()
            .filter(|&&o| aa.object(o).kind == ObjKind::Pm)
            .collect();
        assert_eq!(pm_objs.len(), 1);
    }

    #[test]
    fn call_params_and_returns() {
        let mut m = Module::new();
        let id_fn = m.declare_function("id", vec![pmir::Type::Ptr], pmir::Type::Ptr);
        {
            let mut b = FunctionBuilder::new(&mut m, id_fn);
            let e = b.entry_block();
            b.switch_to(e);
            let a = b.arg(0);
            b.ret(Some(Operand::Value(a)));
            b.finish();
        }
        let f = m.declare_function("f", vec![], pmir::Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let p = b.pmem_map(4096i64, 0);
        let q = b.call(id_fn, vec![Operand::Value(p)]).unwrap();
        b.store(pmir::Type::int(8), q, 1i64);
        b.ret(None);
        b.finish();
        let aa = AliasAnalysis::analyze(&m);
        // Param of id aliases p; call result aliases p.
        let param = m.function(id_fn).arg(0);
        assert!(aa.may_alias((id_fn, param), (f, p)));
        assert!(aa.may_alias((f, q), (f, p)));
    }

    #[test]
    fn memcpy_moves_pointers() {
        // store p into a; memcpy a -> b; load from b aliases p.
        let mut m = Module::new();
        let f = m.declare_function("f", vec![], pmir::Type::Void);
        let mut b = FunctionBuilder::new(&mut m, f);
        let e = b.entry_block();
        b.switch_to(e);
        let a = b.heap_alloc(8i64);
        let bb = b.heap_alloc(8i64);
        let p = b.pmem_map(4096i64, 0);
        b.store(pmir::Type::Ptr, a, p);
        b.memcpy(bb, a, 8i64);
        let q = b.load(pmir::Type::Ptr, bb);
        b.store(pmir::Type::int(8), q, 1i64);
        b.ret(None);
        b.finish();
        let aa = AliasAnalysis::analyze(&m);
        assert!(aa.may_alias((f, q), (f, p)));
    }
}
