//! Bottom-up function summaries: what a callee durably does to memory that
//! escapes into it, and what it leaves behind.

use crate::fact::PState;
use crate::loc::Loc;
use pmalias::ObjId;
use pmir::{FuncId, InstId};
use std::collections::BTreeSet;

/// How far a flush effect extends past its start address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Extent {
    /// One cache line (a raw `clwb`/`clflushopt`/`clflush`).
    Line,
    /// A constant byte count (rounded out to cache lines when matching).
    Bytes(u64),
    /// The value of the `n`-th parameter of the *summarized* function — the
    /// conventional `(ptr, len)` helper signature. Mapped to `Bytes` or
    /// `Unknown` at each call site.
    Param(u32),
    /// Statically unbounded: covers everything past the start address.
    Unknown,
}

/// One flush the function performs (directly or via callees), expressed in
/// the function's own address space.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FlushEff {
    /// Structural start address, when resolvable. `None` falls back to
    /// points-to matching.
    pub loc: Option<Loc>,
    /// Points-to set of the flushed pointer (module-global).
    pub pts: BTreeSet<ObjId>,
    /// Extent of the flushed range.
    pub extent: Extent,
    /// Whether the flush is strongly ordered (`clflush`): covered stores
    /// become durable without a fence.
    pub durable: bool,
}

/// A store the function leaves non-durable on some return path, to be
/// inherited (and structurally rebased) by callers.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ResidualFact {
    /// The original store instruction (possibly in a transitive callee).
    pub origin: (FuncId, InstId),
    /// Address in the summarized function's space; rebasable iff rooted in
    /// its parameters.
    pub loc: Option<Loc>,
    /// Points-to set of the stored-to pointer.
    pub pts: BTreeSet<ObjId>,
    /// Constant store length, when known.
    pub len: Option<u64>,
    /// Lattice state at return (never `Durable`).
    pub state: PState,
    /// Whether a fence followed the store on every return path.
    pub fence_seen: bool,
}

/// The bottom-up summary of one function.
///
/// `flushes` is a *must* set modulo empty-range guards: the effects applied
/// on every return path that flushes anything at all. The modulo clause
/// keeps the ubiquitous `if (n <= 0) return;` guard of range-flush helpers
/// from emptying the set, while a flush that happens only on one branch of
/// real control flow (e.g. a first-insertion special case) is correctly
/// excluded — treating such a flush as a guaranteed cover is exactly how a
/// static checker misses bugs the dynamic checker finds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FnSummary {
    /// Flush effects guaranteed on every (flushing) return path.
    pub flushes: Vec<FlushEff>,
    /// A fence executes on every entry-to-return path.
    pub fences_all_paths: bool,
    /// The function (transitively) contains a `crashpoint`: callers must
    /// audit their live stores at the call site.
    pub has_checkpoint: bool,
    /// Stores left non-durable at return.
    pub residual: Vec<ResidualFact>,
}

impl FnSummary {
    /// Maps a [`Extent::Param`] extent through a call's actual arguments.
    /// The resolver sees through `pmlang`'s parameter spill slots, so a
    /// length that is itself a forwarded parameter stays [`Extent::Param`]
    /// instead of degrading to [`Extent::Unknown`].
    pub fn map_extent(
        extent: Extent,
        args: &[pmir::Operand],
        res: &mut crate::loc::Resolver<'_>,
    ) -> Extent {
        match extent {
            Extent::Param(j) => match args.get(j as usize) {
                Some(pmir::Operand::Const(c)) if *c >= 0 => Extent::Bytes(*c as u64),
                Some(op) => match res.resolve(*op) {
                    Loc {
                        base: crate::loc::Base::Abs,
                        offset: Some(c),
                    } if c >= 0 => Extent::Bytes(c as u64),
                    Loc {
                        base: crate::loc::Base::Arg(k),
                        offset: Some(0),
                    } => Extent::Param(k),
                    _ => Extent::Unknown,
                },
                None => Extent::Unknown,
            },
            e => e,
        }
    }
}

/// The line-rounded byte interval `[lo, hi)` a flush effect covers,
/// relative to its structural base, or `None` when unbounded or unknown.
///
/// Alignment caveat: offsets are base-relative, and the checker assumes
/// bases are cache-line aligned when rounding. Pool pointers and line-sized
/// records (the idiom of the corpus) satisfy this; a misaligned base can
/// make the checker optimistic by at most one line either way.
pub fn cover_interval(start: i64, extent: Extent) -> Option<(i64, i64)> {
    const LINE: i64 = 64;
    let lo = start.div_euclid(LINE) * LINE;
    match extent {
        Extent::Line => Some((lo, lo + LINE)),
        Extent::Bytes(n) => {
            let end = start + (n.max(1) as i64);
            Some((
                lo,
                end.div_euclid(LINE) * LINE + if end % LINE == 0 { 0 } else { LINE },
            ))
        }
        Extent::Param(_) | Extent::Unknown => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_intervals_round_to_lines() {
        assert_eq!(cover_interval(8, Extent::Line), Some((0, 64)));
        assert_eq!(cover_interval(64, Extent::Line), Some((64, 128)));
        assert_eq!(cover_interval(8, Extent::Bytes(8)), Some((0, 64)));
        assert_eq!(cover_interval(2120, Extent::Bytes(8)), Some((2112, 2176)));
        assert_eq!(cover_interval(0, Extent::Bytes(128)), Some((0, 128)));
        assert_eq!(cover_interval(0, Extent::Unknown), None);
    }
}
