//! The forward abstract interpretation: per-function fixpoint over the CFG,
//! bottom-up summary computation, and report emission.

use crate::fact::{Fact, FactKey, PState, State};
use crate::loc::{const_of, rebase, Loc, Resolver};
use crate::summary::{cover_interval, Extent, FlushEff, FnSummary, ResidualFact};
use pmalias::{AliasAnalysis, ObjKind};
use pmcheck::{Bug, BugKind, CheckReport, Checkpoint, Provenance};
use pmir::cfg::{Cfg, Dominators};
use pmir::{BlockId, FuncId, InstId, Module, Op, Operand};
use pmtrace::{IrRef, TraceLoc};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// How strongly a flush effect covers a tracked store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cover {
    /// Provably not covered (structural bases match and the line ranges are
    /// disjoint, or no aliasing at all).
    No,
    /// Possibly covered; the checker optimistically treats the store as
    /// flushed (matching the dynamic checker on the executions it sees).
    May,
    /// Provably covered: same structural base, constant offsets, and the
    /// store's range lies inside the flush's line-rounded range.
    Must,
}

/// The static persistency checker: alias facts plus converged bottom-up
/// function summaries over a module.
pub struct StaticChecker<'m> {
    m: &'m Module,
    alias: AliasAnalysis,
    summaries: HashMap<FuncId, FnSummary>,
    fixpoint_rounds: u64,
    summaries_computed: u64,
    sccs_widened: u64,
}

/// A failure to run the static checker (currently: unknown entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for StaticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "static check failed: {}", self.message)
    }
}

impl std::error::Error for StaticError {}

/// Collects diagnostics during the emission pass.
#[derive(Default)]
struct Sink {
    bugs: Vec<Bug>,
    redundant: Vec<pmcheck::bug::RedundantFlush>,
    next_checkpoint: u64,
    emitted: HashSet<((FuncId, InstId), BugKind, Checkpoint)>,
}

/// One function's flush-effect table: all effects the function's linked
/// instructions can apply, in block order, with per-instruction ranges.
struct EffTable {
    effs: Vec<FlushEff>,
    by_inst: HashMap<InstId, (usize, usize)>,
}

impl<'m> StaticChecker<'m> {
    /// Analyzes the module: points-to facts, then function summaries to a
    /// fixpoint, bottom-up over the strongly connected components of the
    /// call graph. Acyclic components need exactly one pass; (mutually)
    /// recursive groups iterate to a local fixpoint, and a group that fails
    /// to converge within the cap is *widened* to a sound pessimistic
    /// summary (no guaranteed flushes, no guaranteed fence, every residual
    /// store kept) instead of silently keeping an optimistic iterate.
    pub fn new(m: &'m Module) -> Self {
        let alias = AliasAnalysis::analyze(m);
        let mut checker = StaticChecker {
            m,
            alias,
            summaries: m.func_ids().map(|f| (f, FnSummary::default())).collect(),
            fixpoint_rounds: 0,
            summaries_computed: 0,
            sccs_widened: 0,
        };
        // Rounds a cyclic group may iterate before being widened. Recursive
        // groups whose rebased addresses drift each round (a helper that
        // recurses on `p + stride`) never syntactically converge; widening
        // cuts them off soundly.
        const SCC_ROUNDS_CAP: usize = 12;
        for scc in checker.call_sccs() {
            let cyclic = scc.len() > 1 || scc.iter().any(|&f| checker.callees(f).contains(&f));
            if !cyclic {
                let f = scc[0];
                checker.fixpoint_rounds += 1;
                let s = checker.summarize(f);
                checker.summaries_computed += 1;
                checker.summaries.insert(f, s);
                continue;
            }
            if !checker.iterate_scc(&scc, SCC_ROUNDS_CAP, false) {
                // Did not converge: widen every member to the pessimistic
                // form and re-iterate so residual facts settle against the
                // widened (flush-free) summaries. The widened form collapses
                // per-round address drift (locs drop to `None`), so this
                // inner fixpoint converges in a couple of passes.
                checker.sccs_widened += 1;
                for &f in &scc {
                    let widened = Self::widen(&checker.summaries[&f]);
                    checker.summaries.insert(f, widened);
                }
                checker.iterate_scc(&scc, SCC_ROUNDS_CAP, true);
            }
        }
        checker
    }

    /// Iterates one cyclic call-graph component to a local fixpoint.
    /// Returns whether it converged within `cap` rounds. With `widen` set,
    /// every computed summary is pessimized through [`Self::widen`] before
    /// being compared and stored.
    fn iterate_scc(&mut self, scc: &[FuncId], cap: usize, widen: bool) -> bool {
        for _ in 0..cap {
            self.fixpoint_rounds += 1;
            let mut changed = false;
            for &f in scc {
                let mut s = self.summarize(f);
                self.summaries_computed += 1;
                if widen {
                    s = Self::widen(&s);
                }
                if self.summaries[&f] != s {
                    self.summaries.insert(f, s);
                    changed = true;
                }
            }
            if !changed {
                return true;
            }
        }
        false
    }

    /// The sound pessimistic form of a summary: callers may not rely on any
    /// flush or fence the group performs, and every residual store is kept
    /// with its per-origin facts collapsed (addresses and lengths dropped,
    /// states joined), so re-summarizing against widened callees cannot
    /// oscillate on rebased offsets.
    fn widen(s: &FnSummary) -> FnSummary {
        let mut by_origin: std::collections::BTreeMap<(FuncId, InstId), ResidualFact> =
            Default::default();
        for r in &s.residual {
            match by_origin.get_mut(&r.origin) {
                Some(w) => {
                    w.pts.extend(r.pts.iter().copied());
                    w.state = w.state.join(r.state);
                    w.fence_seen &= r.fence_seen;
                }
                None => {
                    by_origin.insert(
                        r.origin,
                        ResidualFact {
                            origin: r.origin,
                            loc: None,
                            pts: r.pts.clone(),
                            len: None,
                            state: r.state,
                            fence_seen: r.fence_seen,
                        },
                    );
                }
            }
        }
        FnSummary {
            flushes: vec![],
            fences_all_paths: false,
            has_checkpoint: s.has_checkpoint,
            residual: by_origin.into_values().collect(),
        }
    }

    /// How many rounds the bottom-up summary fixpoint ran before converging.
    pub fn fixpoint_rounds(&self) -> u64 {
        self.fixpoint_rounds
    }

    /// How many per-function summaries were (re)computed across all rounds.
    pub fn summaries_computed(&self) -> u64 {
        self.summaries_computed
    }

    /// How many recursive call-graph components failed to converge within
    /// the round cap and were widened to the sound pessimistic summary.
    /// Zero means every summary is a true fixpoint.
    pub fn sccs_widened(&self) -> u64 {
        self.sccs_widened
    }

    /// The converged summary of a function.
    pub fn summary(&self, f: FuncId) -> &FnSummary {
        &self.summaries[&f]
    }

    /// The underlying points-to analysis.
    pub fn alias(&self) -> &AliasAnalysis {
        &self.alias
    }

    /// Checks the program rooted at `entry`: every function reachable
    /// through calls is analyzed, live stores are audited at each
    /// `crashpoint` (own or in a callee) and at the entry function's
    /// returns (`ProgramEnd`).
    ///
    /// # Errors
    ///
    /// Fails when `entry` names no function.
    pub fn check(&self, entry: &str) -> Result<CheckReport, StaticError> {
        let entry_id = self.m.function_by_name(entry).ok_or_else(|| StaticError {
            message: format!("entry function `{entry}` not found"),
        })?;
        let mut reachable = self.reachable_from(entry_id);
        reachable.sort();
        let mut sink = Sink {
            next_checkpoint: 1,
            ..Default::default()
        };
        let mut report = CheckReport {
            provenance: Provenance::Static,
            ..Default::default()
        };
        for &f in &reachable {
            self.emit_function(f, f == entry_id, &mut sink);
            let func = self.m.function(f);
            for (_, i) in func.linked_insts() {
                match &func.inst(i).op {
                    Op::Flush { .. } => report.flushes_seen += 1,
                    Op::Fence { .. } => report.fences_seen += 1,
                    op if op.is_pm_storeish() && self.is_pm_target(f, store_addr_of(op)) => {
                        report.stores_checked += 1;
                    }
                    _ => {}
                }
            }
        }
        report.bugs = sink.bugs;
        report.redundant_flushes = sink.redundant;
        Ok(report)
    }

    // ---- call graph -------------------------------------------------------

    fn callees(&self, f: FuncId) -> BTreeSet<FuncId> {
        let func = self.m.function(f);
        func.linked_insts()
            .filter_map(|(_, i)| match func.inst(i).op {
                Op::Call { callee, .. } => Some(callee),
                _ => None,
            })
            .collect()
    }

    /// Strongly connected components of the call graph, in callee-first
    /// order: every component is emitted after all components it calls
    /// into (Tarjan emits sinks of the condensation first).
    fn call_sccs(&self) -> Vec<Vec<FuncId>> {
        struct Tarjan<'c, 'm> {
            checker: &'c StaticChecker<'m>,
            index: HashMap<FuncId, u32>,
            low: HashMap<FuncId, u32>,
            on_stack: HashSet<FuncId>,
            stack: Vec<FuncId>,
            next: u32,
            sccs: Vec<Vec<FuncId>>,
        }
        impl Tarjan<'_, '_> {
            fn visit(&mut self, f: FuncId) {
                self.index.insert(f, self.next);
                self.low.insert(f, self.next);
                self.next += 1;
                self.stack.push(f);
                self.on_stack.insert(f);
                for c in self.checker.callees(f) {
                    if !self.index.contains_key(&c) {
                        self.visit(c);
                        let cl = self.low[&c];
                        let fl = self.low.get_mut(&f).expect("visited");
                        *fl = (*fl).min(cl);
                    } else if self.on_stack.contains(&c) {
                        let ci = self.index[&c];
                        let fl = self.low.get_mut(&f).expect("visited");
                        *fl = (*fl).min(ci);
                    }
                }
                if self.low[&f] == self.index[&f] {
                    let mut scc = vec![];
                    loop {
                        let v = self.stack.pop().expect("root still on stack");
                        self.on_stack.remove(&v);
                        scc.push(v);
                        if v == f {
                            break;
                        }
                    }
                    scc.sort();
                    self.sccs.push(scc);
                }
            }
        }
        let mut t = Tarjan {
            checker: self,
            index: HashMap::new(),
            low: HashMap::new(),
            on_stack: HashSet::new(),
            stack: vec![],
            next: 0,
            sccs: vec![],
        };
        for root in self.m.func_ids() {
            if !t.index.contains_key(&root) {
                t.visit(root);
            }
        }
        t.sccs
    }

    fn reachable_from(&self, entry: FuncId) -> Vec<FuncId> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([entry]);
        seen.insert(entry);
        while let Some(f) = queue.pop_front() {
            for c in self.callees(f) {
                if seen.insert(c) {
                    queue.push_back(c);
                }
            }
        }
        seen.into_iter().collect()
    }

    // ---- points-to helpers ------------------------------------------------

    fn pts_of(&self, f: FuncId, op: Option<Operand>) -> BTreeSet<pmalias::ObjId> {
        op.and_then(Operand::as_value)
            .map(|v| self.alias.points_to(f, v).iter().copied().collect())
            .unwrap_or_default()
    }

    fn is_pm_target(&self, f: FuncId, addr: Option<Operand>) -> bool {
        self.pts_of(f, addr)
            .iter()
            .any(|&o| self.alias.object(o).kind == ObjKind::Pm)
    }

    // ---- flush effects ----------------------------------------------------

    fn eff_table(&self, f: FuncId, res: &mut Resolver<'_>) -> EffTable {
        let func = self.m.function(f);
        let mut effs = vec![];
        let mut by_inst = HashMap::new();
        for (_, i) in func.linked_insts() {
            let start = effs.len();
            match &func.inst(i).op {
                Op::Flush { kind, addr } => {
                    effs.push(FlushEff {
                        loc: Some(res.resolve(*addr)),
                        pts: self.pts_of(f, Some(*addr)),
                        extent: Extent::Line,
                        durable: !kind.is_weakly_ordered(),
                    });
                }
                Op::Call { callee, args } => {
                    let ret = func.inst(i).result;
                    for ce in &self.summaries[callee].flushes {
                        effs.push(FlushEff {
                            loc: ce.loc.as_ref().and_then(|l| rebase(l, args, ret, res)),
                            pts: ce.pts.clone(),
                            extent: FnSummary::map_extent(ce.extent, args, res),
                            durable: ce.durable,
                        });
                    }
                }
                _ => {}
            }
            if effs.len() > start {
                by_inst.insert(i, (start, effs.len()));
            }
        }
        EffTable { effs, by_inst }
    }

    fn cover_of(&self, eff: &FlushEff, fact: &Fact) -> Cover {
        if let (Some(el), Some(fl)) = (&eff.loc, &fact.loc) {
            if el.base == fl.base {
                return match (el.offset, fl.offset) {
                    (Some(eo), Some(fo)) => {
                        let len = fact.len.unwrap_or(1).max(1) as i64;
                        match cover_interval(eo, eff.extent) {
                            Some((lo, hi)) => {
                                if fo >= lo && fo + len <= hi {
                                    Cover::Must
                                } else {
                                    Cover::No
                                }
                            }
                            // Unbounded range-flush from a known start.
                            None => {
                                if fo >= eo.div_euclid(64) * 64 {
                                    Cover::May
                                } else {
                                    Cover::No
                                }
                            }
                        }
                    }
                    // Unknown-start flush over the same base: optimistic.
                    (None, _) => Cover::May,
                    // A line- or byte-bounded flush at a known offset says
                    // nothing about a store at an unknown offset; an
                    // unbounded one optimistically covers it.
                    (Some(_), None) => match cover_interval(0, eff.extent) {
                        Some(_) => Cover::No,
                        None => Cover::May,
                    },
                };
            }
            // Two distinct structural bases: trust the structure.
            return Cover::No;
        }
        // No structure on one side: fall back to may-alias on objects — but
        // a line- or byte-bounded flush at a known structural offset is
        // about one specific range, and cannot retire a fact whose address
        // was lost (same reasoning as the `(Some, None)` arm above).
        let eff_bounded = eff
            .loc
            .as_ref()
            .is_some_and(|l| l.offset.is_some() && cover_interval(0, eff.extent).is_some());
        if !eff_bounded && !eff.pts.is_empty() && !fact.pts.is_disjoint(&eff.pts) {
            Cover::May
        } else {
            Cover::No
        }
    }

    fn apply_eff(&self, eff: &FlushEff, state: &mut State) {
        for fact in state.facts.values_mut() {
            if self.cover_of(eff, fact) != Cover::No {
                fact.state = match (eff.durable, fact.state) {
                    (true, _) => PState::Durable,
                    (false, PState::Durable) => PState::Durable,
                    (false, _) => PState::Pending,
                };
            }
        }
    }

    fn apply_fence(state: &mut State) {
        for fact in state.facts.values_mut() {
            if fact.state == PState::Pending {
                fact.state = PState::Durable;
            }
            fact.fence_seen = true;
        }
        state.fenced = true;
    }

    // ---- transfer ---------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn transfer_inst(
        &self,
        f: FuncId,
        i: InstId,
        state: &mut State,
        res: &mut Resolver<'_>,
        effs: &EffTable,
        is_entry: bool,
        doms: &Dominators,
        block: BlockId,
        sink: Option<&mut Sink>,
    ) {
        let func = self.m.function(f);
        let op = &func.inst(i).op;
        match op {
            Op::Store { ty, addr, .. } if self.is_pm_target(f, Some(*addr)) => {
                self.new_fact(f, i, *addr, Some(ty.size()), state, res);
            }
            Op::Memcpy { dst, len, .. } | Op::Memset { dst, len, .. }
                if self.is_pm_target(f, Some(*dst)) =>
            {
                let n = const_of(*len).and_then(|c| u64::try_from(c).ok());
                self.new_fact(f, i, *dst, n, state, res);
            }
            Op::Flush { .. } => {
                let (lo, hi) = effs.by_inst[&i];
                if let Some(sink) = sink {
                    self.check_redundant(f, i, &effs.effs[lo], state, doms, block, sink);
                }
                for k in lo..hi {
                    self.apply_eff(&effs.effs[k], state);
                    state.applied.insert(k);
                }
            }
            Op::Fence { .. } => Self::apply_fence(state),
            Op::Call { callee, args } => {
                let summary = &self.summaries[callee];
                if summary.has_checkpoint {
                    if let Some(sink) = sink {
                        let cp = Checkpoint::CrashPoint(sink.next_checkpoint);
                        sink.next_checkpoint += 1;
                        self.audit(state, cp, sink);
                    }
                }
                if let Some(&(lo, hi)) = effs.by_inst.get(&i) {
                    for k in lo..hi {
                        self.apply_eff(&effs.effs[k], state);
                        state.applied.insert(k);
                    }
                }
                if summary.fences_all_paths {
                    Self::apply_fence(state);
                }
                let ret = func.inst(i).result;
                for r in &summary.residual {
                    // Narrow by call site: a residual rooted directly at a
                    // parameter only matters here if the *actual* argument
                    // can reach PM (shared volatile/persistent helpers like
                    // a common copy routine otherwise leak phantom facts
                    // into their volatile call sites).
                    let mut pts = r.pts.clone();
                    if let Some(crate::loc::Base::Arg(j)) = r.loc.as_ref().map(|l| &l.base) {
                        let apts = self.pts_of(f, args.get(*j as usize).copied());
                        if !apts.is_empty() {
                            if !apts
                                .iter()
                                .any(|&o| self.alias.object(o).kind == ObjKind::Pm)
                            {
                                continue;
                            }
                            pts = apts;
                        }
                    }
                    let key = FactKey {
                        origin: r.origin,
                        via: Some(i),
                    };
                    let fact = Fact {
                        loc: r.loc.as_ref().and_then(|l| rebase(l, args, ret, res)),
                        pts,
                        len: r.len,
                        state: r.state,
                        fence_seen: r.fence_seen,
                    };
                    match state.facts.get_mut(&key) {
                        Some(mine) => mine.join(&fact),
                        None => {
                            state.facts.insert(key, fact);
                        }
                    }
                }
            }
            Op::CrashPoint => {
                if let Some(sink) = sink {
                    let cp = Checkpoint::CrashPoint(sink.next_checkpoint);
                    sink.next_checkpoint += 1;
                    self.audit(state, cp, sink);
                }
            }
            Op::Ret { .. } if is_entry => {
                if let Some(sink) = sink {
                    self.audit(state, Checkpoint::ProgramEnd, sink);
                }
            }
            _ => {}
        }
    }

    fn new_fact(
        &self,
        f: FuncId,
        i: InstId,
        addr: Operand,
        len: Option<u64>,
        state: &mut State,
        res: &mut Resolver<'_>,
    ) {
        let key = FactKey {
            origin: (f, i),
            via: None,
        };
        state.facts.insert(
            key,
            Fact {
                loc: Some(res.resolve(addr)),
                pts: self.pts_of(f, Some(addr)),
                len,
                state: PState::Dirty,
                fence_seen: false,
            },
        );
    }

    // ---- dataflow ---------------------------------------------------------

    /// Runs the block fixpoint for `f` and returns the converged block-entry
    /// states (unreachable blocks stay `reached: false`).
    fn block_states(&self, f: FuncId, effs: &EffTable, doms: &Dominators, cfg: &Cfg) -> Vec<State> {
        let func = self.m.function(f);
        let mut input: Vec<State> = vec![State::default(); func.block_count()];
        input[func.entry().0 as usize] = State::entry();
        let rpo: Vec<BlockId> = cfg.reverse_postorder().to_vec();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if !input[b.0 as usize].reached {
                    continue;
                }
                let mut state = input[b.0 as usize].clone();
                let mut res = Resolver::new(func);
                for &i in &func.block(b).insts {
                    self.transfer_inst(f, i, &mut state, &mut res, effs, false, doms, b, None);
                }
                for &s in cfg.succs(b) {
                    changed |= input[s.0 as usize].join(&state);
                }
            }
        }
        input
    }

    /// Computes one function's summary against the current summary table.
    fn summarize(&self, f: FuncId) -> FnSummary {
        let func = self.m.function(f);
        let cfg = Cfg::of(func);
        let doms = Dominators::compute(&cfg, func.entry());
        let mut res = Resolver::new(func);
        let effs = self.eff_table(f, &mut res);
        let input = self.block_states(f, &effs, &doms, &cfg);

        let mut has_checkpoint = false;
        for (_, i) in func.linked_insts() {
            match &func.inst(i).op {
                Op::CrashPoint => has_checkpoint = true,
                Op::Call { callee, .. } if self.summaries[callee].has_checkpoint => {
                    has_checkpoint = true
                }
                _ => {}
            }
        }

        // Walk each block once more to the returns, collecting the state
        // right before every `ret`.
        let mut ret_states: Vec<State> = vec![];
        for b in func.block_ids() {
            if !input[b.0 as usize].reached {
                continue;
            }
            let mut state = input[b.0 as usize].clone();
            let mut res = Resolver::new(func);
            for &i in &func.block(b).insts {
                if let Op::Ret { value } = &func.inst(i).op {
                    let mut at_ret = state.clone();
                    if let Some(v) = value {
                        reroot_to_ret(&mut at_ret, res.resolve(*v));
                    }
                    ret_states.push(at_ret);
                }
                self.transfer_inst(f, i, &mut state, &mut res, &effs, false, &doms, b, None);
            }
        }

        let fences_all_paths = !ret_states.is_empty() && ret_states.iter().all(|s| s.fenced);
        // Must-flushes modulo empty-range guards: intersect the applied sets
        // of the return paths that flushed anything at all.
        let mut applied: Option<BTreeSet<usize>> = None;
        for s in ret_states.iter().filter(|s| !s.applied.is_empty()) {
            applied = Some(match applied {
                None => s.applied.clone(),
                Some(a) => a.intersection(&s.applied).copied().collect(),
            });
        }
        // Sort and deduplicate: a recursive callee's effects re-imported
        // each round would otherwise accumulate syntactic duplicates
        // (`[e]` vs `[e, e]`) and keep the fixpoint from ever comparing
        // equal.
        let mut flushes: Vec<FlushEff> = applied
            .unwrap_or_default()
            .into_iter()
            .map(|k| export_eff(&effs.effs[k], func))
            .collect();
        flushes.sort();
        flushes.dedup();

        // Residual: the join of all return states, minus durable facts.
        let mut joined = State::default();
        for s in &ret_states {
            joined.join(s);
        }
        let mut residual: Vec<ResidualFact> = joined
            .facts
            .into_iter()
            .filter(|(_, fact)| !fact.state.is_durable())
            .map(|(key, fact)| ResidualFact {
                origin: key.origin,
                loc: fact.loc,
                pts: fact.pts,
                len: fact.len,
                state: fact.state,
                fence_seen: fact.fence_seen,
            })
            .collect();
        residual.sort();
        residual.dedup();

        FnSummary {
            flushes,
            fences_all_paths,
            has_checkpoint,
            residual,
        }
    }

    // ---- emission ---------------------------------------------------------

    fn emit_function(&self, f: FuncId, is_entry: bool, sink: &mut Sink) {
        let func = self.m.function(f);
        let cfg = Cfg::of(func);
        let doms = Dominators::compute(&cfg, func.entry());
        let mut res = Resolver::new(func);
        let effs = self.eff_table(f, &mut res);
        let input = self.block_states(f, &effs, &doms, &cfg);
        for &b in cfg.reverse_postorder() {
            if !input[b.0 as usize].reached {
                continue;
            }
            let mut state = input[b.0 as usize].clone();
            let mut res = Resolver::new(func);
            for &i in &func.block(b).insts {
                self.transfer_inst(
                    f,
                    i,
                    &mut state,
                    &mut res,
                    &effs,
                    is_entry,
                    &doms,
                    b,
                    Some(sink),
                );
            }
        }
    }

    fn audit(&self, state: &State, checkpoint: Checkpoint, sink: &mut Sink) {
        for (key, fact) in &state.facts {
            let kind = match fact.state {
                PState::Durable => continue,
                PState::Pending => BugKind::MissingFence,
                PState::Dirty | PState::MaybeDirty => {
                    if fact.fence_seen {
                        BugKind::MissingFlush
                    } else {
                        BugKind::MissingFlushFence
                    }
                }
            };
            if !sink.emitted.insert((key.origin, kind, checkpoint)) {
                continue;
            }
            let (of, oi) = key.origin;
            let ofunc = self.m.function(of);
            sink.bugs.push(Bug {
                kind,
                addr: 0,
                len: fact.len.unwrap_or(0),
                store_at: Some(IrRef {
                    function: ofunc.name().to_string(),
                    inst: oi.0,
                }),
                store_loc: ofunc.inst(oi).loc.map(|l| TraceLoc {
                    file: self.m.file_name(l.file).to_string(),
                    line: l.line,
                    col: l.col,
                }),
                stack: vec![],
                store_seq: 0,
                checkpoint,
                unflushed_lines: vec![],
            });
        }
    }

    /// Reports a flush as redundant when that is statically provable: the
    /// flushed pointer cannot reach PM at all, or every store it may cover
    /// is already flushed and at least one provably-covered store dominates
    /// the flush (so on *every* execution reaching it, the flush hits only
    /// clean lines).
    #[allow(clippy::too_many_arguments)]
    fn check_redundant(
        &self,
        f: FuncId,
        i: InstId,
        eff: &FlushEff,
        state: &State,
        doms: &Dominators,
        block: BlockId,
        sink: &mut Sink,
    ) {
        let func = self.m.function(f);
        let non_pm = !eff.pts.is_empty()
            && !eff
                .pts
                .iter()
                .any(|&o| self.alias.object(o).kind == ObjKind::Pm);
        let redundant = non_pm || {
            let mut must_dominated = false;
            let mut all_clean = true;
            for (key, fact) in &state.facts {
                match self.cover_of(eff, fact) {
                    Cover::No => {}
                    cover => {
                        if !matches!(fact.state, PState::Pending | PState::Durable) {
                            all_clean = false;
                            break;
                        }
                        if cover == Cover::Must {
                            let origin_block = match key.via {
                                Some(call) => func.find_inst_pos(call).map(|(b, _)| b),
                                None if key.origin.0 == f => {
                                    func.find_inst_pos(key.origin.1).map(|(b, _)| b)
                                }
                                None => None,
                            };
                            if origin_block.is_some_and(|ob| doms.dominates(ob, block)) {
                                must_dominated = true;
                            }
                        }
                    }
                }
            }
            must_dominated && all_clean
        };
        if redundant {
            sink.redundant.push(pmcheck::bug::RedundantFlush {
                addr: 0,
                at: Some(IrRef {
                    function: func.name().to_string(),
                    inst: i.0,
                }),
                loc: func.inst(i).loc.map(|l| TraceLoc {
                    file: self.m.file_name(l.file).to_string(),
                    line: l.line,
                    col: l.col,
                }),
                seq: 0,
            });
        }
    }
}

/// Prepares a flush effect for export into the function's summary: an
/// unknown-offset flush is the range-flush-loop idiom (`clwb(p + i)`),
/// assumed to start at the pointer it is rooted in and extend for the
/// helper's single integer parameter when there is exactly one.
fn export_eff(eff: &FlushEff, func: &pmir::Function) -> FlushEff {
    let mut out = eff.clone();
    if let Some(l) = &out.loc {
        if l.offset.is_none() {
            out.loc = Some(Loc {
                base: l.base.clone(),
                offset: Some(0),
            });
            let int_params: Vec<u32> = func
                .params()
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t, pmir::Type::Int(_)))
                .map(|(j, _)| j as u32)
                .collect();
            out.extent = match int_params.as_slice() {
                [j] => Extent::Param(*j),
                _ => Extent::Unknown,
            };
        }
    }
    out
}

/// Re-expresses facts rooted at the returned pointer's base against
/// [`Base::Ret`](crate::loc::Base), so the `it = item_alloc(...)` idiom —
/// stores into a freshly produced pointer handed back to the caller — stays
/// structural across the call boundary instead of degrading to the
/// points-to fallback (where any same-object flush would spuriously retire
/// it).
fn reroot_to_ret(state: &mut State, retloc: Loc) {
    let Some(ro) = retloc.offset else { return };
    for fact in state.facts.values_mut() {
        if let Some(l) = &fact.loc {
            if l.base == retloc.base {
                if let Some(fo) = l.offset {
                    fact.loc = Some(Loc {
                        base: crate::loc::Base::Ret,
                        offset: Some(fo - ro),
                    });
                }
            }
        }
    }
}

fn store_addr_of(op: &Op) -> Option<Operand> {
    match op {
        Op::Store { addr, .. } => Some(*addr),
        Op::Memcpy { dst, .. } | Op::Memset { dst, .. } => Some(*dst),
        _ => None,
    }
}

/// Convenience wrapper: analyze `m` and check it from `entry`.
///
/// # Errors
///
/// Fails when `entry` names no function.
pub fn check_module(m: &Module, entry: &str) -> Result<CheckReport, StaticError> {
    check_module_obs(m, entry, &pmobs::Obs::default())
}

/// [`check_module`] with telemetry: records the `static.check` span plus
/// `static.fixpoint_iterations`, `static.summaries_computed`,
/// `static.functions_checked`, and `static.bugs` counters into `obs`.
///
/// # Errors
///
/// Fails when `entry` names no function.
pub fn check_module_obs(
    m: &Module,
    entry: &str,
    obs: &pmobs::Obs,
) -> Result<CheckReport, StaticError> {
    check_module_budgeted(m, entry, obs, &pmtx::Budget::unlimited())
}

/// [`check_module_obs`] under a cooperative [`pmtx::Budget`]: the budget is
/// checked at the stage boundaries (before the alias/summary fixpoint and
/// before report emission), so an exhausted budget stops the checker between
/// stages rather than mid-fixpoint.
///
/// # Errors
///
/// Fails when `entry` names no function or the budget is exhausted (the
/// error message then starts with `cancelled:`, letting callers degrade the
/// static source instead of treating it as a checker defect).
pub fn check_module_budgeted(
    m: &Module,
    entry: &str,
    obs: &pmobs::Obs,
    budget: &pmtx::Budget,
) -> Result<CheckReport, StaticError> {
    let _span = obs.span("static.check");
    let cancelled = |e: pmtx::BudgetExceeded| StaticError {
        message: format!("cancelled: {e}"),
    };
    budget.check().map_err(cancelled)?;
    let checker = StaticChecker::new(m);
    obs.add("static.fixpoint_iterations", checker.fixpoint_rounds());
    obs.add("static.summaries_computed", checker.summaries_computed());
    obs.add("static.sccs_widened", checker.sccs_widened());
    budget.check().map_err(cancelled)?;
    let report = checker.check(entry)?;
    obs.add("static.functions_checked", m.func_ids().count() as u64);
    obs.add("static.bugs", report.bugs.len() as u64);
    Ok(report)
}
