//! The persistence lattice and the abstract state.

use crate::loc::Loc;
use pmalias::ObjId;
use pmir::{FuncId, InstId};
use std::collections::{BTreeMap, BTreeSet};

/// Abstract durability of one tracked PM store — the checker's lattice.
///
/// ```text
///        MaybeDirty          (⊤: unflushed on some path)
///        /        \
///     Dirty     Pending      (definitely unflushed / flushed, unfenced)
///        \        /
///         Durable            (⊥: flushed and fenced, or strongly flushed)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PState {
    /// Flushed and ordered by a fence (or strongly flushed): durable.
    Durable,
    /// Flushed by a weakly-ordered flush, awaiting a fence.
    Pending,
    /// Stored and never flushed on any path reaching here.
    Dirty,
    /// Unflushed on at least one (but not every) path: the join of `Dirty`
    /// with anything else.
    MaybeDirty,
}

impl PState {
    /// The least upper bound of two states.
    pub fn join(self, other: PState) -> PState {
        use PState::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Durable, Pending) | (Pending, Durable) => Pending,
            _ => MaybeDirty,
        }
    }

    /// Whether the store is durable (nothing to report).
    pub fn is_durable(self) -> bool {
        matches!(self, PState::Durable)
    }
}

/// Identity of a tracked store within one function's analysis.
///
/// `origin` names the actual store instruction (what a repair must anchor
/// at). `via` is the call instruction *in the currently analyzed function*
/// through which an inherited (residual) fact arrived — `None` for local
/// stores. Keeping the call edge in the key lets the same callee store keep
/// distinct, separately-rebased addresses per call site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FactKey {
    /// The store instruction this fact tracks.
    pub origin: (FuncId, InstId),
    /// The local call site an inherited fact arrived through.
    pub via: Option<InstId>,
}

/// One tracked PM store and its abstract durability.
#[derive(Debug, Clone, PartialEq)]
pub struct Fact {
    /// Structural address of the stored range, in the *current* function's
    /// address space (`None` once rebasing failed across a call boundary).
    pub loc: Option<Loc>,
    /// Points-to set of the stored-to pointer (module-global object ids).
    pub pts: BTreeSet<ObjId>,
    /// Length of the stored range, when constant.
    pub len: Option<u64>,
    /// Lattice state.
    pub state: PState,
    /// Whether a fence has executed since the store on *every* path from
    /// the store to here (joined with AND: classification as missing-flush
    /// rather than missing-flush&fence must hold on all paths).
    pub fence_seen: bool,
}

impl Fact {
    /// Joins another fact for the same key into this one.
    pub fn join(&mut self, other: &Fact) {
        if self.loc != other.loc {
            self.loc = None;
        }
        self.pts.extend(other.pts.iter().copied());
        if self.len != other.len {
            self.len = None;
        }
        self.state = self.state.join(other.state);
        self.fence_seen &= other.fence_seen;
    }
}

/// The abstract state at a program point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct State {
    /// Tracked stores, keyed by origin (and arrival call edge).
    pub facts: BTreeMap<FactKey, Fact>,
    /// Whether a fence has executed on every path from function entry
    /// (feeds the callee-fences-on-all-paths summary bit).
    pub fenced: bool,
    /// Set of flush effects (indices into the per-function effect table)
    /// applied on every path from function entry (feeds the must-flush
    /// summary).
    pub applied: BTreeSet<usize>,
    /// Whether this state has been initialized by a predecessor (joining an
    /// uninitialized state is the identity).
    pub reached: bool,
}

impl State {
    /// The state at function entry.
    pub fn entry() -> State {
        State {
            facts: BTreeMap::new(),
            fenced: false,
            applied: BTreeSet::new(),
            reached: true,
        }
    }

    /// Joins `other` into `self`; returns whether `self` changed.
    pub fn join(&mut self, other: &State) -> bool {
        if !other.reached {
            return false;
        }
        if !self.reached {
            *self = other.clone();
            return true;
        }
        let before = self.clone();
        for (k, f) in &other.facts {
            match self.facts.get_mut(k) {
                Some(mine) => mine.join(f),
                None => {
                    self.facts.insert(k.clone(), f.clone());
                }
            }
        }
        self.fenced &= other.fenced;
        self.applied = self.applied.intersection(&other.applied).copied().collect();
        *self != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_join_table() {
        use PState::*;
        assert_eq!(Durable.join(Durable), Durable);
        assert_eq!(Durable.join(Pending), Pending);
        assert_eq!(Pending.join(Durable), Pending);
        assert_eq!(Dirty.join(Durable), MaybeDirty);
        assert_eq!(Dirty.join(Pending), MaybeDirty);
        assert_eq!(MaybeDirty.join(Durable), MaybeDirty);
        assert_eq!(Dirty.join(Dirty), Dirty);
    }

    #[test]
    fn state_join_is_union_with_and_fence() {
        let key = FactKey {
            origin: (FuncId(0), InstId(3)),
            via: None,
        };
        let mk = |state, fence_seen| Fact {
            loc: None,
            pts: BTreeSet::new(),
            len: Some(8),
            state,
            fence_seen,
        };
        let mut a = State::entry();
        a.facts.insert(key.clone(), mk(PState::Dirty, true));
        let mut b = State::entry();
        b.facts.insert(key.clone(), mk(PState::Durable, false));
        assert!(a.join(&b));
        let f = &a.facts[&key];
        assert_eq!(f.state, PState::MaybeDirty);
        assert!(!f.fence_seen, "fence flag joins with AND");
    }

    use pmir::{FuncId, InstId};

    #[test]
    fn unreached_join_is_identity() {
        let mut a = State::entry();
        a.fenced = true;
        let unreached = State::default();
        assert!(!a.join(&unreached));
        assert!(a.fenced);
    }
}
