//! `pmstatic` — a flow-sensitive static persistency checker.
//!
//! Where [`pmcheck`] replays a trace of one concrete execution, `pmstatic`
//! abstractly interprets the [`pmir`] control-flow graph and reports on
//! *every* path — including branches no test input exercises. It produces
//! the same [`pmcheck::CheckReport`] shape (tagged
//! [`Provenance::Static`](pmcheck::Provenance)), so the Hippocrates repair
//! engine can consume static reports interchangeably with dynamic ones.
//!
//! # How it works
//!
//! Each PM store becomes a *fact* tracked through the persistence lattice
//! (see [`fact::PState`]): `Dirty` until a flush covers it, `Pending` until
//! a fence retires the flush, `Durable` after, with `MaybeDirty` as the
//! join of disagreeing paths. Flushes are matched against stores
//! *structurally* ([`loc::Loc`]: symbolic base + byte offset, line-rounded
//! intervals) with a points-to fallback from [`pmalias`]. Interprocedural
//! behaviour comes from bottom-up [`summary::FnSummary`]s: the flushes a
//! callee performs on every flushing return path, whether it fences on all
//! paths, and the stores it leaves non-durable (inherited and rebased into
//! the caller). Facts are audited at every `crashpoint` (own or in a
//! callee) and at the entry function's returns, and classified exactly as
//! the dynamic checker does: missing-flush, missing-fence, or
//! missing-flush&fence.
//!
//! The checker is deliberately *optimistic* where it cannot prove a bug
//! (unknown offsets, unrebasable addresses, may-alias fallback): a static
//! report is meant to be a superset of any single execution's dynamic
//! report on covered code, without drowning the repair engine in false
//! alarms. Statically *provable* redundant flushes (clean-line or
//! volatile-memory flushes) are reported as performance diagnostics.
//!
//! # Example
//!
//! ```
//! use pmstatic::check_module;
//!
//! // The store is only flushed on a branch no input may ever take — a
//! // dynamic checker that doesn't happen to execute it reports nothing.
//! let m = pmlang::compile_one(
//!     "demo.pmc",
//!     r#"
//!     fn main() {
//!         var p: ptr = pmem_map(0, 4096);
//!         var mode: int = load8(p, 128);
//!         if (mode) { store8(p, 0, 7); }
//!     }
//!     "#,
//! )
//! .unwrap();
//! let report = check_module(&m, "main").unwrap();
//! assert_eq!(report.bugs.len(), 1);
//! assert_eq!(report.bugs[0].kind, pmcheck::BugKind::MissingFlushFence);
//! ```

pub mod analyze;
pub mod fact;
pub mod loc;
pub mod summary;

pub use analyze::{
    check_module, check_module_budgeted, check_module_obs, StaticChecker, StaticError,
};
pub use fact::{Fact, FactKey, PState, State};
pub use loc::{Base, Loc, Resolver};
pub use summary::{Extent, FlushEff, FnSummary, ResidualFact};

#[cfg(test)]
mod tests {
    use super::*;
    use pmcheck::{BugKind, CheckReport, Checkpoint, Provenance};

    fn check(src: &str) -> CheckReport {
        let m = pmlang::compile_one("t.pmc", src).unwrap();
        check_module(&m, "main").unwrap()
    }

    #[test]
    fn clean_store_flush_fence() {
        let r = check(
            "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); clwb(p); sfence(); }",
        );
        assert!(r.is_clean(), "{:?}", r.bugs);
        assert_eq!(r.provenance, Provenance::Static);
        assert_eq!(r.stores_checked, 1);
        assert_eq!(r.flushes_seen, 1);
        assert_eq!(r.fences_seen, 1);
    }

    #[test]
    fn missing_fence_when_never_fenced() {
        let r = check("fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); clwb(p); }");
        assert_eq!(r.bugs.len(), 1);
        assert_eq!(r.bugs[0].kind, BugKind::MissingFence);
        assert_eq!(r.bugs[0].checkpoint, Checkpoint::ProgramEnd);
    }

    #[test]
    fn missing_flush_when_only_fenced() {
        let r = check("fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); sfence(); }");
        assert_eq!(r.bugs.len(), 1);
        assert_eq!(r.bugs[0].kind, BugKind::MissingFlush);
    }

    #[test]
    fn clflush_is_strongly_ordered() {
        let r = check("fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 0, 1); clflush(p); }");
        assert!(r.is_clean(), "{:?}", r.bugs);
    }

    #[test]
    fn unexecuted_branch_store_is_found() {
        // The dynamic checker only sees the path its one input takes; the
        // static checker audits the untaken branch too.
        let r = check(
            r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                var mode: int = load8(p, 128);
                if (mode) { store8(p, 0, 7); }
            }
            "#,
        );
        assert_eq!(r.bugs.len(), 1);
        assert_eq!(r.bugs[0].kind, BugKind::MissingFlushFence);
        assert!(r.bugs[0].store_loc.is_some(), "srcloc must be attached");
    }

    #[test]
    fn conditional_flush_joins_to_maybe_dirty() {
        let r = check(
            r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                var c: int = load8(p, 512);
                store8(p, 0, 1);
                if (c) { clwb(p); }
                sfence();
            }
            "#,
        );
        assert_eq!(r.bugs.len(), 1);
        // A fence follows on every path, so the repair only needs a flush.
        assert_eq!(r.bugs[0].kind, BugKind::MissingFlush);
    }

    #[test]
    fn interprocedural_persist_helper_covers() {
        // The libpmem idiom: a range-flush loop (statically zero-or-more
        // iterations) plus the unconditional trailing line flush, behind an
        // empty-range guard, then a fence helper — composed two deep.
        let r = check(
            r#"
            fn flushr(p: ptr, n: int) {
                if (n <= 0) { return; }
                var i: int = 0;
                while (i < n) { clwb(p + i); i = i + 64; }
                clwb(p + n - 1);
            }
            fn persist(p: ptr, n: int) { flushr(p, n); sfence(); }
            fn main() {
                var pool: ptr = pmem_map(0, 4096);
                store8(pool, 64, 9);
                persist(pool + 64, 8);
            }
            "#,
        );
        assert!(r.is_clean(), "{:?}", r.bugs);
    }

    #[test]
    fn bounded_persist_does_not_cover_other_lines() {
        // Same helper, but persisting a *different* line than was stored.
        let r = check(
            r#"
            fn flushr(p: ptr, n: int) {
                if (n <= 0) { return; }
                var i: int = 0;
                while (i < n) { clwb(p + i); i = i + 64; }
                clwb(p + n - 1);
            }
            fn persist(p: ptr, n: int) { flushr(p, n); sfence(); }
            fn main() {
                var pool: ptr = pmem_map(0, 4096);
                store8(pool, 64, 9);
                persist(pool + 256, 8);
            }
            "#,
        );
        assert_eq!(r.bugs.len(), 1);
        assert_eq!(r.bugs[0].kind, BugKind::MissingFlush);
    }

    #[test]
    fn residual_fact_names_the_callee_store() {
        let r = check(
            r#"
            fn set(p: ptr) { store8(p, 8, 5); }
            fn main() { var pool: ptr = pmem_map(0, 4096); set(pool); }
            "#,
        );
        assert_eq!(r.bugs.len(), 1);
        assert_eq!(r.bugs[0].kind, BugKind::MissingFlushFence);
        let at = r.bugs[0].store_at.as_ref().unwrap();
        assert_eq!(at.function, "set", "repair must anchor at the real store");
    }

    #[test]
    fn checkpoint_in_callee_audits_the_caller() {
        let r = check(
            r#"
            fn log() { crashpoint(); }
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                store8(p, 0, 1);
                log();
                clwb(p);
                sfence();
            }
            "#,
        );
        assert_eq!(r.bugs.len(), 1);
        assert_eq!(r.bugs[0].kind, BugKind::MissingFlushFence);
        assert!(matches!(r.bugs[0].checkpoint, Checkpoint::CrashPoint(_)));
    }

    #[test]
    fn provably_redundant_flushes_are_reported() {
        let r = check(
            r#"
            fn main() {
                var p: ptr = pmem_map(0, 4096);
                var h: ptr = alloc(64);
                store8(p, 0, 1);
                store8(h, 0, 2);
                clwb(p);
                clwb(p);
                clwb(h);
                sfence();
            }
            "#,
        );
        assert!(r.is_clean(), "{:?}", r.bugs);
        // The second clwb(p) hits a provably-clean line; clwb(h) flushes
        // volatile memory. The first clwb(p) is load-bearing.
        assert_eq!(r.redundant_flushes.len(), 2);
    }

    #[test]
    fn unknown_entry_is_an_error() {
        let m = pmlang::compile_one("t.pmc", "fn main() { }").unwrap();
        let err = check_module(&m, "nope").unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn recursive_unflushed_store_is_found() {
        // A self-recursive helper that never flushes: the summary fixpoint
        // must not bottom out optimistically and hide the store from the
        // caller's audit.
        let r = check(
            r#"
            fn fill(p: ptr, n: int) {
                if (n <= 0) { return; }
                store8(p, 0, n);
                fill(p + 64, n - 1);
            }
            fn main() {
                var pool: ptr = pmem_map(0, 4096);
                fill(pool, 3);
            }
            "#,
        );
        assert!(!r.is_clean(), "recursive dirty store must be reported");
        assert!(r.bugs.iter().any(|b| b.kind == BugKind::MissingFlushFence));
    }

    #[test]
    fn recursive_persist_helper_converges_clean() {
        // The recursive dual of the counter.pmc idiom: every frame stores,
        // flushes, and fences its own line. The sorted/deduplicated summary
        // export lets the cyclic group reach a true fixpoint instead of
        // accumulating duplicated effects until the round cap.
        let m = pmlang::compile_one(
            "t.pmc",
            r#"
            fn persist(p: ptr, n: int) {
                if (n <= 0) { return; }
                store8(p, 0, n);
                clwb(p);
                sfence();
                persist(p + 64, n - 1);
            }
            fn main() {
                var pool: ptr = pmem_map(0, 4096);
                persist(pool, 3);
            }
            "#,
        )
        .unwrap();
        let checker = StaticChecker::new(&m);
        let r = checker.check("main").unwrap();
        assert!(r.is_clean(), "{:?}", r.bugs);
    }

    #[test]
    fn mutual_recursion_reaches_a_sound_fixpoint() {
        // `even`/`odd` hand the pointer back and forth; only `odd` stores,
        // and nothing flushes. Both orders of the pair within the SCC must
        // converge (or widen) to a summary that surfaces the dirty store.
        let m = pmlang::compile_one(
            "t.pmc",
            r#"
            fn even(p: ptr, n: int) {
                if (n <= 0) { return; }
                odd(p, n - 1);
            }
            fn odd(p: ptr, n: int) {
                if (n <= 0) { return; }
                store8(p, 8, n);
                even(p + 64, n - 1);
            }
            fn main() {
                var pool: ptr = pmem_map(0, 4096);
                even(pool, 4);
            }
            "#,
        )
        .unwrap();
        let checker = StaticChecker::new(&m);
        let r = checker.check("main").unwrap();
        assert!(
            r.bugs.iter().any(|b| b.kind == BugKind::MissingFlushFence),
            "mutually-recursive dirty store must be reported: {:?}",
            r.bugs
        );
    }

    #[test]
    fn widened_groups_are_counted_not_silent() {
        // `persist` recurses on `p + 64`, so its exported flush effects
        // drift one line per round and the group can never syntactically
        // converge: the cap fires and the group is widened (counted), yet
        // the result stays sound — and clean, because every frame fences
        // its own store before recursing.
        let m = pmlang::compile_one(
            "t.pmc",
            r#"
            fn persist(p: ptr, n: int) {
                if (n <= 0) { return; }
                store8(p, 0, n);
                clwb(p);
                sfence();
                persist(p + 64, n - 1);
            }
            fn main() { var pool: ptr = pmem_map(0, 4096); persist(pool, 2); }
            "#,
        )
        .unwrap();
        let checker = StaticChecker::new(&m);
        assert_eq!(checker.sccs_widened(), 1, "drifting group must widen");

        // A recursive group without flush drift converges to a true
        // fixpoint: the keyed residual joins collapse the rebased
        // addresses, and no widening is needed.
        let m2 = pmlang::compile_one(
            "t.pmc",
            r#"
            fn fill(p: ptr, n: int) {
                if (n <= 0) { return; }
                store8(p, 0, n);
                fill(p + 64, n - 1);
            }
            fn main() { var pool: ptr = pmem_map(0, 4096); fill(pool, 3); }
            "#,
        )
        .unwrap();
        let checker2 = StaticChecker::new(&m2);
        assert_eq!(checker2.sccs_widened(), 0, "non-drifting group converges");
    }
}
