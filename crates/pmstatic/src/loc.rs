//! Structural abstract addresses.
//!
//! The checker matches flushes against stores *structurally*: an address is
//! resolved to a symbolic base plus a byte offset by walking the value
//! definitions backwards through `gep` chains and loads. Loads are folded
//! into [`Base::Slot`] so the two loads a `pmlang` variable reference
//! lowers to (`store8(p, 8, v)` and `clwb(p + 8)` both reload `p` from its
//! stack slot) resolve to the *same* base. This is flow-insensitive — a
//! reassignment of the variable between the two uses is not observed — which
//! errs on the side of treating a flush as covering, exactly like the
//! optimistic object-level fallback.

use pmir::{Function, GlobalId, InstId, Op, Operand, ValueId, ValueKind};
use std::collections::HashMap;

/// The symbolic root of an abstract address.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Base {
    /// An absolute (constant) address.
    Abs,
    /// The `n`-th parameter of the containing function. The only base that
    /// can be rebased into a caller's address space at a call site.
    Arg(u32),
    /// The result of a base-producing instruction in the containing
    /// function (`alloca`, `pmem_map`, `heap_alloc`, a call, arithmetic …).
    Anchor(InstId),
    /// The pointer the containing function *returns*. Residual facts rooted
    /// at the returned pointer (the `it = item_alloc(...)` idiom: stores
    /// into freshly allocated memory handed back to the caller) are
    /// re-expressed against this base so the caller can rebase them onto
    /// the call's result value.
    Ret,
    /// The address of a module global (comparable across functions).
    Global(GlobalId),
    /// The pointer value *loaded from* the given location — the base a
    /// `pmlang` `var` use resolves to.
    Slot(Box<Loc>),
}

/// A structural abstract address: a base and an optional byte offset
/// (`None` when the offset is not a compile-time constant).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    /// Symbolic root.
    pub base: Base,
    /// Constant byte offset from the root, when known.
    pub offset: Option<i64>,
}

impl Loc {
    /// An address at a known offset from a base.
    pub fn at(base: Base, offset: i64) -> Self {
        Loc {
            base,
            offset: Some(offset),
        }
    }

    /// Shifts the offset by a (possibly unknown) delta.
    pub fn shifted(&self, delta: Option<i64>) -> Self {
        Loc {
            base: self.base.clone(),
            offset: match (self.offset, delta) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            },
        }
    }
}

/// Memoizing resolver of operands to [`Loc`]s within one function.
pub struct Resolver<'a> {
    f: &'a Function,
    memo: HashMap<ValueId, Loc>,
    /// For each value used as a store address: the operands stored to it
    /// (syntactic, for single-store slot forwarding). Built lazily.
    slot_stores: Option<HashMap<ValueId, Vec<Operand>>>,
    /// Loads currently being resolved (cycle guard for forwarding).
    active: std::collections::HashSet<ValueId>,
}

impl<'a> Resolver<'a> {
    /// Creates a resolver for `f`.
    pub fn new(f: &'a Function) -> Self {
        Resolver {
            f,
            memo: HashMap::new(),
            slot_stores: None,
            active: std::collections::HashSet::new(),
        }
    }

    /// The value stored to `slot`, when the function stores to it exactly
    /// once. `pmlang` spills every variable and parameter to an `alloca`
    /// slot; forwarding the unique store makes the two loads a `store8(p,
    /// ..)` / `clwb(p + ..)` pair lowers to resolve to the value's *origin*
    /// (a parameter, a `pmem_map`, …) — in particular to a rebasable
    /// [`Base::Arg`] for spilled parameters. A slot with several stores (a
    /// reassigned variable) keeps the opaque [`Base::Slot`] form.
    fn unique_store_to(&mut self, slot: ValueId) -> Option<Operand> {
        if self.slot_stores.is_none() {
            let mut map: HashMap<ValueId, Vec<Operand>> = HashMap::new();
            for (_, i) in self.f.linked_insts() {
                if let Op::Store { addr, value, .. } = self.f.inst(i).op {
                    if let Some(v) = addr.as_value() {
                        map.entry(v).or_default().push(value);
                    }
                }
            }
            self.slot_stores = Some(map);
        }
        match self
            .slot_stores
            .as_ref()
            .unwrap()
            .get(&slot)
            .map(Vec::as_slice)
        {
            Some(&[v]) => Some(v),
            _ => None,
        }
    }

    /// Resolves an operand to its structural address.
    pub fn resolve(&mut self, op: Operand) -> Loc {
        match op {
            Operand::Const(c) => Loc::at(Base::Abs, c),
            Operand::Null => Loc::at(Base::Abs, 0),
            Operand::Value(v) => self.resolve_value(v),
        }
    }

    fn resolve_value(&mut self, v: ValueId) -> Loc {
        if let Some(l) = self.memo.get(&v) {
            return l.clone();
        }
        let loc = match self.f.value(v).kind {
            ValueKind::Arg(i) => Loc::at(Base::Arg(i), 0),
            ValueKind::Inst(i) => match &self.f.inst(i).op {
                Op::Gep { base, offset } => {
                    let b = self.resolve(*base);
                    b.shifted(const_of(*offset))
                }
                Op::Load { addr, .. } => {
                    let addr = *addr;
                    let forwarded =
                        addr.as_value()
                            .filter(|_| self.active.insert(v))
                            .and_then(|slot| {
                                let fwd = self.unique_store_to(slot).map(|s| self.resolve(s));
                                self.active.remove(&v);
                                fwd
                            });
                    match forwarded {
                        Some(l) => l,
                        None => {
                            let a = self.resolve(addr);
                            Loc::at(Base::Slot(Box::new(a)), 0)
                        }
                    }
                }
                Op::GlobalAddr { global } => Loc::at(Base::Global(*global), 0),
                _ => Loc::at(Base::Anchor(i), 0),
            },
        };
        self.memo.insert(v, loc.clone());
        loc
    }
}

/// The constant value of an operand, if it is one.
pub fn const_of(op: Operand) -> Option<i64> {
    match op {
        Operand::Const(c) => Some(c),
        _ => None,
    }
}

/// Rewrites a callee-space address into the caller's address space at a
/// call site: `Arg(i)` leaves are substituted with the resolved `i`-th
/// actual argument, and [`Base::Ret`] with the call's result value
/// (`ret`). Returns `None` when the address is rooted in callee-local
/// state (an [`Base::Anchor`]) and has no caller meaning.
pub fn rebase(
    loc: &Loc,
    args: &[Operand],
    ret: Option<ValueId>,
    res: &mut Resolver<'_>,
) -> Option<Loc> {
    match &loc.base {
        Base::Arg(i) => {
            let actual = res.resolve(*args.get(*i as usize)?);
            Some(actual.shifted(loc.offset))
        }
        Base::Ret => {
            let actual = res.resolve(Operand::Value(ret?));
            Some(actual.shifted(loc.offset))
        }
        Base::Slot(inner) => {
            let inner = rebase(inner, args, ret, res)?;
            Some(Loc {
                base: Base::Slot(Box::new(inner)),
                offset: loc.offset,
            })
        }
        Base::Abs => Some(loc.clone()),
        Base::Global(g) => Some(Loc {
            base: Base::Global(*g),
            offset: loc.offset,
        }),
        Base::Anchor(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_loads_share_a_base() {
        // fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 8, 1); clwb(p + 8); }
        let m = pmlang::compile_one(
            "t.pmc",
            "fn main() { var p: ptr = pmem_map(0, 4096); store8(p, 8, 1); clwb(p + 8); }",
        )
        .unwrap();
        let f = m.function(m.function_by_name("main").unwrap());
        let mut res = Resolver::new(f);
        let mut store_loc = None;
        let mut flush_loc = None;
        for (_, i) in f.linked_insts() {
            match &f.inst(i).op {
                Op::Store { addr, .. } => store_loc = Some(res.resolve(*addr)),
                Op::Flush { addr, .. } => flush_loc = Some(res.resolve(*addr)),
                _ => {}
            }
        }
        let (s, fl) = (store_loc.unwrap(), flush_loc.unwrap());
        assert_eq!(s.base, fl.base, "both uses of `p` resolve to one slot");
        assert_eq!(s.offset, Some(8));
        assert_eq!(fl.offset, Some(8));
    }

    #[test]
    fn rebase_substitutes_args() {
        // callee(q) stores at q+16; the caller passes p+64: the rebased
        // address is p's slot + 80.
        let m = pmlang::compile_one(
            "t.pmc",
            r#"
            fn callee(q: ptr) { store8(q, 16, 1); }
            fn main() { var p: ptr = pmem_map(0, 4096); callee(p + 64); }
            "#,
        )
        .unwrap();
        let callee = m.function(m.function_by_name("callee").unwrap());
        let mut cres = Resolver::new(callee);
        let store_loc = callee
            .linked_insts()
            .find_map(|(_, i)| match &callee.inst(i).op {
                // Skip the `store.ptr` that spills the parameter; the PM
                // store is the `store.i64`.
                Op::Store { ty, addr, .. } if *ty == pmir::Type::int(8) => {
                    Some(cres.resolve(*addr))
                }
                _ => None,
            })
            .unwrap();
        assert_eq!(store_loc.base, Base::Arg(0));
        assert_eq!(store_loc.offset, Some(16));

        let main = m.function(m.function_by_name("main").unwrap());
        let mut mres = Resolver::new(main);
        let args = main
            .linked_insts()
            .find_map(|(_, i)| match &main.inst(i).op {
                Op::Call { args, .. } => Some(args.clone()),
                _ => None,
            })
            .unwrap();
        let rebased = rebase(&store_loc, &args, None, &mut mres).unwrap();
        assert_eq!(rebased.offset, Some(80));
        // `p` forwards through its single-store slot to the `pmem_map`.
        assert!(matches!(rebased.base, Base::Anchor(_)));
    }
}
