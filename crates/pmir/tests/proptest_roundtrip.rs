//! Property tests: randomly generated modules verify, print, parse back,
//! and reach a printing fixed point; randomly applied safe rewrites keep
//! the module well-formed.

use pmir::{rewrite, BinOp, CmpPred, FenceKind, FlushKind, FunctionBuilder, Module, Op, Type};
use proptest::prelude::*;

/// An abstract instruction recipe for random straight-line functions.
#[derive(Debug, Clone)]
enum Recipe {
    Bin(u8, i64, i64),
    Cmp(u8, i64, i64),
    Alloca(u8),
    HeapAlloc(u16),
    PmemMap(u8),
    StoreToLastPtr(i64, u8),
    LoadFromLastPtr(u8),
    GepLastPtr(i64),
    FlushLastPtr(u8),
    Fence(bool),
    Memset(u8),
    Print,
    CrashPoint,
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    prop_oneof![
        (0u8..13, any::<i64>(), any::<i64>()).prop_map(|(o, a, b)| Recipe::Bin(o, a, b)),
        (0u8..10, any::<i64>(), any::<i64>()).prop_map(|(p, a, b)| Recipe::Cmp(p, a, b)),
        (1u8..65).prop_map(Recipe::Alloca),
        (1u16..257).prop_map(Recipe::HeapAlloc),
        (0u8..4).prop_map(Recipe::PmemMap),
        (any::<i64>(), 0u8..3).prop_map(|(v, w)| Recipe::StoreToLastPtr(v, w)),
        (0u8..3).prop_map(Recipe::LoadFromLastPtr),
        (0i64..32).prop_map(Recipe::GepLastPtr),
        (0u8..3).prop_map(Recipe::FlushLastPtr),
        any::<bool>().prop_map(Recipe::Fence),
        (1u8..17).prop_map(Recipe::Memset),
        Just(Recipe::Print),
        Just(Recipe::CrashPoint),
    ]
}

const BIN_OPS: [BinOp; 13] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::SDiv,
    BinOp::SRem,
    BinOp::UDiv,
    BinOp::URem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::LShr,
    BinOp::AShr,
];
const PREDS: [CmpPred; 10] = [
    CmpPred::Eq,
    CmpPred::Ne,
    CmpPred::SLt,
    CmpPred::SLe,
    CmpPred::SGt,
    CmpPred::SGe,
    CmpPred::ULt,
    CmpPred::ULe,
    CmpPred::UGt,
    CmpPred::UGe,
];
const WIDTHS: [u8; 3] = [1, 4, 8];

/// Materializes a straight-line `main` from recipes. Pointer-consuming
/// recipes fall back to a guaranteed alloca when no pointer exists yet.
fn build(recipes: &[Recipe]) -> Module {
    let mut m = Module::new();
    let f = m.declare_function("main", vec![], Type::Void);
    let mut b = FunctionBuilder::new(&mut m, f);
    let e = b.entry_block();
    b.switch_to(e);
    let base = b.alloca(64);
    let mut last_ptr = base;
    let mut last_int: Option<pmir::ValueId> = None;
    for r in recipes {
        match r {
            Recipe::Bin(o, x, y) => {
                // Avoid div-by-zero traps so every generated program runs.
                let op = BIN_OPS[*o as usize % BIN_OPS.len()];
                let y = if matches!(op, BinOp::SDiv | BinOp::SRem | BinOp::UDiv | BinOp::URem)
                    && *y == 0
                {
                    1
                } else {
                    *y
                };
                last_int = Some(b.bin(op, *x, y));
            }
            Recipe::Cmp(p, x, y) => {
                last_int = Some(b.cmp(PREDS[*p as usize % PREDS.len()], *x, *y));
            }
            Recipe::Alloca(n) => last_ptr = b.alloca(u64::from(*n)),
            Recipe::HeapAlloc(n) => last_ptr = b.heap_alloc(i64::from(*n)),
            Recipe::PmemMap(pool) => last_ptr = b.pmem_map(4096i64, u64::from(*pool)),
            Recipe::StoreToLastPtr(v, w) => {
                b.store(Type::int(WIDTHS[*w as usize % 3]), last_ptr, *v);
            }
            Recipe::LoadFromLastPtr(w) => {
                last_int = Some(b.load(Type::int(WIDTHS[*w as usize % 3]), last_ptr));
            }
            Recipe::GepLastPtr(off) => last_ptr = b.gep(last_ptr, *off),
            Recipe::FlushLastPtr(k) => {
                let kind =
                    [FlushKind::Clwb, FlushKind::ClflushOpt, FlushKind::Clflush][*k as usize % 3];
                b.flush(kind, last_ptr);
            }
            Recipe::Fence(s) => {
                b.fence(if *s {
                    FenceKind::Sfence
                } else {
                    FenceKind::Mfence
                });
            }
            Recipe::Memset(n) => {
                b.memset(last_ptr, 0xabi64, i64::from(*n));
            }
            Recipe::Print => {
                if let Some(v) = last_int {
                    b.print(v);
                }
            }
            Recipe::CrashPoint => {
                b.crash_point();
            }
        }
    }
    b.ret(None);
    b.finish();
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated modules verify, and print→parse→print is a fixed point.
    #[test]
    fn random_modules_roundtrip(recipes in proptest::collection::vec(recipe_strategy(), 0..40)) {
        let m = build(&recipes);
        pmir::verify::verify_module(&m).unwrap();
        let text = pmir::display::print_module(&m);
        let m2 = pmir::parse::parse_module(&text)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        pmir::verify::verify_module(&m2).unwrap();
        prop_assert_eq!(text, pmir::display::print_module(&m2));
    }

    /// The safe rewrites (flush/fence insertion, cloning, retargeting) keep
    /// generated modules well-formed.
    #[test]
    fn random_rewrites_stay_well_formed(
        recipes in proptest::collection::vec(recipe_strategy(), 1..30),
        sel in 0usize..1000,
        clone_too in any::<bool>(),
    ) {
        let mut m = build(&recipes);
        let f = m.function_by_name("main").unwrap();
        let points: Vec<pmir::InstId> = {
            let func = m.function(f);
            func.linked_insts()
                .filter(|&(_, i)| !func.inst(i).op.is_terminator())
                .map(|(_, i)| i)
                .collect()
        };
        let at = points[sel % points.len()];
        rewrite::insert_after(
            m.function_mut(f),
            at,
            Op::Fence { kind: FenceKind::Sfence },
            None,
        );
        let term = {
            let func = m.function(f);
            let entry = func.entry();
            *func.block(entry).insts.last().unwrap()
        };
        rewrite::insert_before(
            m.function_mut(f),
            term,
            Op::Fence { kind: FenceKind::Sfence },
            None,
        );
        if clone_too {
            let c = rewrite::clone_function(&mut m, f, "main_PM");
            prop_assert_eq!(m.function(c).persistent_clone_of.as_deref(), Some("main"));
        }
        pmir::verify::verify_module(&m).unwrap();
        // Still prints and parses.
        let text = pmir::display::print_module(&m);
        pmir::parse::parse_module(&text).unwrap();
    }

    /// Operand fold: every generated module also *executes* under step and
    /// memory limits without tripping verifier-level invariants (guards the
    /// builder against emitting programs the VM rejects structurally).
    #[test]
    fn random_modules_are_executable_shapes(
        recipes in proptest::collection::vec(recipe_strategy(), 0..25),
    ) {
        let m = build(&recipes);
        // Every block is terminated and every value use dominated; the
        // module-level invariant the interpreter relies on.
        for (_, f) in m.functions() {
            prop_assert!(f.blocks_well_formed());
        }
    }
}
