//! The (tiny) type system of `pmir`.

use std::fmt;

/// A value type.
///
/// The IR distinguishes integers from pointers because the Andersen alias
/// analysis (`pmalias`) derives its inclusion constraints from pointer-typed
/// loads and stores; everything else about the machine is untyped bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// No value; only valid as a function return type.
    Void,
    /// An integer of the given width in bytes (1, 2, 4 or 8). Arithmetic is
    /// always performed at 64 bits; the width only matters for memory access.
    Int(u8),
    /// A byte-addressed pointer into one of the simulator address spaces.
    Ptr,
}

impl Type {
    /// An integer type of `bytes` width.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not 1, 2, 4, or 8.
    pub fn int(bytes: u8) -> Self {
        assert!(
            matches!(bytes, 1 | 2 | 4 | 8),
            "invalid integer width: {bytes}"
        );
        Type::Int(bytes)
    }

    /// The width of a value of this type when stored in memory, in bytes.
    ///
    /// Pointers are 8 bytes. [`Type::Void`] has no size and returns 0.
    pub fn size(self) -> u64 {
        match self {
            Type::Void => 0,
            Type::Int(w) => u64::from(w),
            Type::Ptr => 8,
        }
    }

    /// Whether this is the pointer type.
    pub fn is_ptr(self) -> bool {
        matches!(self, Type::Ptr)
    }

    /// Whether this is an integer type of any width.
    pub fn is_int(self) -> bool {
        matches!(self, Type::Int(_))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int(w) => write!(f, "i{}", u32::from(*w) * 8),
            Type::Ptr => write!(f, "ptr"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Type::int(1).size(), 1);
        assert_eq!(Type::int(8).size(), 8);
        assert_eq!(Type::Ptr.size(), 8);
        assert_eq!(Type::Void.size(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid integer width")]
    fn bad_width_panics() {
        let _ = Type::int(3);
    }

    #[test]
    fn display() {
        assert_eq!(Type::int(4).to_string(), "i32");
        assert_eq!(Type::Ptr.to_string(), "ptr");
        assert_eq!(Type::Void.to_string(), "void");
    }

    #[test]
    fn predicates() {
        assert!(Type::Ptr.is_ptr());
        assert!(!Type::Ptr.is_int());
        assert!(Type::int(2).is_int());
        assert!(!Type::Void.is_int());
    }
}
